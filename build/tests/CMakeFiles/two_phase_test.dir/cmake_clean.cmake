file(REMOVE_RECURSE
  "CMakeFiles/two_phase_test.dir/core/two_phase_test.cc.o"
  "CMakeFiles/two_phase_test.dir/core/two_phase_test.cc.o.d"
  "two_phase_test"
  "two_phase_test.pdb"
  "two_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
