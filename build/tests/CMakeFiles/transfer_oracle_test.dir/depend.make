# Empty dependencies file for transfer_oracle_test.
# This may be replaced when dependencies are built.
