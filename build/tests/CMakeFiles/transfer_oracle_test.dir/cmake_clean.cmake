file(REMOVE_RECURSE
  "CMakeFiles/transfer_oracle_test.dir/sim/transfer_oracle_test.cc.o"
  "CMakeFiles/transfer_oracle_test.dir/sim/transfer_oracle_test.cc.o.d"
  "transfer_oracle_test"
  "transfer_oracle_test.pdb"
  "transfer_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
