
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_matrix_test.cc" "tests/CMakeFiles/config_matrix_test.dir/core/config_matrix_test.cc.o" "gcc" "tests/CMakeFiles/config_matrix_test.dir/core/config_matrix_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/tps_store.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/tps_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/tps_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/tps_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
