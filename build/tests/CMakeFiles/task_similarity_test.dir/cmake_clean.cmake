file(REMOVE_RECURSE
  "CMakeFiles/task_similarity_test.dir/core/task_similarity_test.cc.o"
  "CMakeFiles/task_similarity_test.dir/core/task_similarity_test.cc.o.d"
  "task_similarity_test"
  "task_similarity_test.pdb"
  "task_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
