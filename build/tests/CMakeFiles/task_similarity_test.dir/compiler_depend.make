# Empty compiler generated dependencies file for task_similarity_test.
# This may be replaced when dependencies are built.
