file(REMOVE_RECURSE
  "CMakeFiles/lineage_recovery_test.dir/clustering/lineage_recovery_test.cc.o"
  "CMakeFiles/lineage_recovery_test.dir/clustering/lineage_recovery_test.cc.o.d"
  "lineage_recovery_test"
  "lineage_recovery_test.pdb"
  "lineage_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
