# Empty dependencies file for lineage_recovery_test.
# This may be replaced when dependencies are built.
