# Empty dependencies file for text_embedder_test.
# This may be replaced when dependencies are built.
