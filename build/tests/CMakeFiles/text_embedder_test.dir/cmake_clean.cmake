file(REMOVE_RECURSE
  "CMakeFiles/text_embedder_test.dir/embedding/text_embedder_test.cc.o"
  "CMakeFiles/text_embedder_test.dir/embedding/text_embedder_test.cc.o.d"
  "text_embedder_test"
  "text_embedder_test.pdb"
  "text_embedder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_embedder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
