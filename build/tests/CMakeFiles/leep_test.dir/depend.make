# Empty dependencies file for leep_test.
# This may be replaced when dependencies are built.
