file(REMOVE_RECURSE
  "CMakeFiles/leep_test.dir/transfer/leep_test.cc.o"
  "CMakeFiles/leep_test.dir/transfer/leep_test.cc.o.d"
  "leep_test"
  "leep_test.pdb"
  "leep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
