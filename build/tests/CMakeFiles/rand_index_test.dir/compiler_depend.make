# Empty compiler generated dependencies file for rand_index_test.
# This may be replaced when dependencies are built.
