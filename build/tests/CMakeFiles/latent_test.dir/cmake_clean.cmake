file(REMOVE_RECURSE
  "CMakeFiles/latent_test.dir/data/latent_test.cc.o"
  "CMakeFiles/latent_test.dir/data/latent_test.cc.o.d"
  "latent_test"
  "latent_test.pdb"
  "latent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
