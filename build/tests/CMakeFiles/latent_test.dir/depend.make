# Empty dependencies file for latent_test.
# This may be replaced when dependencies are built.
