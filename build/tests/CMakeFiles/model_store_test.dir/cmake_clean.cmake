file(REMOVE_RECURSE
  "CMakeFiles/model_store_test.dir/store/model_store_test.cc.o"
  "CMakeFiles/model_store_test.dir/store/model_store_test.cc.o.d"
  "model_store_test"
  "model_store_test.pdb"
  "model_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
