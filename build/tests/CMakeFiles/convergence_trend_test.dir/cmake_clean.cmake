file(REMOVE_RECURSE
  "CMakeFiles/convergence_trend_test.dir/core/convergence_trend_test.cc.o"
  "CMakeFiles/convergence_trend_test.dir/core/convergence_trend_test.cc.o.d"
  "convergence_trend_test"
  "convergence_trend_test.pdb"
  "convergence_trend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_trend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
