file(REMOVE_RECURSE
  "CMakeFiles/coarse_recall_test.dir/core/coarse_recall_test.cc.o"
  "CMakeFiles/coarse_recall_test.dir/core/coarse_recall_test.cc.o.d"
  "coarse_recall_test"
  "coarse_recall_test.pdb"
  "coarse_recall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_recall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
