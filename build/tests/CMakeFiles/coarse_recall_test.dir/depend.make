# Empty dependencies file for coarse_recall_test.
# This may be replaced when dependencies are built.
