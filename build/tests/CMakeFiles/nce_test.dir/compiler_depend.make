# Empty compiler generated dependencies file for nce_test.
# This may be replaced when dependencies are built.
