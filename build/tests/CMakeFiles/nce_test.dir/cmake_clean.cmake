file(REMOVE_RECURSE
  "CMakeFiles/nce_test.dir/transfer/nce_test.cc.o"
  "CMakeFiles/nce_test.dir/transfer/nce_test.cc.o.d"
  "nce_test"
  "nce_test.pdb"
  "nce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
