file(REMOVE_RECURSE
  "CMakeFiles/model_clusterer_test.dir/core/model_clusterer_test.cc.o"
  "CMakeFiles/model_clusterer_test.dir/core/model_clusterer_test.cc.o.d"
  "model_clusterer_test"
  "model_clusterer_test.pdb"
  "model_clusterer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_clusterer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
