# Empty dependencies file for model_clusterer_test.
# This may be replaced when dependencies are built.
