file(REMOVE_RECURSE
  "CMakeFiles/benchmark_selection_test.dir/core/benchmark_selection_test.cc.o"
  "CMakeFiles/benchmark_selection_test.dir/core/benchmark_selection_test.cc.o.d"
  "benchmark_selection_test"
  "benchmark_selection_test.pdb"
  "benchmark_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
