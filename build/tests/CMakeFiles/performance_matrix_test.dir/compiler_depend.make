# Empty compiler generated dependencies file for performance_matrix_test.
# This may be replaced when dependencies are built.
