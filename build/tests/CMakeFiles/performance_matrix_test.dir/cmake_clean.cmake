file(REMOVE_RECURSE
  "CMakeFiles/performance_matrix_test.dir/core/performance_matrix_test.cc.o"
  "CMakeFiles/performance_matrix_test.dir/core/performance_matrix_test.cc.o.d"
  "performance_matrix_test"
  "performance_matrix_test.pdb"
  "performance_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
