# Empty compiler generated dependencies file for finetune_simulator_test.
# This may be replaced when dependencies are built.
