file(REMOVE_RECURSE
  "CMakeFiles/finetune_simulator_test.dir/sim/finetune_simulator_test.cc.o"
  "CMakeFiles/finetune_simulator_test.dir/sim/finetune_simulator_test.cc.o.d"
  "finetune_simulator_test"
  "finetune_simulator_test.pdb"
  "finetune_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
