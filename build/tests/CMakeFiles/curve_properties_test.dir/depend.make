# Empty dependencies file for curve_properties_test.
# This may be replaced when dependencies are built.
