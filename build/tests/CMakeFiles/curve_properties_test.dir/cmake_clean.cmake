file(REMOVE_RECURSE
  "CMakeFiles/curve_properties_test.dir/sim/curve_properties_test.cc.o"
  "CMakeFiles/curve_properties_test.dir/sim/curve_properties_test.cc.o.d"
  "curve_properties_test"
  "curve_properties_test.pdb"
  "curve_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
