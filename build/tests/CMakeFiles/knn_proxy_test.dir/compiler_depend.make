# Empty compiler generated dependencies file for knn_proxy_test.
# This may be replaced when dependencies are built.
