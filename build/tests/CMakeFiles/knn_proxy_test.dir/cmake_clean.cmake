file(REMOVE_RECURSE
  "CMakeFiles/knn_proxy_test.dir/transfer/knn_proxy_test.cc.o"
  "CMakeFiles/knn_proxy_test.dir/transfer/knn_proxy_test.cc.o.d"
  "knn_proxy_test"
  "knn_proxy_test.pdb"
  "knn_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
