# Empty dependencies file for paper_zoo_test.
# This may be replaced when dependencies are built.
