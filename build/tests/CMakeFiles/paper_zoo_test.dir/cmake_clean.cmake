file(REMOVE_RECURSE
  "CMakeFiles/paper_zoo_test.dir/model/paper_zoo_test.cc.o"
  "CMakeFiles/paper_zoo_test.dir/model/paper_zoo_test.cc.o.d"
  "paper_zoo_test"
  "paper_zoo_test.pdb"
  "paper_zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
