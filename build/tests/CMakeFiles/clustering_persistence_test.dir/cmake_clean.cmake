file(REMOVE_RECURSE
  "CMakeFiles/clustering_persistence_test.dir/core/clustering_persistence_test.cc.o"
  "CMakeFiles/clustering_persistence_test.dir/core/clustering_persistence_test.cc.o.d"
  "clustering_persistence_test"
  "clustering_persistence_test.pdb"
  "clustering_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
