file(REMOVE_RECURSE
  "CMakeFiles/record_log_test.dir/store/record_log_test.cc.o"
  "CMakeFiles/record_log_test.dir/store/record_log_test.cc.o.d"
  "record_log_test"
  "record_log_test.pdb"
  "record_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
