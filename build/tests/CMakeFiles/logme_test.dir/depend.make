# Empty dependencies file for logme_test.
# This may be replaced when dependencies are built.
