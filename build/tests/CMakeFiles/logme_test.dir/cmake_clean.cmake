file(REMOVE_RECURSE
  "CMakeFiles/logme_test.dir/transfer/logme_test.cc.o"
  "CMakeFiles/logme_test.dir/transfer/logme_test.cc.o.d"
  "logme_test"
  "logme_test.pdb"
  "logme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
