add_test([=[ReportTest.RendersAllSections]=]  /root/repo/build/tests/report_test [==[--gtest_filter=ReportTest.RendersAllSections]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ReportTest.RendersAllSections]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  report_test_TESTS ReportTest.RendersAllSections)
