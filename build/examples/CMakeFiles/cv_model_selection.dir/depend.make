# Empty dependencies file for cv_model_selection.
# This may be replaced when dependencies are built.
