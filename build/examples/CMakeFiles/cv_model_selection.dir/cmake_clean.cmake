file(REMOVE_RECURSE
  "CMakeFiles/cv_model_selection.dir/cv_model_selection.cpp.o"
  "CMakeFiles/cv_model_selection.dir/cv_model_selection.cpp.o.d"
  "cv_model_selection"
  "cv_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
