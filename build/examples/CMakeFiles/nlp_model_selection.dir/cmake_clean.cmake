file(REMOVE_RECURSE
  "CMakeFiles/nlp_model_selection.dir/nlp_model_selection.cpp.o"
  "CMakeFiles/nlp_model_selection.dir/nlp_model_selection.cpp.o.d"
  "nlp_model_selection"
  "nlp_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
