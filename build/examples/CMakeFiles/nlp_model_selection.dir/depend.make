# Empty dependencies file for nlp_model_selection.
# This may be replaced when dependencies are built.
