file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_model_card.dir/bench_appendix_model_card.cc.o"
  "CMakeFiles/bench_appendix_model_card.dir/bench_appendix_model_card.cc.o.d"
  "bench_appendix_model_card"
  "bench_appendix_model_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_model_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
