# Empty dependencies file for bench_appendix_model_card.
# This may be replaced when dependencies are built.
