# Empty dependencies file for bench_table10_topk_param.
# This may be replaced when dependencies are built.
