file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_topk_param.dir/bench_table10_topk_param.cc.o"
  "CMakeFiles/bench_table10_topk_param.dir/bench_table10_topk_param.cc.o.d"
  "bench_table10_topk_param"
  "bench_table10_topk_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_topk_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
