# Empty dependencies file for tps_bench_harness.
# This may be replaced when dependencies are built.
