file(REMOVE_RECURSE
  "libtps_bench_harness.a"
)
