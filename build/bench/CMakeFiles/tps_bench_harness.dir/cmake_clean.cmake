file(REMOVE_RECURSE
  "CMakeFiles/tps_bench_harness.dir/curve_report.cc.o"
  "CMakeFiles/tps_bench_harness.dir/curve_report.cc.o.d"
  "CMakeFiles/tps_bench_harness.dir/harness.cc.o"
  "CMakeFiles/tps_bench_harness.dir/harness.cc.o.d"
  "libtps_bench_harness.a"
  "libtps_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
