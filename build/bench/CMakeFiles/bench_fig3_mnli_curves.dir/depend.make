# Empty dependencies file for bench_fig3_mnli_curves.
# This may be replaced when dependencies are built.
