file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_singleton_vs_non.dir/bench_table3_singleton_vs_non.cc.o"
  "CMakeFiles/bench_table3_singleton_vs_non.dir/bench_table3_singleton_vs_non.cc.o.d"
  "bench_table3_singleton_vs_non"
  "bench_table3_singleton_vs_non.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_singleton_vs_non.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
