# Empty dependencies file for bench_table3_singleton_vs_non.
# This may be replaced when dependencies are built.
