file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mnli_lr_sensitivity.dir/bench_fig8_mnli_lr_sensitivity.cc.o"
  "CMakeFiles/bench_fig8_mnli_lr_sensitivity.dir/bench_fig8_mnli_lr_sensitivity.cc.o.d"
  "bench_fig8_mnli_lr_sensitivity"
  "bench_fig8_mnli_lr_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mnli_lr_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
