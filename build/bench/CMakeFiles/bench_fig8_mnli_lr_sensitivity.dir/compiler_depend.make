# Empty compiler generated dependencies file for bench_fig8_mnli_lr_sensitivity.
# This may be replaced when dependencies are built.
