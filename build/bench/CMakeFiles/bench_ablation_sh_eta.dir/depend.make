# Empty dependencies file for bench_ablation_sh_eta.
# This may be replaced when dependencies are built.
