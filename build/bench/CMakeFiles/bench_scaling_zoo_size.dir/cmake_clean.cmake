file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_zoo_size.dir/bench_scaling_zoo_size.cc.o"
  "CMakeFiles/bench_scaling_zoo_size.dir/bench_scaling_zoo_size.cc.o.d"
  "bench_scaling_zoo_size"
  "bench_scaling_zoo_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_zoo_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
