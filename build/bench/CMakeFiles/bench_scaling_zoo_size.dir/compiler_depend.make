# Empty compiler generated dependencies file for bench_scaling_zoo_size.
# This may be replaced when dependencies are built.
