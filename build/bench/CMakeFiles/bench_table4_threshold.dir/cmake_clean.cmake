file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_threshold.dir/bench_table4_threshold.cc.o"
  "CMakeFiles/bench_table4_threshold.dir/bench_table4_threshold.cc.o.d"
  "bench_table4_threshold"
  "bench_table4_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
