# Empty compiler generated dependencies file for bench_table1_clustering_methods.
# This may be replaced when dependencies are built.
