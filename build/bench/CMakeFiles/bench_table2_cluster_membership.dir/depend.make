# Empty dependencies file for bench_table2_cluster_membership.
# This may be replaced when dependencies are built.
