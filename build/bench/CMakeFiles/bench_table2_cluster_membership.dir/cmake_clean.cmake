file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cluster_membership.dir/bench_table2_cluster_membership.cc.o"
  "CMakeFiles/bench_table2_cluster_membership.dir/bench_table2_cluster_membership.cc.o.d"
  "bench_table2_cluster_membership"
  "bench_table2_cluster_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cluster_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
