# Empty compiler generated dependencies file for bench_ablation_benchmark_subset.
# This may be replaced when dependencies are built.
