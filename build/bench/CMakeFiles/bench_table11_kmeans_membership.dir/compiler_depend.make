# Empty compiler generated dependencies file for bench_table11_kmeans_membership.
# This may be replaced when dependencies are built.
