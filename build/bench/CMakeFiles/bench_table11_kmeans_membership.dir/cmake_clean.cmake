file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_kmeans_membership.dir/bench_table11_kmeans_membership.cc.o"
  "CMakeFiles/bench_table11_kmeans_membership.dir/bench_table11_kmeans_membership.cc.o.d"
  "bench_table11_kmeans_membership"
  "bench_table11_kmeans_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_kmeans_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
