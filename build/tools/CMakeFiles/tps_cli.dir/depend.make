# Empty dependencies file for tps_cli.
# This may be replaced when dependencies are built.
