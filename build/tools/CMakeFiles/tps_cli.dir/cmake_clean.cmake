file(REMOVE_RECURSE
  "CMakeFiles/tps_cli.dir/tps_cli.cc.o"
  "CMakeFiles/tps_cli.dir/tps_cli.cc.o.d"
  "tps_cli"
  "tps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
