file(REMOVE_RECURSE
  "libtps_util.a"
)
