file(REMOVE_RECURSE
  "CMakeFiles/tps_util.dir/crc32.cc.o"
  "CMakeFiles/tps_util.dir/crc32.cc.o.d"
  "CMakeFiles/tps_util.dir/csv_writer.cc.o"
  "CMakeFiles/tps_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/tps_util.dir/flags.cc.o"
  "CMakeFiles/tps_util.dir/flags.cc.o.d"
  "CMakeFiles/tps_util.dir/logging.cc.o"
  "CMakeFiles/tps_util.dir/logging.cc.o.d"
  "CMakeFiles/tps_util.dir/rng.cc.o"
  "CMakeFiles/tps_util.dir/rng.cc.o.d"
  "CMakeFiles/tps_util.dir/stats.cc.o"
  "CMakeFiles/tps_util.dir/stats.cc.o.d"
  "CMakeFiles/tps_util.dir/status.cc.o"
  "CMakeFiles/tps_util.dir/status.cc.o.d"
  "CMakeFiles/tps_util.dir/string_util.cc.o"
  "CMakeFiles/tps_util.dir/string_util.cc.o.d"
  "CMakeFiles/tps_util.dir/table_printer.cc.o"
  "CMakeFiles/tps_util.dir/table_printer.cc.o.d"
  "libtps_util.a"
  "libtps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
