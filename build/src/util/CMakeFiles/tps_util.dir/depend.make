# Empty dependencies file for tps_util.
# This may be replaced when dependencies are built.
