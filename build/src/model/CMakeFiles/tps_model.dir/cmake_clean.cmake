file(REMOVE_RECURSE
  "CMakeFiles/tps_model.dir/model_card.cc.o"
  "CMakeFiles/tps_model.dir/model_card.cc.o.d"
  "CMakeFiles/tps_model.dir/paper_zoo.cc.o"
  "CMakeFiles/tps_model.dir/paper_zoo.cc.o.d"
  "CMakeFiles/tps_model.dir/pretrained_model.cc.o"
  "CMakeFiles/tps_model.dir/pretrained_model.cc.o.d"
  "CMakeFiles/tps_model.dir/zoo.cc.o"
  "CMakeFiles/tps_model.dir/zoo.cc.o.d"
  "libtps_model.a"
  "libtps_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
