# Empty compiler generated dependencies file for tps_model.
# This may be replaced when dependencies are built.
