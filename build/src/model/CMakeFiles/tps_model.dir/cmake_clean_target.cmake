file(REMOVE_RECURSE
  "libtps_model.a"
)
