
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/model_card.cc" "src/model/CMakeFiles/tps_model.dir/model_card.cc.o" "gcc" "src/model/CMakeFiles/tps_model.dir/model_card.cc.o.d"
  "/root/repo/src/model/paper_zoo.cc" "src/model/CMakeFiles/tps_model.dir/paper_zoo.cc.o" "gcc" "src/model/CMakeFiles/tps_model.dir/paper_zoo.cc.o.d"
  "/root/repo/src/model/pretrained_model.cc" "src/model/CMakeFiles/tps_model.dir/pretrained_model.cc.o" "gcc" "src/model/CMakeFiles/tps_model.dir/pretrained_model.cc.o.d"
  "/root/repo/src/model/zoo.cc" "src/model/CMakeFiles/tps_model.dir/zoo.cc.o" "gcc" "src/model/CMakeFiles/tps_model.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/tps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
