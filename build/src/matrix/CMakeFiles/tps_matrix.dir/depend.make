# Empty dependencies file for tps_matrix.
# This may be replaced when dependencies are built.
