file(REMOVE_RECURSE
  "libtps_matrix.a"
)
