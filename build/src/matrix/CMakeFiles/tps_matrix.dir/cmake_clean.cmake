file(REMOVE_RECURSE
  "CMakeFiles/tps_matrix.dir/eigen.cc.o"
  "CMakeFiles/tps_matrix.dir/eigen.cc.o.d"
  "CMakeFiles/tps_matrix.dir/matrix.cc.o"
  "CMakeFiles/tps_matrix.dir/matrix.cc.o.d"
  "CMakeFiles/tps_matrix.dir/vector_ops.cc.o"
  "CMakeFiles/tps_matrix.dir/vector_ops.cc.o.d"
  "libtps_matrix.a"
  "libtps_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
