# Empty compiler generated dependencies file for tps_core.
# This may be replaced when dependencies are built.
