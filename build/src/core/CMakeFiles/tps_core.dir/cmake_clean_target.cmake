file(REMOVE_RECURSE
  "libtps_core.a"
)
