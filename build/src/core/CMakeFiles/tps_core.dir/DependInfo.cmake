
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/tps_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/benchmark_selection.cc" "src/core/CMakeFiles/tps_core.dir/benchmark_selection.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/benchmark_selection.cc.o.d"
  "/root/repo/src/core/coarse_recall.cc" "src/core/CMakeFiles/tps_core.dir/coarse_recall.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/coarse_recall.cc.o.d"
  "/root/repo/src/core/convergence_trend.cc" "src/core/CMakeFiles/tps_core.dir/convergence_trend.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/convergence_trend.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/tps_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/fine_selection.cc" "src/core/CMakeFiles/tps_core.dir/fine_selection.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/fine_selection.cc.o.d"
  "/root/repo/src/core/hyperband.cc" "src/core/CMakeFiles/tps_core.dir/hyperband.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/hyperband.cc.o.d"
  "/root/repo/src/core/model_clusterer.cc" "src/core/CMakeFiles/tps_core.dir/model_clusterer.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/model_clusterer.cc.o.d"
  "/root/repo/src/core/performance_matrix.cc" "src/core/CMakeFiles/tps_core.dir/performance_matrix.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/performance_matrix.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/tps_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/planner.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/tps_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/report.cc.o.d"
  "/root/repo/src/core/task_similarity.cc" "src/core/CMakeFiles/tps_core.dir/task_similarity.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/task_similarity.cc.o.d"
  "/root/repo/src/core/two_phase.cc" "src/core/CMakeFiles/tps_core.dir/two_phase.cc.o" "gcc" "src/core/CMakeFiles/tps_core.dir/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clustering/CMakeFiles/tps_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/tps_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/tps_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
