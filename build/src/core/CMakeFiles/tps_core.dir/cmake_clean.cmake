file(REMOVE_RECURSE
  "CMakeFiles/tps_core.dir/baselines.cc.o"
  "CMakeFiles/tps_core.dir/baselines.cc.o.d"
  "CMakeFiles/tps_core.dir/benchmark_selection.cc.o"
  "CMakeFiles/tps_core.dir/benchmark_selection.cc.o.d"
  "CMakeFiles/tps_core.dir/coarse_recall.cc.o"
  "CMakeFiles/tps_core.dir/coarse_recall.cc.o.d"
  "CMakeFiles/tps_core.dir/convergence_trend.cc.o"
  "CMakeFiles/tps_core.dir/convergence_trend.cc.o.d"
  "CMakeFiles/tps_core.dir/evaluation.cc.o"
  "CMakeFiles/tps_core.dir/evaluation.cc.o.d"
  "CMakeFiles/tps_core.dir/fine_selection.cc.o"
  "CMakeFiles/tps_core.dir/fine_selection.cc.o.d"
  "CMakeFiles/tps_core.dir/hyperband.cc.o"
  "CMakeFiles/tps_core.dir/hyperband.cc.o.d"
  "CMakeFiles/tps_core.dir/model_clusterer.cc.o"
  "CMakeFiles/tps_core.dir/model_clusterer.cc.o.d"
  "CMakeFiles/tps_core.dir/performance_matrix.cc.o"
  "CMakeFiles/tps_core.dir/performance_matrix.cc.o.d"
  "CMakeFiles/tps_core.dir/planner.cc.o"
  "CMakeFiles/tps_core.dir/planner.cc.o.d"
  "CMakeFiles/tps_core.dir/report.cc.o"
  "CMakeFiles/tps_core.dir/report.cc.o.d"
  "CMakeFiles/tps_core.dir/task_similarity.cc.o"
  "CMakeFiles/tps_core.dir/task_similarity.cc.o.d"
  "CMakeFiles/tps_core.dir/two_phase.cc.o"
  "CMakeFiles/tps_core.dir/two_phase.cc.o.d"
  "libtps_core.a"
  "libtps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
