
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/knn_proxy.cc" "src/transfer/CMakeFiles/tps_transfer.dir/knn_proxy.cc.o" "gcc" "src/transfer/CMakeFiles/tps_transfer.dir/knn_proxy.cc.o.d"
  "/root/repo/src/transfer/leep.cc" "src/transfer/CMakeFiles/tps_transfer.dir/leep.cc.o" "gcc" "src/transfer/CMakeFiles/tps_transfer.dir/leep.cc.o.d"
  "/root/repo/src/transfer/logme.cc" "src/transfer/CMakeFiles/tps_transfer.dir/logme.cc.o" "gcc" "src/transfer/CMakeFiles/tps_transfer.dir/logme.cc.o.d"
  "/root/repo/src/transfer/nce.cc" "src/transfer/CMakeFiles/tps_transfer.dir/nce.cc.o" "gcc" "src/transfer/CMakeFiles/tps_transfer.dir/nce.cc.o.d"
  "/root/repo/src/transfer/proxy_scorer.cc" "src/transfer/CMakeFiles/tps_transfer.dir/proxy_scorer.cc.o" "gcc" "src/transfer/CMakeFiles/tps_transfer.dir/proxy_scorer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/tps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
