file(REMOVE_RECURSE
  "libtps_transfer.a"
)
