file(REMOVE_RECURSE
  "CMakeFiles/tps_transfer.dir/knn_proxy.cc.o"
  "CMakeFiles/tps_transfer.dir/knn_proxy.cc.o.d"
  "CMakeFiles/tps_transfer.dir/leep.cc.o"
  "CMakeFiles/tps_transfer.dir/leep.cc.o.d"
  "CMakeFiles/tps_transfer.dir/logme.cc.o"
  "CMakeFiles/tps_transfer.dir/logme.cc.o.d"
  "CMakeFiles/tps_transfer.dir/nce.cc.o"
  "CMakeFiles/tps_transfer.dir/nce.cc.o.d"
  "CMakeFiles/tps_transfer.dir/proxy_scorer.cc.o"
  "CMakeFiles/tps_transfer.dir/proxy_scorer.cc.o.d"
  "libtps_transfer.a"
  "libtps_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
