# Empty dependencies file for tps_transfer.
# This may be replaced when dependencies are built.
