
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ensemble.cc" "src/sim/CMakeFiles/tps_sim.dir/ensemble.cc.o" "gcc" "src/sim/CMakeFiles/tps_sim.dir/ensemble.cc.o.d"
  "/root/repo/src/sim/finetune_simulator.cc" "src/sim/CMakeFiles/tps_sim.dir/finetune_simulator.cc.o" "gcc" "src/sim/CMakeFiles/tps_sim.dir/finetune_simulator.cc.o.d"
  "/root/repo/src/sim/transfer_oracle.cc" "src/sim/CMakeFiles/tps_sim.dir/transfer_oracle.cc.o" "gcc" "src/sim/CMakeFiles/tps_sim.dir/transfer_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/tps_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
