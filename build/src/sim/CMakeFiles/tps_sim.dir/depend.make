# Empty dependencies file for tps_sim.
# This may be replaced when dependencies are built.
