file(REMOVE_RECURSE
  "CMakeFiles/tps_sim.dir/ensemble.cc.o"
  "CMakeFiles/tps_sim.dir/ensemble.cc.o.d"
  "CMakeFiles/tps_sim.dir/finetune_simulator.cc.o"
  "CMakeFiles/tps_sim.dir/finetune_simulator.cc.o.d"
  "CMakeFiles/tps_sim.dir/transfer_oracle.cc.o"
  "CMakeFiles/tps_sim.dir/transfer_oracle.cc.o.d"
  "libtps_sim.a"
  "libtps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
