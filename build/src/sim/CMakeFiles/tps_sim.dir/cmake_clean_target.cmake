file(REMOVE_RECURSE
  "libtps_sim.a"
)
