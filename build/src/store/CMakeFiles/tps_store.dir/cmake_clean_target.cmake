file(REMOVE_RECURSE
  "libtps_store.a"
)
