file(REMOVE_RECURSE
  "CMakeFiles/tps_store.dir/kv_store.cc.o"
  "CMakeFiles/tps_store.dir/kv_store.cc.o.d"
  "CMakeFiles/tps_store.dir/model_store.cc.o"
  "CMakeFiles/tps_store.dir/model_store.cc.o.d"
  "CMakeFiles/tps_store.dir/record_log.cc.o"
  "CMakeFiles/tps_store.dir/record_log.cc.o.d"
  "CMakeFiles/tps_store.dir/spec_serialization.cc.o"
  "CMakeFiles/tps_store.dir/spec_serialization.cc.o.d"
  "libtps_store.a"
  "libtps_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
