# Empty compiler generated dependencies file for tps_store.
# This may be replaced when dependencies are built.
