file(REMOVE_RECURSE
  "CMakeFiles/tps_embedding.dir/text_embedder.cc.o"
  "CMakeFiles/tps_embedding.dir/text_embedder.cc.o.d"
  "libtps_embedding.a"
  "libtps_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
