# Empty dependencies file for tps_embedding.
# This may be replaced when dependencies are built.
