file(REMOVE_RECURSE
  "libtps_embedding.a"
)
