file(REMOVE_RECURSE
  "libtps_clustering.a"
)
