file(REMOVE_RECURSE
  "CMakeFiles/tps_clustering.dir/distance.cc.o"
  "CMakeFiles/tps_clustering.dir/distance.cc.o.d"
  "CMakeFiles/tps_clustering.dir/hierarchical.cc.o"
  "CMakeFiles/tps_clustering.dir/hierarchical.cc.o.d"
  "CMakeFiles/tps_clustering.dir/kmeans.cc.o"
  "CMakeFiles/tps_clustering.dir/kmeans.cc.o.d"
  "CMakeFiles/tps_clustering.dir/rand_index.cc.o"
  "CMakeFiles/tps_clustering.dir/rand_index.cc.o.d"
  "CMakeFiles/tps_clustering.dir/silhouette.cc.o"
  "CMakeFiles/tps_clustering.dir/silhouette.cc.o.d"
  "libtps_clustering.a"
  "libtps_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
