# Empty dependencies file for tps_clustering.
# This may be replaced when dependencies are built.
