
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/distance.cc" "src/clustering/CMakeFiles/tps_clustering.dir/distance.cc.o" "gcc" "src/clustering/CMakeFiles/tps_clustering.dir/distance.cc.o.d"
  "/root/repo/src/clustering/hierarchical.cc" "src/clustering/CMakeFiles/tps_clustering.dir/hierarchical.cc.o" "gcc" "src/clustering/CMakeFiles/tps_clustering.dir/hierarchical.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/clustering/CMakeFiles/tps_clustering.dir/kmeans.cc.o" "gcc" "src/clustering/CMakeFiles/tps_clustering.dir/kmeans.cc.o.d"
  "/root/repo/src/clustering/rand_index.cc" "src/clustering/CMakeFiles/tps_clustering.dir/rand_index.cc.o" "gcc" "src/clustering/CMakeFiles/tps_clustering.dir/rand_index.cc.o.d"
  "/root/repo/src/clustering/silhouette.cc" "src/clustering/CMakeFiles/tps_clustering.dir/silhouette.cc.o" "gcc" "src/clustering/CMakeFiles/tps_clustering.dir/silhouette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
