# Empty dependencies file for tps_data.
# This may be replaced when dependencies are built.
