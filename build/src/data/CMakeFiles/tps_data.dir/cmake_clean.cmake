file(REMOVE_RECURSE
  "CMakeFiles/tps_data.dir/dataset.cc.o"
  "CMakeFiles/tps_data.dir/dataset.cc.o.d"
  "CMakeFiles/tps_data.dir/latent.cc.o"
  "CMakeFiles/tps_data.dir/latent.cc.o.d"
  "CMakeFiles/tps_data.dir/registry.cc.o"
  "CMakeFiles/tps_data.dir/registry.cc.o.d"
  "libtps_data.a"
  "libtps_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
