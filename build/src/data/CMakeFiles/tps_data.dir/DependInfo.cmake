
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/tps_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/tps_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/latent.cc" "src/data/CMakeFiles/tps_data.dir/latent.cc.o" "gcc" "src/data/CMakeFiles/tps_data.dir/latent.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/data/CMakeFiles/tps_data.dir/registry.cc.o" "gcc" "src/data/CMakeFiles/tps_data.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/tps_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
