file(REMOVE_RECURSE
  "libtps_data.a"
)
