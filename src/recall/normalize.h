#ifndef TPS_RECALL_NORMALIZE_H_
#define TPS_RECALL_NORMALIZE_H_

#include <vector>

namespace tps {
namespace recall {

/// Min-max normalizes `values` into [0, 1]; a constant vector maps to all
/// 0.5, the same convention as the proxy-score normalization in the
/// representative path. Local to the recall library: src/recall/
/// deliberately cannot include transfer/ headers (the interface boundary
/// the no-LEEP-in-recall tripwire pins), so the helper lives here.
inline std::vector<double> MinMaxNormalized(const std::vector<double>& values) {
  std::vector<double> normalized(values.size(), 0.5);
  if (values.empty()) return normalized;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (hi > lo) {
    for (size_t i = 0; i < values.size(); ++i) {
      normalized[i] = (values[i] - lo) / (hi - lo);
    }
  }
  return normalized;
}

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_NORMALIZE_H_
