#ifndef TPS_RECALL_EMBED_TRAINER_H_
#define TPS_RECALL_EMBED_TRAINER_H_

#include <vector>

#include "core/performance_matrix.h"
#include "data/dataset.h"
#include "recall/recall_embeddings.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace tps {
namespace recall {

/// The trained artifact plus the training curve, for logging and tests.
struct EmbedTrainingResult {
  RecallEmbeddings embeddings;
  /// Mean softmax cross-entropy against the accuracy-derived target
  /// distribution, one entry per epoch (recorded before that epoch's
  /// update, so [0] is the loss of the random init).
  std::vector<double> epoch_losses;
};

/// Trains the two-tower recall embeddings from the offline performance
/// matrix by full-batch gradient descent with in-batch softmax negatives:
/// every benchmark row is one listwise example whose logits are
/// dot(u_i, v_j) / temperature over ALL models, trained toward
/// softmax(accuracy(i, .) / accuracy_temperature).
///
/// `benchmarks` must match the matrix's dataset rows (same names, same
/// order); they supply the dataset features phi(d) = [domain_vector, 1].
///
/// Deterministic: seeded init, and bit-identical for any thread count —
/// the per-dataset forward/backward passes run on `pool` (may be null)
/// into index-addressed slots, and the gradient reduction is a serial
/// index-order sweep, so floating-point summation order never depends on
/// scheduling.
StatusOr<EmbedTrainingResult> TrainRecallEmbeddings(
    const PerformanceMatrix& matrix,
    const std::vector<const Dataset*>& benchmarks,
    const EmbeddingConfig& config, ThreadPool* pool = nullptr);

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_EMBED_TRAINER_H_
