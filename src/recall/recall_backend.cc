#include "recall/recall_backend.h"

#include <algorithm>
#include <map>
#include <utility>

#include "recall/embedding_backend.h"
#include "recall/hybrid_backend.h"
#include "recall/representative_backend.h"

namespace tps {
namespace recall {

namespace {

std::map<std::string, RecallBackendFactory>& Registry() {
  static auto* registry = [] {
    auto* r = new std::map<std::string, RecallBackendFactory>();
    (*r)["representative"] = [](const RecallBackendContext& context) {
      return CreateRepresentativeBackend(context);
    };
    (*r)["embedding"] = [](const RecallBackendContext& context) {
      return CreateEmbeddingBackend(context);
    };
    (*r)["hybrid"] = [](const RecallBackendContext& context) {
      return CreateHybridBackend(context);
    };
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterRecallBackend(const std::string& name,
                           RecallBackendFactory factory) {
  Registry()[name] = std::move(factory);
}

StatusOr<std::unique_ptr<RecallBackend>> CreateRecallBackend(
    const std::string& name, const RecallBackendContext& context) {
  const auto& registry = Registry();
  const auto it = registry.find(name);
  if (it == registry.end()) {
    return Status::NotFound("unknown recall backend: " + name);
  }
  return it->second(context);
}

std::vector<std::string> RecallBackendNames() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;  // std::map iterates sorted.
}

RecallBackendSet::RecallBackendSet(const RecallBackendContext& context) {
  for (const std::string& name : RecallBackendNames()) {
    auto backend = CreateRecallBackend(name, context);
    // Backends the context cannot support (e.g. embedding recall without
    // trained embeddings) are left out rather than failing the whole
    // artifact load; requests naming them get FailedPrecondition.
    if (backend.ok()) backends_.push_back(std::move(backend).value());
  }
}

StatusOr<const RecallBackend*> RecallBackendSet::Find(
    const std::string& name) const {
  for (const std::unique_ptr<RecallBackend>& backend : backends_) {
    if (backend->name() == name) return backend.get();
  }
  const std::vector<std::string> registered = RecallBackendNames();
  if (std::find(registered.begin(), registered.end(), name) !=
      registered.end()) {
    return Status::FailedPrecondition(
        "recall backend \"" + name +
        "\" is not available for these artifacts (train embeddings first)");
  }
  return Status::NotFound("unknown recall backend: " + name);
}

std::vector<std::string> RecallBackendSet::available() const {
  std::vector<std::string> names;
  for (const std::unique_ptr<RecallBackend>& backend : backends_) {
    names.push_back(backend->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace recall
}  // namespace tps
