#ifndef TPS_RECALL_RECALL_EMBEDDINGS_H_
#define TPS_RECALL_RECALL_EMBEDDINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {
namespace recall {

/// Hyperparameters of the two-tower embedding trainer ("Recall backends"
/// in DESIGN.md). Persisted with the embeddings so a retrain from the same
/// matrix reproduces the artifact bit for bit.
struct EmbeddingConfig {
  /// Shared embedding dimensionality of both towers.
  size_t dim = 16;
  /// Full-batch gradient-descent epochs.
  int epochs = 300;
  double learning_rate = 0.5;
  /// Softmax temperature on the dot-product logits (Snippet-3 shape:
  /// in-batch softmax over all models).
  double temperature = 0.2;
  /// Temperature of the target distribution softmax(accuracy / tau): lower
  /// concentrates the training signal on each benchmark's best models.
  double accuracy_temperature = 0.05;
  /// L2 penalty on both towers, applied as decoupled decay each epoch.
  /// With only |benchmarks| listwise examples the towers overfit the
  /// simulator's per-pair noise without it (recall@10 on held-out targets
  /// drops ~25% at 0.0 on the CV zoo).
  double weight_decay = 0.03;
  uint64_t seed = 7;
};

/// The trained two-tower recall artifact: a linear dataset tower mapping
/// dataset features onto the shared embedding space, one free embedding
/// per model, and the acc(m) prior — everything the embedding recall
/// backend needs to rank a zoo with dot products instead of per-
/// representative proxy inference.
///
/// Dataset features are phi(d) = [domain_vector(d), 1.0] (the latent
/// domain vector plus a bias slot), so a *novel* target embeds with one
/// dim x (latent+1) matrix-vector product at serve time — no forward
/// passes, no performance-matrix column.
///
/// Immutable once created; shared read-only by every request a serving
/// snapshot answers. Text codec matches the other offline artifacts
/// (line-oriented, precision 17, lossless round-trip).
class RecallEmbeddings {
 public:
  /// Empty artifact (num_models() == 0); assign from Create / Deserialize.
  RecallEmbeddings() = default;

  /// Validates shapes: `dataset_map` is config.dim x feature_dim,
  /// `model_embeddings` one config.dim vector per model, `prior` and
  /// `model_names` matching the model count.
  static StatusOr<RecallEmbeddings> Create(
      const EmbeddingConfig& config, Matrix dataset_map,
      std::vector<std::vector<double>> model_embeddings,
      std::vector<double> prior, std::vector<std::string> model_names);

  const EmbeddingConfig& config() const { return config_; }
  size_t dim() const { return config_.dim; }
  /// Dataset-feature width the map was trained for (latent dims + bias).
  size_t feature_dim() const { return dataset_map_.cols(); }
  size_t num_models() const { return model_names_.size(); }
  const std::vector<std::string>& model_names() const { return model_names_; }
  /// acc(m): average benchmark accuracy, zoo order (the Eq. 2 prior).
  const std::vector<double>& prior() const { return prior_; }
  const Matrix& dataset_map() const { return dataset_map_; }
  const std::vector<std::vector<double>>& model_embeddings() const {
    return model_embeddings_;
  }

  /// phi(d) = [domain_vector, 1.0]; InvalidArgument when the dataset's
  /// latent width does not match the trained map.
  StatusOr<std::vector<double>> DatasetFeatures(const Dataset& target) const;

  /// The dataset-tower embedding u = W * phi(target).
  StatusOr<std::vector<double>> EmbedDataset(const Dataset& target) const;

  /// Raw two-tower affinity: dot(query, v_model).
  double Score(const std::vector<double>& query, size_t model_index) const;

  /// Line-oriented text codec (precision 17). Lossless:
  /// Deserialize(Serialize()) reproduces the artifact bit for bit.
  std::string Serialize() const;
  static StatusOr<RecallEmbeddings> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<RecallEmbeddings> LoadFromFile(const std::string& path);

 private:
  EmbeddingConfig config_;
  Matrix dataset_map_;  // dim x feature_dim.
  std::vector<std::vector<double>> model_embeddings_;  // num_models x dim.
  std::vector<double> prior_;
  std::vector<std::string> model_names_;
};

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_RECALL_EMBEDDINGS_H_
