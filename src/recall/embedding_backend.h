#ifndef TPS_RECALL_EMBEDDING_BACKEND_H_
#define TPS_RECALL_EMBEDDING_BACKEND_H_

#include <memory>

#include "recall/recall_backend.h"

namespace tps {
namespace recall {

/// Learned two-tower recall: embeds the target with one matrix-vector
/// product (the dataset tower), ranks candidates by dot product with the
/// trained model embeddings, min-max normalizes the dots, and applies the
/// Eq. 2 shape recall_score = acc(m) x normalized_affinity. No proxy
/// forward pass ever runs, so proxies_computed is 0 and the epoch budget
/// is never charged — this is the "no per-representative LEEP inference
/// at serve time" backend.
///
/// Sub-linearity: when the context carries an `embedding_index` (an
/// IvfIndex built over the model-embedding vectors), only the posting
/// lists of the RecallOptions::nprobe partitions nearest the query
/// embedding are ranked; the rest of the zoo is never touched. Without
/// an index every model is ranked (still just dot products).
///
/// Requires `embeddings` in the context (matching the matrix's models
/// when a matrix is present); `embedding_index` is optional.
StatusOr<std::unique_ptr<RecallBackend>> CreateEmbeddingBackend(
    const RecallBackendContext& context);

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_EMBEDDING_BACKEND_H_
