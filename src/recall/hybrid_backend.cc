#include "recall/hybrid_backend.h"

#include <algorithm>
#include <map>
#include <utility>

#include "recall/embedding_backend.h"
#include "recall/normalize.h"
#include "recall/representative_backend.h"

namespace tps {
namespace recall {

namespace {

/// Per-model fused state while merging the two rankings.
struct FusedEntry {
  double representative_score = 0.0;  // Normalized; 0 when unseen.
  double embedding_score = 0.0;       // Normalized; 0 when unseen.
  double prior_accuracy = 0.0;
  bool via_propagation = false;
};

class HybridBackend : public RecallBackend {
 public:
  HybridBackend(std::unique_ptr<RecallBackend> representative,
                std::unique_ptr<RecallBackend> embedding)
      : name_("hybrid"),
        representative_(std::move(representative)),
        embedding_(std::move(embedding)) {}

  const std::string& name() const override { return name_; }

  StatusOr<RecallResult> Recall(const Dataset& target,
                                const RecallOptions& options,
                                EpochBudget* budget, ThreadPool* pool,
                                MetricsRegistry* metrics,
                                SelectionTrace* trace,
                                const CancelToken* cancel) const override {
    // The representative run carries the budget, metrics, and trace; the
    // embedding run charges nothing and records nothing, so observability
    // attributes exactly the work the proxy path did.
    TPS_ASSIGN_OR_RETURN(
        RecallResult rep,
        representative_->Recall(target, options, budget, pool, metrics,
                                trace, cancel));
    TPS_ASSIGN_OR_RETURN(RecallResult emb,
                         embedding_->Recall(target, options, nullptr, pool,
                                            metrics, nullptr, cancel));

    // Normalize each backend's scores over its own candidate set so the
    // fusion is scale-free: representative scores carry the prior and the
    // proxy, embedding scores the prior and the learned affinity, and the
    // mean of the two normalized values ranks the union.
    std::vector<double> rep_scores(rep.ranked.size());
    for (size_t i = 0; i < rep.ranked.size(); ++i) {
      rep_scores[i] = rep.ranked[i].recall_score;
    }
    std::vector<double> emb_scores(emb.ranked.size());
    for (size_t i = 0; i < emb.ranked.size(); ++i) {
      emb_scores[i] = emb.ranked[i].recall_score;
    }
    const std::vector<double> rep_norm = MinMaxNormalized(rep_scores);
    const std::vector<double> emb_norm = MinMaxNormalized(emb_scores);

    std::map<size_t, FusedEntry> fused;  // Keyed by model index, ascending.
    for (size_t i = 0; i < rep.ranked.size(); ++i) {
      FusedEntry& f = fused[rep.ranked[i].model_index];
      f.representative_score = rep_norm[i];
      f.prior_accuracy = rep.ranked[i].prior_accuracy;
      f.via_propagation = rep.ranked[i].via_propagation;
    }
    for (size_t i = 0; i < emb.ranked.size(); ++i) {
      FusedEntry& f = fused[emb.ranked[i].model_index];
      f.embedding_score = emb_norm[i];
      if (f.prior_accuracy == 0.0) {
        f.prior_accuracy = emb.ranked[i].prior_accuracy;
      }
    }

    RecallResult result;
    result.ranked.reserve(fused.size());
    for (const auto& [model_index, f] : fused) {
      RecallEntry entry;
      entry.model_index = model_index;
      entry.recall_score =
          0.5 * (f.representative_score + f.embedding_score);
      entry.prior_accuracy = f.prior_accuracy;
      entry.proxy_component = entry.recall_score;
      entry.via_propagation = f.via_propagation;
      result.ranked.push_back(entry);
    }
    // Entries enter ascending by model index (std::map order), so the
    // stable sort breaks ties toward the lower index.
    std::stable_sort(result.ranked.begin(), result.ranked.end(),
                     [](const RecallEntry& a, const RecallEntry& b) {
                       return a.recall_score > b.recall_score;
                     });
    result.proxies_computed = rep.proxies_computed;
    return result;
  }

 private:
  const std::string name_;
  std::unique_ptr<RecallBackend> representative_;
  std::unique_ptr<RecallBackend> embedding_;
};

}  // namespace

StatusOr<std::unique_ptr<RecallBackend>> CreateHybridBackend(
    const RecallBackendContext& context) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<RecallBackend> representative,
                       CreateRepresentativeBackend(context));
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<RecallBackend> embedding,
                       CreateEmbeddingBackend(context));
  return std::unique_ptr<RecallBackend>(new HybridBackend(
      std::move(representative), std::move(embedding)));
}

}  // namespace recall
}  // namespace tps
