#include "recall/embedding_backend.h"

#include <algorithm>
#include <utility>

#include "recall/normalize.h"

namespace tps {
namespace recall {

namespace {

class EmbeddingBackend : public RecallBackend {
 public:
  EmbeddingBackend(const RecallEmbeddings* embeddings,
                   const IvfIndex* embedding_index)
      : name_("embedding"),
        embeddings_(embeddings),
        embedding_index_(embedding_index) {}

  const std::string& name() const override { return name_; }

  StatusOr<RecallResult> Recall(const Dataset& target,
                                const RecallOptions& options,
                                EpochBudget* budget, ThreadPool* pool,
                                MetricsRegistry* metrics,
                                SelectionTrace* trace,
                                const CancelToken* cancel) const override {
    (void)budget;   // Never charged: no proxy inference happens here.
    (void)pool;     // Dot products over <= |M| candidates; serial is fine.
    (void)metrics;  // Latency is attributed by the caller's request timer.
    (void)trace;    // The trace's recall phase is proxy-shaped; the
                    // embedding path records nothing rather than a lie.
    TPS_RETURN_NOT_OK(CheckCancel(cancel, "embedding recall entry"));
    TPS_ASSIGN_OR_RETURN(std::vector<double> query,
                         embeddings_->EmbedDataset(target));

    // Candidate set: with an embedding IVF, only the posting lists of the
    // nprobe partitions nearest the query; otherwise the whole zoo.
    std::vector<size_t> candidates;
    if (embedding_index_ != nullptr) {
      const std::vector<size_t> probed =
          embedding_index_->ProbePartitionsNearQuery(query, options.nprobe);
      const IndexStructure& s = embedding_index_->structure();
      for (size_t partition : probed) {
        for (size_t m : s.members[partition]) candidates.push_back(m);
      }
      std::sort(candidates.begin(), candidates.end());
    } else {
      candidates.resize(embeddings_->num_models());
      for (size_t m = 0; m < candidates.size(); ++m) candidates[m] = m;
    }

    // [embedding-recall-begin] Scoring is dot products against the trained
    // model embeddings only — no zoo walk, no matrix sweep, no proxy
    // inference (tools/check_no_linear_recall.sh pins this section).
    std::vector<double> dots(candidates.size(), 0.0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      dots[i] = embeddings_->Score(query, candidates[i]);
    }
    // [embedding-recall-end]

    const std::vector<double> normalized = MinMaxNormalized(dots);
    const std::vector<double>& prior = embeddings_->prior();
    RecallResult result;
    result.ranked.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      RecallEntry& entry = result.ranked[i];
      entry.model_index = candidates[i];
      entry.prior_accuracy = prior[candidates[i]];
      entry.proxy_component = normalized[i];
      entry.via_propagation = false;
      entry.recall_score =
          (options.use_accuracy_prior ? entry.prior_accuracy : 1.0) *
          entry.proxy_component;
    }
    // Entries enter ascending by model index, so the stable sort breaks
    // score ties toward the lower index — the representative path's rule.
    std::stable_sort(result.ranked.begin(), result.ranked.end(),
                     [](const RecallEntry& a, const RecallEntry& b) {
                       return a.recall_score > b.recall_score;
                     });
    result.proxies_computed = 0;
    return result;
  }

 private:
  const std::string name_;
  const RecallEmbeddings* embeddings_;
  const IvfIndex* embedding_index_;
};

}  // namespace

StatusOr<std::unique_ptr<RecallBackend>> CreateEmbeddingBackend(
    const RecallBackendContext& context) {
  if (context.embeddings == nullptr) {
    return Status::FailedPrecondition(
        "embedding backend needs trained recall embeddings");
  }
  if (context.matrix != nullptr &&
      context.embeddings->model_names() != context.matrix->model_names()) {
    return Status::InvalidArgument(
        "recall embeddings do not match the performance matrix models");
  }
  if (context.embedding_index != nullptr &&
      context.embedding_index->num_models() !=
          context.embeddings->num_models()) {
    return Status::InvalidArgument(
        "embedding index does not cover the recall embeddings");
  }
  return std::unique_ptr<RecallBackend>(
      new EmbeddingBackend(context.embeddings, context.embedding_index));
}

}  // namespace recall
}  // namespace tps
