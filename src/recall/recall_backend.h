#ifndef TPS_RECALL_RECALL_BACKEND_H_
#define TPS_RECALL_RECALL_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/coarse_recall.h"
#include "index/ivf_index.h"
#include "recall/recall_embeddings.h"

namespace tps {
namespace recall {

/// Everything a backend may rank with. `zoo`, `matrix`, and `clustering`
/// are always required; `embeddings` (and optionally `embedding_index`,
/// an IVF built over the model-embedding vectors) are only needed by the
/// embedding and hybrid backends. All pointers are borrowed and must
/// outlive the backend.
struct RecallBackendContext {
  const ModelZoo* zoo = nullptr;
  const PerformanceMatrix* matrix = nullptr;
  const ModelClustering* clustering = nullptr;
  const RecallEmbeddings* embeddings = nullptr;
  const IvfIndex* embedding_index = nullptr;
};

/// Phase 1 behind an interface ("Recall backends" in DESIGN.md): every
/// implementation ranks the zoo for a target dataset and returns the same
/// RecallResult shape the fine-selection phase consumes, so backends are
/// interchangeable per request. Implementations must be const-thread-safe:
/// one backend instance serves every in-flight request of an artifact
/// snapshot concurrently.
class RecallBackend {
 public:
  virtual ~RecallBackend() = default;

  /// Registry name ("representative", "embedding", "hybrid").
  virtual const std::string& name() const = 0;

  /// Same contract as CoarseRecall::Recall: full descending ranking,
  /// deterministic for any thread count, epoch budget charged only for
  /// proxies actually computed, `cancel` polled so an expired deadline
  /// yields DeadlineExceeded rather than a partial ranking. All pointer
  /// parameters may be null except the target.
  virtual StatusOr<RecallResult> Recall(const Dataset& target,
                                        const RecallOptions& options,
                                        EpochBudget* budget,
                                        ThreadPool* pool = nullptr,
                                        MetricsRegistry* metrics = nullptr,
                                        SelectionTrace* trace = nullptr,
                                        const CancelToken* cancel =
                                            nullptr) const = 0;
};

using RecallBackendFactory =
    std::function<StatusOr<std::unique_ptr<RecallBackend>>(
        const RecallBackendContext&)>;

/// Registers a backend factory under `name`. The three built-ins are
/// pre-registered; re-registering an existing name replaces it (tests use
/// this to inject instrumented backends). Not thread-safe: register at
/// startup, before serving.
void RegisterRecallBackend(const std::string& name,
                           RecallBackendFactory factory);

/// Instantiates a registered backend over `context`. NotFound for an
/// unknown name; InvalidArgument / FailedPrecondition when the context is
/// missing what the backend needs (e.g. no trained embeddings).
StatusOr<std::unique_ptr<RecallBackend>> CreateRecallBackend(
    const std::string& name, const RecallBackendContext& context);

/// Registered backend names, sorted.
std::vector<std::string> RecallBackendNames();

/// The per-snapshot backend bundle: instantiates every registered backend
/// the context can support at construction time, so request routing is a
/// lock-free name lookup with no per-request allocation. Backends whose
/// requirements the context cannot meet (no embeddings trained) are
/// simply absent and resolve to FailedPrecondition.
class RecallBackendSet {
 public:
  explicit RecallBackendSet(const RecallBackendContext& context);

  /// Resolves a request's backend name. NotFound for names never
  /// registered, FailedPrecondition for registered backends this
  /// artifact set cannot serve.
  StatusOr<const RecallBackend*> Find(const std::string& name) const;

  /// Names available under this artifact set, sorted.
  std::vector<std::string> available() const;

 private:
  std::vector<std::unique_ptr<RecallBackend>> backends_;
};

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_RECALL_BACKEND_H_
