#include "recall/recall_embeddings.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace tps {
namespace recall {

namespace {

Status ValidateConfig(const EmbeddingConfig& config) {
  if (config.dim == 0) {
    return Status::InvalidArgument("embedding dim must be >= 1");
  }
  if (config.epochs < 1) {
    return Status::InvalidArgument("embedding epochs must be >= 1");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("embedding learning_rate must be > 0");
  }
  if (config.temperature <= 0.0 || config.accuracy_temperature <= 0.0) {
    return Status::InvalidArgument("embedding temperatures must be > 0");
  }
  if (config.weight_decay < 0.0) {
    return Status::InvalidArgument("embedding weight_decay must be >= 0");
  }
  return Status::OK();
}

}  // namespace

StatusOr<RecallEmbeddings> RecallEmbeddings::Create(
    const EmbeddingConfig& config, Matrix dataset_map,
    std::vector<std::vector<double>> model_embeddings,
    std::vector<double> prior, std::vector<std::string> model_names) {
  TPS_RETURN_NOT_OK(ValidateConfig(config));
  if (dataset_map.rows() != config.dim || dataset_map.cols() == 0) {
    return Status::InvalidArgument(
        "dataset map must be dim x feature_dim and non-empty");
  }
  if (model_embeddings.empty()) {
    return Status::InvalidArgument("embeddings need at least one model");
  }
  for (const std::vector<double>& v : model_embeddings) {
    if (v.size() != config.dim) {
      return Status::InvalidArgument(
          "model embedding width does not match the configured dim");
    }
  }
  if (prior.size() != model_embeddings.size() ||
      model_names.size() != model_embeddings.size()) {
    return Status::InvalidArgument(
        "prior and model_names must match the model count");
  }
  for (const std::string& name : model_names) {
    if (name.empty()) {
      return Status::InvalidArgument("model names must be non-empty");
    }
  }
  RecallEmbeddings embeddings;
  embeddings.config_ = config;
  embeddings.dataset_map_ = std::move(dataset_map);
  embeddings.model_embeddings_ = std::move(model_embeddings);
  embeddings.prior_ = std::move(prior);
  embeddings.model_names_ = std::move(model_names);
  return embeddings;
}

StatusOr<std::vector<double>> RecallEmbeddings::DatasetFeatures(
    const Dataset& target) const {
  const std::vector<double>& domain = target.domain_vector();
  if (domain.size() + 1 != feature_dim()) {
    return Status::InvalidArgument(
        "target latent width does not match the trained dataset map");
  }
  std::vector<double> features = domain;
  features.push_back(1.0);  // Bias slot.
  return features;
}

StatusOr<std::vector<double>> RecallEmbeddings::EmbedDataset(
    const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(std::vector<double> features, DatasetFeatures(target));
  std::vector<double> query(config_.dim, 0.0);
  for (size_t r = 0; r < config_.dim; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < features.size(); ++c) {
      sum += dataset_map_.At(r, c) * features[c];
    }
    query[r] = sum;
  }
  return query;
}

double RecallEmbeddings::Score(const std::vector<double>& query,
                               size_t model_index) const {
  const std::vector<double>& v = model_embeddings_[model_index];
  double dot = 0.0;
  for (size_t d = 0; d < v.size(); ++d) dot += query[d] * v[d];
  return dot;
}

std::string RecallEmbeddings::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "tps-recall-embeddings v1\n";
  out << num_models() << " " << config_.dim << " " << feature_dim() << "\n";
  out << config_.epochs << " " << config_.learning_rate << " "
      << config_.temperature << " " << config_.accuracy_temperature << " "
      << config_.weight_decay << " " << config_.seed << "\n";
  for (const std::string& name : model_names_) out << name << "\n";
  for (double p : prior_) out << p << " ";
  out << "\n";
  for (size_t r = 0; r < dataset_map_.rows(); ++r) {
    for (size_t c = 0; c < dataset_map_.cols(); ++c) {
      out << dataset_map_.At(r, c) << " ";
    }
    out << "\n";
  }
  for (const std::vector<double>& v : model_embeddings_) {
    for (double x : v) out << x << " ";
    out << "\n";
  }
  return out.str();
}

StatusOr<RecallEmbeddings> RecallEmbeddings::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-recall-embeddings v1") {
    return Status::InvalidArgument("bad recall embeddings header");
  }
  size_t n = 0, dim = 0, feature_dim = 0;
  in >> n >> dim >> feature_dim;
  if (!in || n == 0 || dim == 0 || feature_dim == 0) {
    return Status::InvalidArgument("bad recall embeddings dimensions");
  }
  EmbeddingConfig config;
  config.dim = dim;
  in >> config.epochs >> config.learning_rate >> config.temperature >>
      config.accuracy_temperature >> config.weight_decay >> config.seed;
  if (!in) return Status::InvalidArgument("bad recall embeddings config");
  in.ignore(1, '\n');
  std::vector<std::string> model_names(n);
  for (std::string& name : model_names) {
    if (!std::getline(in, name) || name.empty()) {
      return Status::InvalidArgument("truncated recall embeddings names");
    }
  }
  std::vector<double> prior(n);
  for (double& p : prior) in >> p;
  Matrix dataset_map(dim, feature_dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < feature_dim; ++c) in >> dataset_map.At(r, c);
  }
  std::vector<std::vector<double>> model_embeddings(
      n, std::vector<double>(dim, 0.0));
  for (std::vector<double>& v : model_embeddings) {
    for (double& x : v) in >> x;
  }
  if (!in) return Status::InvalidArgument("truncated recall embeddings");
  return Create(config, std::move(dataset_map), std::move(model_embeddings),
                std::move(prior), std::move(model_names));
}

Status RecallEmbeddings::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << Serialize();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<RecallEmbeddings> RecallEmbeddings::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto result = Deserialize(text);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " in " + path);
  }
  return result;
}

}  // namespace recall
}  // namespace tps
