#ifndef TPS_RECALL_HYBRID_BACKEND_H_
#define TPS_RECALL_HYBRID_BACKEND_H_

#include <memory>

#include "recall/recall_backend.h"

namespace tps {
namespace recall {

/// Union-and-fuse recall: runs the representative and embedding backends,
/// min-max normalizes each backend's recall scores over its own candidate
/// set, and ranks the union by the mean of the two normalized scores
/// (a model one backend never saw contributes 0 for that backend). The
/// epoch budget and proxies_computed come from the representative run
/// alone — the embedding side is free by construction.
///
/// Requires everything both constituent backends require.
StatusOr<std::unique_ptr<RecallBackend>> CreateHybridBackend(
    const RecallBackendContext& context);

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_HYBRID_BACKEND_H_
