#include "recall/embed_trainer.h"

#include <cmath>
#include <utility>

#include "util/parallel.h"
#include "util/rng.h"

namespace tps {
namespace recall {

namespace {

/// Per-dataset forward/backward scratch, filled by an index-addressed
/// parallel pass and consumed by the serial reduction.
struct DatasetPass {
  std::vector<double> features;  // phi(d_i), cached across epochs.
  std::vector<double> query;     // u_i = W phi(d_i).
  std::vector<double> grad;      // dL/dz_i over all models, already / D.
  std::vector<double> target;    // softmax(acc(i, .) / tau_acc), cached.
  double loss = 0.0;             // Cross-entropy of this row.
};

void SoftmaxInPlace(std::vector<double>& values) {
  double max = values[0];
  for (double v : values) max = std::max(max, v);
  double sum = 0.0;
  for (double& v : values) {
    v = std::exp(v - max);
    sum += v;
  }
  for (double& v : values) v /= sum;
}

}  // namespace

StatusOr<EmbedTrainingResult> TrainRecallEmbeddings(
    const PerformanceMatrix& matrix,
    const std::vector<const Dataset*>& benchmarks,
    const EmbeddingConfig& config, ThreadPool* pool) {
  const size_t num_datasets = matrix.num_datasets();
  const size_t num_models = matrix.num_models();
  if (num_datasets == 0 || num_models == 0) {
    return Status::InvalidArgument("performance matrix must be non-empty");
  }
  if (benchmarks.size() != num_datasets) {
    return Status::InvalidArgument(
        "benchmark count does not match the matrix rows");
  }
  for (size_t i = 0; i < num_datasets; ++i) {
    if (benchmarks[i] == nullptr) {
      return Status::InvalidArgument("benchmark datasets must be non-null");
    }
    if (benchmarks[i]->name() != matrix.dataset_names()[i]) {
      return Status::InvalidArgument(
          "benchmark order does not match the matrix rows (" +
          benchmarks[i]->name() + " vs " + matrix.dataset_names()[i] + ")");
    }
  }
  const size_t latent = benchmarks[0]->domain_vector().size();
  if (latent == 0) {
    return Status::InvalidArgument("benchmark domain vectors are empty");
  }
  for (const Dataset* d : benchmarks) {
    if (d->domain_vector().size() != latent) {
      return Status::InvalidArgument("ragged benchmark domain vectors");
    }
  }
  // Validate the hyperparameters up front via a throwaway artifact shape
  // check at the end; cheap checks here keep errors close to the caller.
  if (config.dim == 0 || config.epochs < 1 || config.learning_rate <= 0.0 ||
      config.temperature <= 0.0 || config.accuracy_temperature <= 0.0 ||
      config.weight_decay < 0.0) {
    return Status::InvalidArgument("invalid embedding config");
  }

  const size_t dim = config.dim;
  const size_t feature_dim = latent + 1;  // Bias slot.

  // Seeded init: W then V, row-major draw order, so the artifact is a pure
  // function of (matrix, benchmarks, config).
  Rng rng(config.seed);
  Matrix dataset_map(dim, feature_dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < feature_dim; ++c) {
      dataset_map.At(r, c) = rng.Normal(0.0, 0.1);
    }
  }
  std::vector<std::vector<double>> model_embeddings(
      num_models, std::vector<double>(dim, 0.0));
  for (std::vector<double>& v : model_embeddings) {
    for (double& x : v) x = rng.Normal(0.0, 0.1);
  }

  std::vector<DatasetPass> passes(num_datasets);
  for (size_t i = 0; i < num_datasets; ++i) {
    DatasetPass& pass = passes[i];
    pass.features = benchmarks[i]->domain_vector();
    pass.features.push_back(1.0);
    pass.target.resize(num_models);
    for (size_t j = 0; j < num_models; ++j) {
      pass.target[j] = matrix.accuracy().At(i, j) / config.accuracy_temperature;
    }
    SoftmaxInPlace(pass.target);
    pass.query.resize(dim);
    pass.grad.resize(num_models);
  }

  EmbedTrainingResult result;
  result.epoch_losses.reserve(static_cast<size_t>(config.epochs));
  Matrix map_grad(dim, feature_dim);
  std::vector<std::vector<double>> model_grad(num_models,
                                              std::vector<double>(dim, 0.0));
  const double inv_datasets = 1.0 / static_cast<double>(num_datasets);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Forward + per-row backward, parallel into index-addressed slots.
    TPS_RETURN_NOT_OK(StatusParallelFor(pool, num_datasets, [&](size_t i) {
      DatasetPass& pass = passes[i];
      for (size_t r = 0; r < dim; ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < feature_dim; ++c) {
          sum += dataset_map.At(r, c) * pass.features[c];
        }
        pass.query[r] = sum;
      }
      std::vector<double>& probs = pass.grad;  // Reused in place.
      for (size_t j = 0; j < num_models; ++j) {
        double dot = 0.0;
        const std::vector<double>& v = model_embeddings[j];
        for (size_t d = 0; d < dim; ++d) dot += pass.query[d] * v[d];
        probs[j] = dot / config.temperature;
      }
      SoftmaxInPlace(probs);
      double loss = 0.0;
      for (size_t j = 0; j < num_models; ++j) {
        if (pass.target[j] > 0.0) {
          loss -= pass.target[j] * std::log(std::max(probs[j], 1e-300));
        }
        probs[j] = (probs[j] - pass.target[j]) * inv_datasets;
      }
      pass.loss = loss;
      return Status::OK();
    }));

    // Serial index-order reduction: summation order is fixed regardless of
    // how the passes above were scheduled, so any thread count produces
    // bit-identical gradients.
    double epoch_loss = 0.0;
    std::fill(map_grad.data().begin(), map_grad.data().end(), 0.0);
    for (std::vector<double>& g : model_grad) std::fill(g.begin(), g.end(), 0.0);
    for (size_t i = 0; i < num_datasets; ++i) {
      const DatasetPass& pass = passes[i];
      epoch_loss += pass.loss * inv_datasets;
      std::vector<double> query_grad(dim, 0.0);  // du_i.
      for (size_t j = 0; j < num_models; ++j) {
        const double g = pass.grad[j] / config.temperature;
        if (g == 0.0) continue;
        const std::vector<double>& v = model_embeddings[j];
        std::vector<double>& vg = model_grad[j];
        for (size_t d = 0; d < dim; ++d) {
          query_grad[d] += g * v[d];
          vg[d] += g * pass.query[d];
        }
      }
      for (size_t r = 0; r < dim; ++r) {
        for (size_t c = 0; c < feature_dim; ++c) {
          map_grad.At(r, c) += query_grad[r] * pass.features[c];
        }
      }
    }
    result.epoch_losses.push_back(epoch_loss);

    // Decoupled L2 decay: shrink both towers toward zero before applying
    // the data gradient, so the decay strength is independent of the
    // listwise loss scale.
    const double decay = 1.0 - config.learning_rate * config.weight_decay;
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < feature_dim; ++c) {
        dataset_map.At(r, c) =
            decay * dataset_map.At(r, c) -
            config.learning_rate * map_grad.At(r, c);
      }
    }
    for (size_t j = 0; j < num_models; ++j) {
      for (size_t d = 0; d < dim; ++d) {
        model_embeddings[j][d] = decay * model_embeddings[j][d] -
                                 config.learning_rate * model_grad[j][d];
      }
    }
  }

  TPS_ASSIGN_OR_RETURN(
      result.embeddings,
      RecallEmbeddings::Create(config, std::move(dataset_map),
                               std::move(model_embeddings),
                               matrix.ModelAverageAccuracies(),
                               matrix.model_names()));
  return result;
}

}  // namespace recall
}  // namespace tps
