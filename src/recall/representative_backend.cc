#include "recall/representative_backend.h"

#include <utility>

namespace tps {
namespace recall {

namespace {

class RepresentativeBackend : public RecallBackend {
 public:
  RepresentativeBackend(const ModelZoo* zoo, const PerformanceMatrix* matrix,
                        const ModelClustering* clustering)
      : name_("representative"), recall_(zoo, matrix, clustering) {}

  const std::string& name() const override { return name_; }

  StatusOr<RecallResult> Recall(const Dataset& target,
                                const RecallOptions& options,
                                EpochBudget* budget, ThreadPool* pool,
                                MetricsRegistry* metrics,
                                SelectionTrace* trace,
                                const CancelToken* cancel) const override {
    return recall_.Recall(target, options, budget, pool, metrics, trace,
                          cancel);
  }

 private:
  const std::string name_;
  CoarseRecall recall_;
};

}  // namespace

StatusOr<std::unique_ptr<RecallBackend>> CreateRepresentativeBackend(
    const RecallBackendContext& context) {
  if (context.zoo == nullptr || context.matrix == nullptr ||
      context.clustering == nullptr) {
    return Status::InvalidArgument(
        "representative backend needs zoo, matrix, and clustering");
  }
  return std::unique_ptr<RecallBackend>(new RepresentativeBackend(
      context.zoo, context.matrix, context.clustering));
}

}  // namespace recall
}  // namespace tps
