#ifndef TPS_RECALL_REPRESENTATIVE_BACKEND_H_
#define TPS_RECALL_REPRESENTATIVE_BACKEND_H_

#include <memory>

#include "recall/recall_backend.h"

namespace tps {
namespace recall {

/// The paper's cluster-representative proxy path (Eq. 2-4) behind the
/// backend interface: a pure delegation to CoarseRecall, so the result —
/// ranking, scores, tie order, epoch ledger, trace — is bit-identical to
/// calling CoarseRecall::Recall directly (tests/recall/
/// backend_equivalence_test.cc pins it serial and pooled).
///
/// Requires zoo + matrix + clustering in the context.
StatusOr<std::unique_ptr<RecallBackend>> CreateRepresentativeBackend(
    const RecallBackendContext& context);

}  // namespace recall
}  // namespace tps

#endif  // TPS_RECALL_REPRESENTATIVE_BACKEND_H_
