#ifndef TPS_EMBEDDING_TEXT_EMBEDDER_H_
#define TPS_EMBEDDING_TEXT_EMBEDDER_H_

#include <string>
#include <vector>

namespace tps {

/// Hashed bag-of-words text embedder: the stand-in for SBERT in the
/// text-based model-similarity baseline of Table I (see DESIGN.md).
///
/// Tokens are lower-cased, split on non-alphanumerics, hashed into
/// `dims` buckets with a signed hash (feature hashing), weighted by
/// 1/sqrt(token frequency within the document), and L2-normalized, so
/// cosine similarity between embeddings reflects token overlap.
class HashedTextEmbedder {
 public:
  explicit HashedTextEmbedder(size_t dims = 64);

  /// Embeds one document into a unit-norm vector of `dims()` entries (the
  /// zero vector for documents with no tokens).
  std::vector<double> Embed(const std::string& text) const;

  /// Cosine similarity between two documents' embeddings.
  double Similarity(const std::string& a, const std::string& b) const;

  size_t dims() const { return dims_; }

  /// Lower-cased alphanumeric tokens of `text`, in order.
  static std::vector<std::string> Tokenize(const std::string& text);

 private:
  size_t dims_;
};

}  // namespace tps

#endif  // TPS_EMBEDDING_TEXT_EMBEDDER_H_
