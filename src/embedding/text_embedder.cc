#include "embedding/text_embedder.h"

#include <cctype>
#include <cmath>
#include <unordered_map>

#include "data/latent.h"
#include "matrix/vector_ops.h"

namespace tps {

HashedTextEmbedder::HashedTextEmbedder(size_t dims) : dims_(dims) {}

std::vector<std::string> HashedTextEmbedder::Tokenize(
    const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<double> HashedTextEmbedder::Embed(const std::string& text) const {
  std::vector<double> embedding(dims_, 0.0);
  std::unordered_map<std::string, size_t> counts;
  const std::vector<std::string> tokens = Tokenize(text);
  for (const std::string& token : tokens) ++counts[token];
  for (const auto& [token, count] : counts) {
    const uint64_t hash = latent::HashString(token);
    const size_t bucket = hash % dims_;
    // Signed feature hashing reduces collision bias.
    const double sign = (hash >> 63) ? 1.0 : -1.0;
    // Sub-linear term weighting: repeated tokens contribute less per
    // occurrence.
    embedding[bucket] += sign * std::sqrt(static_cast<double>(count));
  }
  vec::NormalizeInPlace(embedding);
  return embedding;
}

double HashedTextEmbedder::Similarity(const std::string& a,
                                      const std::string& b) const {
  return vec::CosineSimilarity(Embed(a), Embed(b));
}

}  // namespace tps
