#ifndef TPS_SIM_FINETUNE_SIMULATOR_H_
#define TPS_SIM_FINETUNE_SIMULATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "model/pretrained_model.h"
#include "sim/hyperparams.h"
#include "sim/transfer_oracle.h"
#include "util/statusor.h"

namespace tps {

/// The record of one (simulated) fine-tuning run: validation and test
/// accuracy after each epoch. Epoch t's values live at index t-1.
struct TrainingRun {
  std::string model_name;
  std::string dataset_name;
  Hyperparams hyperparams;
  std::vector<double> val_accuracy;
  std::vector<double> test_accuracy;

  int epochs() const { return static_cast<int>(val_accuracy.size()); }
  /// Test accuracy after the final trained epoch ("final training
  /// performance" in the paper's terms).
  double final_test() const {
    return test_accuracy.empty() ? 0.0 : test_accuracy.back();
  }
  /// Best validation accuracy over the run.
  double best_val() const;
};

/// Simulates fine-tuning a pre-trained model on a dataset and reports
/// per-epoch validation/test accuracy.
///
/// Curve family: saturating exponential toward the pair's asymptotic
/// accuracy, with rate scaled by learning rate, an overfitting decline that
/// grows with learning rate (the Fig. 3 vs Fig. 8 contrast), and seeded
/// per-epoch noise. Deterministic in (model, dataset, hyperparams).
class FineTuneSimulator {
 public:
  explicit FineTuneSimulator(TransferOracle oracle = TransferOracle());

  /// Runs `hp.epochs` epochs of fine-tuning. Fails if the model and
  /// dataset task domains differ or hp.epochs < 1.
  StatusOr<TrainingRun> Run(const PretrainedModel& model,
                            const Dataset& dataset,
                            const Hyperparams& hp) const;

  /// Runs with the paper's per-domain default hyperparameters.
  StatusOr<TrainingRun> RunWithDefaults(const PretrainedModel& model,
                                        const Dataset& dataset) const;

  const TransferOracle& oracle() const { return oracle_; }

 private:
  TransferOracle oracle_;
};

}  // namespace tps

#endif  // TPS_SIM_FINETUNE_SIMULATOR_H_
