#include "sim/transfer_oracle.h"

#include <algorithm>
#include <cmath>

#include "data/latent.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tps {

TransferOracle::TransferOracle(OracleParams params) : params_(params) {}

TransferTruth TransferOracle::Evaluate(const PretrainedModel& model,
                                       const Dataset& dataset) const {
  TransferTruth truth;
  truth.domain_cosine = model.DomainCosine(dataset);
  truth.alignment = latent::AffinityFromCosine(truth.domain_cosine);
  truth.transfer_score = params_.capability_weight * model.capability() +
                         params_.alignment_weight * truth.alignment;

  Rng rng(latent::CombineSeeds(
      latent::CombineSeeds(model.seed(), dataset.seed()),
      latent::HashString("transfer-truth")));
  Rng family_rng(latent::CombineSeeds(
      latent::CombineSeeds(latent::HashString(model.spec().family),
                           dataset.seed()),
      latent::HashString("family-dataset-interaction")));
  const double chance = dataset.spec().EffectiveChance();
  const double ceiling = dataset.spec().EffectiveCeiling();
  // Noise scales with the dataset's achievable accuracy range so that
  // narrow-range tasks (e.g. MultiRC: chance 0.55, ceiling 0.65) are not
  // drowned in idiosyncrasy; 0.6 is a typical range, making the configured
  // stddevs hold for a mid-range dataset.
  const double range_scale = (ceiling - chance) / 0.6;
  const double pair_noise =
      (params_.pair_noise_stddev * rng.Normal() +
       params_.family_noise_stddev * family_rng.Normal()) *
      range_scale;

  const double gate = 1.0 / (1.0 + std::exp(-params_.sigmoid_slope *
                                            (truth.transfer_score -
                                             params_.sigmoid_mid)));
  truth.asymptotic_accuracy =
      stats::Clamp(chance + (ceiling - chance) * gate + pair_noise,
                   0.5 * chance, 0.995);

  // Better-matched pairs converge faster; harder datasets more slowly.
  truth.convergence_rate = stats::Clamp(
      0.55 + 1.8 * truth.transfer_score - 0.5 * dataset.spec().difficulty +
          0.15 * rng.Normal(),
      0.25, 3.5);

  // Occasional late-training decline, stronger for well-fitted pairs (they
  // reach the memorization regime sooner) — visible for the top models in
  // the paper's Fig. 3.
  const double overfit_draw = 0.006 * truth.transfer_score +
                              0.004 * rng.Normal();
  truth.overfit_coefficient =
      stats::Clamp(overfit_draw, 0.0, 0.02);
  return truth;
}

}  // namespace tps
