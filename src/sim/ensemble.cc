#include "sim/ensemble.h"

#include <cmath>

#include "data/latent.h"
#include "matrix/vector_ops.h"
#include "util/rng.h"

namespace tps {

namespace {

/// Standard normal CDF.
double NormalCdf(double x) {
  return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

/// Standard normal quantile via bisection (plenty accurate for thresholds
/// computed once per ensemble member).
double NormalQuantile(double p) {
  if (p <= 0.0) return -8.0;
  if (p >= 1.0) return 8.0;
  double lo = -8.0, hi = 8.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (NormalCdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

StatusOr<EnsembleResult> EvaluateEnsemble(const ModelZoo& zoo,
                                          const std::vector<size_t>& members,
                                          const Dataset& target,
                                          const FineTuneSimulator& simulator,
                                          const Hyperparams& hp,
                                          const EnsembleOptions& options) {
  if (members.empty()) {
    return Status::InvalidArgument("ensemble needs >= 1 member");
  }
  if (options.num_examples < 1) {
    return Status::InvalidArgument("ensemble needs >= 1 virtual example");
  }
  if (options.shared_difficulty_weight < 0.0 ||
      options.shared_difficulty_weight > 1.0) {
    return Status::InvalidArgument(
        "shared_difficulty_weight must be in [0, 1]");
  }

  EnsembleResult result;
  // Member skills (final fine-tuned accuracies) and per-member correctness
  // thresholds under the Gaussian copula: member m answers example e
  // correctly iff s_{m,e} < Phi^{-1}(accuracy_m), where s is standard
  // normal, so marginal correctness probability is exactly the accuracy.
  std::vector<double> thresholds;
  std::vector<const std::vector<double>*> affinities;
  for (size_t index : members) {
    if (index >= zoo.size()) {
      return Status::OutOfRange("ensemble member index out of range");
    }
    TPS_ASSIGN_OR_RETURN(TrainingRun run,
                         simulator.Run(zoo.model(index), target, hp));
    result.member_accuracies.push_back(run.final_test());
    thresholds.push_back(NormalQuantile(run.final_test()));
    affinities.push_back(&zoo.model(index).affinity());
  }

  // Diversity diagnostic.
  if (members.size() > 1) {
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        total += vec::CosineSimilarity(*affinities[i], *affinities[j]);
        ++pairs;
      }
    }
    result.mean_member_similarity = total / static_cast<double>(pairs);
  } else {
    result.mean_member_similarity = 1.0;
  }

  const double rho = options.shared_difficulty_weight;
  Rng rng(latent::CombineSeeds(
      latent::CombineSeeds(target.seed(), options.seed),
      latent::HashString("ensemble-vote")));

  size_t ensemble_correct = 0;
  std::vector<double> basis(latent::kDims);
  for (int e = 0; e < options.num_examples; ++e) {
    // Shared difficulty factor and the per-example latent direction whose
    // projections give member-specific factors correlated by affinity
    // cosine.
    const double shared = rng.Normal();
    for (double& b : basis) b = rng.Normal();

    size_t votes = 0;
    for (size_t m = 0; m < members.size(); ++m) {
      const double member_factor = vec::Dot(*affinities[m], basis);
      const double score =
          std::sqrt(rho) * shared + std::sqrt(1.0 - rho) * member_factor;
      if (score < thresholds[m]) ++votes;
    }
    if (2 * votes > members.size()) ++ensemble_correct;
  }
  result.ensemble_accuracy = static_cast<double>(ensemble_correct) /
                             static_cast<double>(options.num_examples);
  return result;
}

}  // namespace tps
