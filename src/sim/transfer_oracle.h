#ifndef TPS_SIM_TRANSFER_ORACLE_H_
#define TPS_SIM_TRANSFER_ORACLE_H_

#include "data/dataset.h"
#include "model/pretrained_model.h"

namespace tps {

/// The latent transfer truth for one (model, dataset) pair.
struct TransferTruth {
  /// Cosine between model affinity and dataset domain vector, in [-1, 1].
  double domain_cosine = 0.0;
  /// Cosine mapped to [0, 1].
  double alignment = 0.5;
  /// Combined capability/alignment transfer score in [0, 1].
  double transfer_score = 0.0;
  /// Asymptotic fine-tuning accuracy (before per-run noise), within
  /// [chance, ceiling] of the dataset.
  double asymptotic_accuracy = 0.0;
  /// Learning-curve convergence rate (per epoch, at the reference learning
  /// rate 3e-5). Higher-scoring pairs converge faster.
  double convergence_rate = 1.0;
  /// Per-epoch late-training degradation coefficient at the reference
  /// learning rate (overfitting); scaled up/down with the actual rate.
  double overfit_coefficient = 0.0;
};

/// Tunables of the accuracy law. Defaults are calibrated so the paper-zoo
/// accuracy distributions match the shapes in Fig. 1 (few strong models,
/// long mediocre tail) and the top-model accuracies approach each target's
/// ceiling.
struct OracleParams {
  /// Weight of model capability in the transfer score.
  double capability_weight = 0.5;
  /// Weight of domain alignment in the transfer score.
  double alignment_weight = 0.7;
  /// Sigmoid slope mapping transfer score to the [chance, ceiling] range.
  double sigmoid_slope = 11.0;
  /// Sigmoid midpoint.
  double sigmoid_mid = 0.66;
  /// Std-dev of the per-(model, dataset) accuracy idiosyncrasy.
  double pair_noise_stddev = 0.015;
  /// Std-dev of the per-(architecture family, dataset) accuracy
  /// idiosyncrasy, shared by all models of a family: the architecture x
  /// dataset-type interaction that makes PoolFormers transfer alike and
  /// distinguishes family groups in the paper's Table II clustering.
  double family_noise_stddev = 0.05;
};

/// Deterministic ground truth of the simulation: what accuracy a model
/// *would* reach if fine-tuned to convergence on a dataset, and how its
/// learning curve is shaped. This is the simulator-side stand-in for "run
/// the GPU job and look" — the paper's algorithms never read it directly;
/// only the fine-tune simulator (to synthesize curves) and the evaluation
/// harnesses (to rank methods against the truth) do.
class TransferOracle {
 public:
  explicit TransferOracle(OracleParams params = OracleParams());

  /// Evaluates the latent truth for the pair. Deterministic in
  /// (model name, dataset name, params).
  TransferTruth Evaluate(const PretrainedModel& model,
                         const Dataset& dataset) const;

  const OracleParams& params() const { return params_; }

 private:
  OracleParams params_;
};

}  // namespace tps

#endif  // TPS_SIM_TRANSFER_ORACLE_H_
