#ifndef TPS_SIM_ENSEMBLE_H_
#define TPS_SIM_ENSEMBLE_H_

#include <vector>

#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/statusor.h"

namespace tps {

/// Majority-vote ensemble evaluation over fine-tuned members (the
/// multi-source reuse direction the paper discusses via Palette [3] and
/// the ensemble-selection works [59][60][61]).
///
/// Simulation model: each virtual test example carries a latent difficulty
/// shared by all members (drawn from the target's seed), plus a
/// member-specific component that shrinks as two members' affinity vectors
/// get closer. A member answers an example correctly when its calibrated
/// skill (derived from its simulated final accuracy on the target) clears
/// the example's difficulty for it. This reproduces the two facts
/// ensemble selection lives on: (a) ensembling correlated models ~ the
/// best single model, and (b) ensembling accurate-but-diverse models beats
/// the best single model.
struct EnsembleResult {
  /// Majority-vote accuracy of the ensemble.
  double ensemble_accuracy = 0.0;
  /// Final test accuracy of each member, aligned with the input order.
  std::vector<double> member_accuracies;
  /// Mean pairwise affinity cosine between members (1 = clones): the
  /// diversity diagnostic.
  double mean_member_similarity = 0.0;
};

struct EnsembleOptions {
  /// Number of virtual test examples to vote over.
  int num_examples = 4096;
  /// Weight of the shared (all-members) difficulty component in [0, 1];
  /// the member-specific remainder is further correlated between similar
  /// members.
  double shared_difficulty_weight = 0.55;
  uint64_t seed = 1234;
};

/// Evaluates a majority-vote ensemble of `members` (zoo indices) fully
/// fine-tuned on `target`. Fails on an empty member list, out-of-range
/// indices, or domain mismatches. Ties (even splits) count as incorrect,
/// the pessimistic convention.
StatusOr<EnsembleResult> EvaluateEnsemble(
    const ModelZoo& zoo, const std::vector<size_t>& members,
    const Dataset& target, const FineTuneSimulator& simulator,
    const Hyperparams& hp, const EnsembleOptions& options = EnsembleOptions());

}  // namespace tps

#endif  // TPS_SIM_ENSEMBLE_H_
