#include "sim/finetune_simulator.h"

#include <algorithm>
#include <cmath>

#include "data/latent.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tps {

namespace {
/// The paper's default learning rate; curve shapes are expressed relative
/// to it.
constexpr double kReferenceLearningRate = 3e-5;
}  // namespace

double TrainingRun::best_val() const {
  return val_accuracy.empty() ? 0.0 : stats::Max(val_accuracy);
}

FineTuneSimulator::FineTuneSimulator(TransferOracle oracle)
    : oracle_(std::move(oracle)) {}

StatusOr<TrainingRun> FineTuneSimulator::Run(const PretrainedModel& model,
                                             const Dataset& dataset,
                                             const Hyperparams& hp) const {
  if (model.domain() != dataset.spec().domain) {
    return Status::InvalidArgument(
        "cannot fine-tune " + model.name() + " (" + ToString(model.domain()) +
        ") on " + dataset.name() + " (" +
        ToString(dataset.spec().domain) + ")");
  }
  if (hp.epochs < 1) {
    return Status::InvalidArgument("hyperparams need at least 1 epoch");
  }
  if (hp.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be positive");
  }

  const TransferTruth truth = oracle_.Evaluate(model, dataset);
  const double chance = dataset.spec().EffectiveChance();

  // Learning-rate scaling: lower rates converge more slowly and overfit
  // less; higher rates the reverse. Sub-linear so a 3x rate change does not
  // trivialize training.
  const double lr_ratio = hp.learning_rate / kReferenceLearningRate;
  const double rate = truth.convergence_rate * std::pow(lr_ratio, 0.7);
  const double overfit =
      truth.overfit_coefficient * std::pow(lr_ratio, 1.5);
  // Overfitting sets in once the curve has essentially saturated.
  const double onset_epoch = 2.0 / std::max(rate, 1e-3);

  Rng rng(latent::CombineSeeds(
      latent::CombineSeeds(model.seed(), dataset.seed()),
      latent::CombineSeeds(latent::HashString("finetune-run"),
                           hp.seed * 2654435761ULL +
                               static_cast<uint64_t>(hp.learning_rate * 1e9))));
  // Per-epoch measurement noise, scaled by the dataset's achievable range
  // (see TransferOracle) so narrow-range tasks keep a usable
  // signal-to-noise ratio.
  const double noise_scale =
      0.008 * (1.0 + dataset.spec().difficulty) *
      (dataset.spec().EffectiveCeiling() - chance) / 0.6;

  TrainingRun run;
  run.model_name = model.name();
  run.dataset_name = dataset.name();
  run.hyperparams = hp;
  run.val_accuracy.reserve(static_cast<size_t>(hp.epochs));
  run.test_accuracy.reserve(static_cast<size_t>(hp.epochs));

  for (int epoch = 1; epoch <= hp.epochs; ++epoch) {
    const double t = static_cast<double>(epoch);
    const double progress = 1.0 - std::exp(-rate * t);
    const double decline = overfit * std::max(0.0, t - onset_epoch);
    const double clean =
        chance + (truth.asymptotic_accuracy - chance) * progress - decline;
    // Validation is noisier than test (smaller split).
    const double val =
        stats::Clamp(clean + noise_scale * 1.4 * rng.Normal(), 0.0, 1.0);
    const double test =
        stats::Clamp(clean - 0.004 + noise_scale * rng.Normal(), 0.0, 1.0);
    run.val_accuracy.push_back(val);
    run.test_accuracy.push_back(test);
  }
  MetricsRegistry& metrics = *MetricsRegistry::Default();
  metrics.counter("sim.runs").Increment();
  metrics.counter("sim.epochs_simulated")
      .Increment(static_cast<uint64_t>(hp.epochs));
  return run;
}

StatusOr<TrainingRun> FineTuneSimulator::RunWithDefaults(
    const PretrainedModel& model, const Dataset& dataset) const {
  return Run(model, dataset, Hyperparams::DefaultsFor(dataset.spec().domain));
}

}  // namespace tps
