#ifndef TPS_SIM_EPOCH_BUDGET_H_
#define TPS_SIM_EPOCH_BUDGET_H_

namespace tps {

/// Cost meter in fine-tuning *epochs*, the unit all the paper's runtime
/// tables (V, VI) are reported in.
///
/// Training charges whole epochs. Proxy-score computation (forward-only
/// inference over the target dataset) charges 0.5 epoch-equivalents per
/// scored model, matching the paper's accounting for the coarse-recall
/// phase ("we count the computation time as 0.5 * |MC| epochs because the
/// inference does not need to compute gradients").
class EpochBudget {
 public:
  /// Charges `epochs` of fine-tuning.
  void ChargeTraining(double epochs) { training_epochs_ += epochs; }

  /// Charges inference for one proxy-score computation (0.5 epochs).
  void ChargeProxyInference() { inference_epochs_ += 0.5; }

  double training_epochs() const { return training_epochs_; }
  double inference_epochs() const { return inference_epochs_; }
  double total_epochs() const { return training_epochs_ + inference_epochs_; }

  void Reset() {
    training_epochs_ = 0.0;
    inference_epochs_ = 0.0;
  }

 private:
  double training_epochs_ = 0.0;
  double inference_epochs_ = 0.0;
};

}  // namespace tps

#endif  // TPS_SIM_EPOCH_BUDGET_H_
