#ifndef TPS_SIM_HYPERPARAMS_H_
#define TPS_SIM_HYPERPARAMS_H_

#include <cstdint>

#include "data/dataset_spec.h"

namespace tps {

/// Fine-tuning hyperparameters. The paper trains NLP tasks for 5 epochs and
/// CV tasks for 4, validating once per epoch; learning rate 3e-5 is its
/// default, 1e-5 the Appendix-A sensitivity variant (Fig. 8).
struct Hyperparams {
  double learning_rate = 3e-5;
  int epochs = 5;
  /// Perturbs run-specific noise (data order etc.); the latent transfer
  /// truth does not depend on it.
  uint64_t seed = 0;

  /// The paper's per-domain defaults: 5 epochs for NLP, 4 for CV, lr 3e-5.
  static Hyperparams DefaultsFor(TaskDomain domain) {
    Hyperparams hp;
    hp.epochs = domain == TaskDomain::kNLP ? 5 : 4;
    return hp;
  }
};

}  // namespace tps

#endif  // TPS_SIM_HYPERPARAMS_H_
