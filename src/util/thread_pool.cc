#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace tps {

namespace {

/// Pool-wide instruments, shared by every ThreadPool instance (the process
/// is expected to run one pool; per-instance split would only blur the
/// dump). Pointers are cached once — registry lookups never sit on the
/// task hot path.
struct PoolInstruments {
  Counter& submitted;
  Counter& completed;
  Histogram& latency_us;
  Gauge& queue_depth;
};

PoolInstruments& Instruments() {
  static PoolInstruments* const instruments = new PoolInstruments{
      MetricsRegistry::Default()->counter("threadpool.tasks_submitted"),
      MetricsRegistry::Default()->counter("threadpool.tasks_completed"),
      MetricsRegistry::Default()->histogram("threadpool.task_latency_us"),
      MetricsRegistry::Default()->gauge("threadpool.queue_depth")};
  return *instruments;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      Instruments().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    std::exception_ptr error;
    {
      ScopedLatencyTimer timer(&Instruments().latency_us);
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
    }
    Instruments().completed.Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  TPS_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    TPS_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    Instruments().queue_depth.Set(static_cast<double>(queue_.size()));
    Instruments().queue_depth.SetMax(static_cast<double>(queue_.size()));
  }
  Instruments().submitted.Increment();
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

namespace {

/// Per-call state of one ParallelFor: a shared claim counter, a completion
/// counter the caller waits on, and the deterministically smallest failing
/// index. Held by shared_ptr so helper tasks that the scheduler runs
/// *after* the call returns (their range already exhausted) still touch
/// live memory — that is what makes nested ParallelFor deadlock-free: the
/// caller never waits for helper tasks to be scheduled, only for all n
/// indices to finish, and it can finish all n itself.
struct ParallelForState {
  ParallelForState(size_t n_in, std::function<void(size_t)> fn_in)
      : n(n_in), fn(std::move(fn_in)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable all_indices_done;
  size_t completed = 0;
  size_t error_index = 0;
  std::exception_ptr error;

  /// Claims indices until the range is exhausted. Every index runs even
  /// after a failure elsewhere, so the recorded error is always the one
  /// from the smallest failing index regardless of scheduling.
  void Drain() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr thrown;
      try {
        fn(i);
      } catch (...) {
        thrown = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(mu);
      if (thrown != nullptr && (error == nullptr || i < error_index)) {
        error = thrown;
        error_index = i;
      }
      ++completed;
      if (completed == n) all_indices_done.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<ParallelForState>(n, fn);
  // One helper task per worker, capped by the range; the calling thread
  // participates too, so a 1-thread pool (or a fully busy one) degenerates
  // to a serial loop on the caller.
  const size_t helpers =
      std::min(static_cast<size_t>(num_threads()), n);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->all_indices_done.wait(
        lock, [&state] { return state->completed == state->n; });
  }
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::ClampThreads(int requested, size_t num_items) {
  const size_t capped =
      std::min<size_t>(static_cast<size_t>(std::max(1, requested)),
                       std::max<size_t>(1, num_items));
  return static_cast<int>(capped);
}

}  // namespace tps
