#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/logging.h"

namespace tps {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  TPS_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    TPS_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

namespace {

/// Per-call state of one ParallelFor: a shared claim counter plus the
/// deterministically smallest failing index. Heap-free aside from the
/// exception slot; lives on the calling thread's stack for the duration of
/// the call.
struct ParallelForState {
  explicit ParallelForState(size_t n_in) : n(n_in) {}

  const size_t n;
  std::atomic<size_t> next{0};

  std::mutex mu;
  size_t error_index = 0;
  std::exception_ptr error;

  /// Claims indices until the range is exhausted. Every index runs even
  /// after a failure elsewhere, so the recorded error is always the one
  /// from the smallest failing index regardless of scheduling.
  void Drain(const std::function<void(size_t)>& fn) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu);
        if (error == nullptr || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ParallelForState state(n);
  // One helper task per worker, capped by the range; the calling thread
  // participates too, so a 1-thread pool degenerates to a serial loop with
  // (at most) one helper.
  const size_t helpers =
      std::min(static_cast<size_t>(num_threads()), n);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([&state, &fn] { state.Drain(fn); });
  }
  state.Drain(fn);
  Wait();
  if (state.error != nullptr) std::rethrow_exception(state.error);
}

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::ClampThreads(int requested, size_t num_items) {
  const size_t capped =
      std::min<size_t>(static_cast<size_t>(std::max(1, requested)),
                       std::max<size_t>(1, num_items));
  return static_cast<int>(capped);
}

}  // namespace tps
