#ifndef TPS_UTIL_STRING_UTIL_H_
#define TPS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tps {
namespace strings {

/// Splits on a single-character delimiter; empty tokens are kept.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on any whitespace run; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

/// Strips leading and trailing whitespace.
std::string Trim(std::string_view text);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

}  // namespace strings
}  // namespace tps

#endif  // TPS_UTIL_STRING_UTIL_H_
