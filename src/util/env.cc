#include "util/env.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace tps {

StatusOr<size_t> ReadFully(SequentialFile* file, size_t n, char* scratch) {
  size_t total = 0;
  while (total < n) {
    TPS_ASSIGN_OR_RETURN(size_t got,
                         file->Read(n - total, scratch + total));
    if (got == 0) break;  // EOF.
    total += got;
  }
  return total;
}

namespace {

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string path, std::ifstream in)
      : path_(std::move(path)), in_(std::move(in)) {}

  StatusOr<size_t> Read(size_t n, char* scratch) override {
    in_.read(scratch, static_cast<std::streamsize>(n));
    const std::streamsize got = in_.gcount();
    if (got < static_cast<std::streamsize>(n) && !in_.eof()) {
      return Status::IOError("read failed: " + path_);
    }
    return static_cast<size_t>(got);
  }

 private:
  std::string path_;
  std::ifstream in_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, std::ofstream out)
      : path_(std::move(path)), out_(std::move(out)) {}

  Status Append(std::string_view data) override {
    out_.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out_) return Status::IOError("write failed: " + path_);
    return Status::OK();
  }

  Status Flush() override {
    out_.flush();
    if (!out_) return Status::IOError("flush failed: " + path_);
    return Status::OK();
  }

 private:
  std::string path_;
  std::ofstream out_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open for read: " + path);
    return std::unique_ptr<SequentialFile>(
        new PosixSequentialFile(path, std::move(in)));
  }

  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError("cannot open for append: " + path);
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, std::move(out)));
  }

  StatusOr<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) override {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot create file: " + path);
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, std::move(out)));
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    const uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) return Status::IOError("cannot stat: " + path);
    return static_cast<uint64_t>(size);
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec) return Status::IOError("cannot truncate: " + path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("cannot rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError("cannot remove: " + path);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace tps
