#ifndef TPS_UTIL_PARALLEL_H_
#define TPS_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace tps {

/// Runs `fn(i)` for every i in [0, n): serially in index order when `pool`
/// is null (or the range is trivial), otherwise via pool->ParallelFor.
///
/// Error contract: the returned Status is the first non-OK status in
/// *index order*, independent of scheduling — the parallel path collects
/// per-index statuses into slots and scans them serially. Library code
/// uses this (not exceptions) for expected failures, so serial and
/// parallel runs fail identically.
inline Status StatusParallelFor(ThreadPool* pool, size_t n,
                                const std::function<Status(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      TPS_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(n);
  pool->ParallelFor(n, [&](size_t i) { statuses[i] = fn(i); });
  for (size_t i = 0; i < n; ++i) {
    TPS_RETURN_NOT_OK(statuses[i]);
  }
  return Status::OK();
}

}  // namespace tps

#endif  // TPS_UTIL_PARALLEL_H_
