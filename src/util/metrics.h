#ifndef TPS_UTIL_METRICS_H_
#define TPS_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tps {

/// Lightweight always-compiled-in metrics: named counters, gauges and
/// fixed-bucket histograms with scoped wall-clock timers.
///
/// Design rules (see "Observability" in DESIGN.md):
///  - Recording is wait-free (relaxed atomics; the histogram min/max use
///    short CAS loops) so instruments can sit on the hot path of the
///    parallel pipeline and stay TSan-clean.
///  - Metrics NEVER feed back into computation. The inertness test suite
///    (tests/core/metrics_inertness_test.cc) proves a run with a live
///    registry is bit-identical to one with a disabled registry.
///  - Instrument pointers are stable for the registry's lifetime, so hot
///    call sites may cache them.
///  - Names are `component.metric[_unit]`, e.g. `recall.proxies_computed`,
///    `threadpool.task_latency_us`.
///
/// A registry constructed with `enabled = false` is a no-op sink: every
/// Record/Increment/Set is a cheap early return. `MetricsRegistry::Default()`
/// is the process-global enabled instance that library-internal
/// instrumentation (thread pool, store, simulator) reports to.

class Counter {
 public:
  explicit Counter(bool enabled) : enabled_(enabled) {}

  void Increment(uint64_t delta = 1) {
    if (!enabled_) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const bool enabled_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(bool enabled) : enabled_(enabled) {}

  void Set(double value) {
    if (!enabled_) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// Retains the maximum of all Set/SetMax values (e.g. peak queue depth).
  void SetMax(double value) {
    if (!enabled_) return;
    double current = max_.load(std::memory_order_relaxed);
    while (value > current &&
           !max_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  double max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  const bool enabled_;
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
/// implicit overflow bucket counts the rest. Also tracks count/sum/min/max.
class Histogram {
 public:
  Histogram(bool enabled, std::vector<double> bucket_bounds);

  /// Default bounds: 1-2-5 decades from 1 to 1e6 — microsecond latencies
  /// from sub-us kernels to multi-second phases.
  static std::vector<double> DefaultLatencyBounds();

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty.
  double max() const;  // 0 when empty.
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// bucket_count(i) for i in [0, bucket_bounds().size()]; the last index
  /// is the overflow bucket.
  uint64_t bucket_count(size_t i) const;

 private:
  const bool enabled_;
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global enabled registry. Never destroyed; instrument pointers
  /// from it are valid for the life of the process.
  static MetricsRegistry* Default();

  bool enabled() const { return enabled_; }

  /// Finds or creates the named instrument. The returned reference is
  /// valid for the registry's lifetime. Creating the same name as two
  /// different instrument kinds is a programming error (checked).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First creation fixes the bucket bounds; later callers get the
  /// existing histogram regardless of the bounds they pass.
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bucket_bounds);

  /// JSON snapshot of every instrument, keys sorted by name:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson(int indent = 2) const;

  /// Zeroes nothing — instead drops all instruments. Callers holding
  /// cached pointers must not use them afterwards; intended for tests and
  /// CLI runs that want a clean slate before a measured section.
  void Clear();

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records the elapsed wall time (in microseconds) into a histogram when
/// destroyed. `histogram` may be null (no-op) so call sites can be
/// unconditionally scoped.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start_)
            .count();
    histogram_->Record(us);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace tps

#endif  // TPS_UTIL_METRICS_H_
