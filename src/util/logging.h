#ifndef TPS_UTIL_LOGGING_H_
#define TPS_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

#include "util/status.h"

namespace tps {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Not thread-safe to mutate concurrently with logging.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace tps

#define TPS_LOG(level)                                                 \
  ::tps::internal::LogMessage(::tps::LogLevel::k##level, __FILE__, __LINE__)

/// CHECK-style invariant assertion: active in all build modes, aborts with a
/// message on failure. Use for programmer errors, not for expected runtime
/// failures (those return Status).
#define TPS_CHECK(condition)                                          \
  (condition) ? static_cast<void>(0)                                  \
              : static_cast<void>(::tps::internal::LogMessage(        \
                                      ::tps::LogLevel::kFatal,        \
                                      __FILE__, __LINE__)             \
                                  << "Check failed: " #condition " ")

#define TPS_CHECK_OK(expr)                                            \
  do {                                                                \
    const ::tps::Status& _tps_check_status = (expr);                  \
    if (!_tps_check_status.ok()) {                                    \
      ::tps::internal::LogMessage(::tps::LogLevel::kFatal, __FILE__,  \
                                  __LINE__)                           \
          << "Check failed (status): " << _tps_check_status.ToString(); \
    }                                                                 \
  } while (false)

#define TPS_DCHECK(condition) TPS_CHECK(condition)

#endif  // TPS_UTIL_LOGGING_H_
