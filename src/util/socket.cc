#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace tps {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(std::string_view data) {
  if (!valid()) return Status::FailedPrecondition("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::string> Socket::RecvLine(std::string* buffer,
                                       size_t max_line_bytes) {
  if (!valid()) return Status::FailedPrecondition("recv on closed socket");
  const auto oversized = [max_line_bytes] {
    return Status::InvalidArgument(
        "line exceeds " + std::to_string(max_line_bytes) + " bytes");
  };
  // Once a line overflows the cap its bytes are dropped as they arrive;
  // we keep reading only to find the '\n' that re-frames the stream.
  bool discarding = false;
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      if (discarding ||
          (max_line_bytes > 0 && newline > max_line_bytes)) {
        buffer->erase(0, newline + 1);
        return oversized();
      }
      std::string line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return line;
    }
    if (max_line_bytes > 0 && buffer->size() > max_line_bytes) {
      discarding = true;
      buffer->clear();
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {  // EOF.
      if (discarding) {
        buffer->clear();
        return oversized();
      }
      if (buffer->empty()) {
        return Status::OutOfRange("connection closed");
      }
      std::string line = std::move(*buffer);
      buffer->clear();
      return line;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void Socket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<ServerSocket> ServerSocket::ListenUnix(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("unix socket path must not be empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  struct ::stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::AlreadyExists("refusing to replace non-socket file: " +
                                   path);
    }
    ::unlink(path.c_str());  // Stale socket from a previous server.
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Errno("listen " + path);
    ::close(fd);
    return status;
  }
  return ServerSocket(fd, 0, path);
}

StatusOr<ServerSocket> ServerSocket::ListenTcp(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("tcp port out of range");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return ServerSocket(fd, ntohs(addr.sin_port), "");
}

ServerSocket::ServerSocket(ServerSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

ServerSocket& ServerSocket::operator=(ServerSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

StatusOr<Socket> ServerSocket::Accept() {
  if (!valid()) return Status::Unavailable("server socket closed");
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    // A shut-down listener reports EINVAL (POSIX) or ECONNABORTED; both
    // mean "no more clients", which callers treat as the stop signal.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) {
      return Status::Unavailable("server socket shut down");
    }
    return Errno("accept");
  }
}

void ServerSocket::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void ServerSocket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
    if (!unix_path_.empty()) {
      ::unlink(unix_path_.c_str());
      unix_path_.clear();
    }
  }
}

StatusOr<Socket> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("connect " + path);
    ::close(fd);
    return status;
  }
  return Socket(fd);
}

StatusOr<Socket> ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("connect port " + std::to_string(port));
    ::close(fd);
    return status;
  }
  return Socket(fd);
}

}  // namespace tps
