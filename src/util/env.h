#ifndef TPS_UTIL_ENV_H_
#define TPS_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace tps {

/// Sequentially readable file handle (LevelDB-style seam between the store
/// layer and the filesystem).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into `scratch` and returns the number of bytes
  /// read. Zero means end of file. May return fewer bytes than requested
  /// even before EOF (a short read); callers that need exactly `n` bytes
  /// must loop (see `ReadFully`).
  virtual StatusOr<size_t> Read(size_t n, char* scratch) = 0;
};

/// Reads exactly `n` bytes unless EOF or an error intervenes; returns the
/// number of bytes actually read. Loops over short reads so fault-injected
/// or signal-interrupted reads cannot masquerade as a torn file.
StatusOr<size_t> ReadFully(SequentialFile* file, size_t n, char* scratch);

/// Append-only writable file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes to the OS.
  virtual Status Flush() = 0;
};

/// Filesystem abstraction used by the persistence stack (record log,
/// KvStore, ModelStore). Production code uses `Env::Default()` (POSIX);
/// tests substitute a `FaultInjectingEnv` to exercise crash and
/// corruption paths deterministically.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for sequential reading.
  virtual StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  /// Opens `path` for appending, creating it if absent.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty (compaction temp files).
  virtual StatusOr<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// Shrinks (or grows, zero-filled) `path` to exactly `size` bytes.
  /// Recovery uses this to drop a torn tail before reopening for append.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// The process-wide POSIX environment. Never null; not owned.
  static Env* Default();
};

}  // namespace tps

#endif  // TPS_UTIL_ENV_H_
