#include "util/csv_writer.h"

#include <fstream>
#include <sstream>

namespace tps {

namespace {

std::string EscapeCell(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

void EmitRow(std::ostringstream& os, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ",";
    os << EscapeCell(row[i]);
  }
  os << "\n";
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  EmitRow(os, header_);
  for (const auto& row : rows_) EmitRow(os, row);
  return os.str();
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  out << ToString();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace tps
