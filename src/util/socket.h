#ifndef TPS_UTIL_SOCKET_H_
#define TPS_UTIL_SOCKET_H_

#include <string>
#include <string_view>

#include "util/statusor.h"

namespace tps {

/// Thin RAII wrappers over POSIX stream sockets for the serving front end
/// ("Serving" in DESIGN.md). Deliberately blocking: the server dedicates a
/// thread per connection and unblocks Accept/Recv with ::shutdown(), which
/// keeps the whole stack TSan-clean without readiness polling.

/// One connected stream socket (Unix-domain or TCP). Move-only; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data`, looping over partial writes and EINTR.
  Status SendAll(std::string_view data);

  /// Reads up to and including the next '\n', consuming from `buffer`
  /// first (bytes read past a previous line are left there). Returns the
  /// line WITHOUT the trailing newline. An empty optional-style contract
  /// is not needed: a clean EOF before any byte of a new line returns
  /// kOutOfRange("connection closed"); EOF mid-line returns the partial
  /// line as-is.
  ///
  /// `max_line_bytes` bounds how much one line may buffer (0 = unlimited).
  /// An oversized line is DISCARDED — the call keeps draining bytes up to
  /// and including the line's '\n' terminator without retaining them, then
  /// returns InvalidArgument. The stream stays framed: the next RecvLine
  /// starts at the following line, so a server can answer the error and
  /// keep the session instead of tearing it down (and a peer streaming
  /// gigabytes of unterminated garbage holds O(max) memory, not O(input)).
  StatusOr<std::string> RecvLine(std::string* buffer,
                                 size_t max_line_bytes = 0);

  /// Half-closes both directions (unblocks a peer or a blocked reader on
  /// this socket) without releasing the fd.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket, Unix-domain or TCP (IPv4 loopback).
class ServerSocket {
 public:
  /// Binds and listens on a Unix-domain socket at `path`. An existing
  /// socket file at `path` is removed first (stale leftover from a crashed
  /// server); a non-socket file is an error.
  static StatusOr<ServerSocket> ListenUnix(const std::string& path);

  /// Binds and listens on 127.0.0.1:`port`. port 0 picks a free port;
  /// port() reports the actual one.
  static StatusOr<ServerSocket> ListenTcp(int port);

  ServerSocket() = default;
  ~ServerSocket() { Close(); }
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;
  ServerSocket(ServerSocket&& other) noexcept;
  ServerSocket& operator=(ServerSocket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Blocks until a client connects. After Shutdown() (from any thread)
  /// the pending and all future calls return kUnavailable.
  StatusOr<Socket> Accept();

  /// Unblocks any thread parked in Accept(). Idempotent; does not close
  /// the fd (the destructor / Close does, removing the Unix socket file).
  void Shutdown();

  void Close();

 private:
  ServerSocket(int fd, int port, std::string unix_path)
      : fd_(fd), port_(port), unix_path_(std::move(unix_path)) {}

  int fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
};

/// Connects to a Unix-domain socket at `path`.
StatusOr<Socket> ConnectUnix(const std::string& path);

/// Connects to 127.0.0.1:`port`.
StatusOr<Socket> ConnectTcp(int port);

}  // namespace tps

#endif  // TPS_UTIL_SOCKET_H_
