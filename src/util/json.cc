#include "util/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace tps {
namespace json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) { return Number(static_cast<double>(i)); }

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::bool_value() const {
  TPS_CHECK(type_ == Type::kBool);
  return bool_;
}

double Value::number() const {
  TPS_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& Value::string() const {
  TPS_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<Value>& Value::items() const {
  TPS_CHECK(type_ == Type::kArray);
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::entries() const {
  TPS_CHECK(type_ == Type::kObject);
  return object_;
}

void Value::Append(Value v) {
  TPS_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

void Value::Set(const std::string& key, Value v) {
  TPS_CHECK(type_ == Type::kObject);
  for (auto& entry : object_) {
    if (entry.first == key) {
      entry.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Value* Value::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& entry : object_) {
    if (entry.first == key) return &entry.second;
  }
  return nullptr;
}

size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

StatusOr<bool> Value::GetBool(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument("missing or non-bool member: " + key);
  }
  return v->bool_value();
}

StatusOr<double> Value::GetNumber(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-number member: " + key);
  }
  return v->number();
}

StatusOr<std::string> Value::GetString(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing or non-string member: " + key);
  }
  return v->string();
}

StatusOr<const Value*> Value::GetArray(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("missing or non-array member: " + key);
  }
  return v;
}

StatusOr<const Value*> Value::GetObject(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_object()) {
    return Status::InvalidArgument("missing or non-object member: " + key);
  }
  return v;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // inf/NaN have no JSON spelling.
    *out += "null";
    return;
  }
  // Integral doubles in the exact range print as integers — this keeps
  // counters and indices readable and byte-stable.
  constexpr double kExactIntBound = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) < kExactIntBound) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      *out += EscapeString(string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        *out += EscapeString(object_[i].first);
        *out += indent >= 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a bounded cursor. Every path returns a
/// Status instead of crashing; depth is capped so hostile nesting cannot
/// blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> ParseDocument() {
    SkipWhitespace();
    TPS_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing bytes after JSON document");
    }
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Status::InvalidArgument(
          std::string("expected '") + c + "' at offset " +
          std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  StatusOr<Value> ParseValue(int depth) {
    // depth is the nesting level of the value being parsed (document
    // root = 0), so rejecting at == kMaxParseDepth admits documents up to
    // exactly kMaxParseDepth levels deep.
    if (depth >= kMaxParseDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipWhitespace();
    if (AtEnd()) return Status::InvalidArgument("unexpected end of JSON");
    switch (Peek()) {
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Status::InvalidArgument("bad literal");
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Status::InvalidArgument("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Status::InvalidArgument("bad literal");
      case '"': {
        TPS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseArray(int depth) {
    TPS_RETURN_NOT_OK(Expect('['));
    Value array = Value::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      TPS_ASSIGN_OR_RETURN(Value element, ParseValue(depth + 1));
      array.Append(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Status::InvalidArgument("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return array;
      }
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  StatusOr<Value> ParseObject(int depth) {
    TPS_RETURN_NOT_OK(Expect('{'));
    Value object = Value::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Status::InvalidArgument("expected object key string");
      }
      TPS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      TPS_RETURN_NOT_OK(Expect(':'));
      TPS_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Status::InvalidArgument("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return object;
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  StatusOr<std::string> ParseString() {
    TPS_RETURN_NOT_OK(Expect('"'));
    std::string out;
    for (;;) {
      if (AtEnd()) return Status::InvalidArgument("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Status::InvalidArgument("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape digit");
            }
          }
          // UTF-8 encode. Lone surrogates are encoded as-is (WTF-8 style)
          // rather than rejected — the parser's job here is to never
          // crash, not to police Unicode.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape sequence");
      }
    }
  }

  bool ConsumeDigits() {
    bool any = false;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      any = true;
      ++pos_;
    }
    return any;
  }

  /// Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?
  /// [0-9]+)?. Leading '+', leading zeros ("01"), bare trailing dots
  /// ("1.") and dotless exponents ("1e") are all rejected — the codecs in
  /// this repo only ever parse numbers their own Dump produced, and Dump
  /// never emits those forms.
  StatusOr<Value> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Status::InvalidArgument("malformed number at offset " +
                                     std::to_string(start));
    }
    if (Peek() == '0') {
      ++pos_;
    } else if (!ConsumeDigits()) {
      return Status::InvalidArgument("malformed number at offset " +
                                     std::to_string(start));
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!ConsumeDigits()) {
        return Status::InvalidArgument("malformed number: missing digits "
                                       "after decimal point");
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!ConsumeDigits()) {
        return Status::InvalidArgument("malformed number: missing exponent "
                                       "digits");
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("malformed number: " + token);
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("number overflows double: " + token);
    }
    return Value::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace tps
