#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tps {
namespace stats {

double Sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - mean) * (v - mean);
  return accum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

size_t ArgMax(const std::vector<double>& values) {
  if (values.empty()) return 0;
  return static_cast<size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

size_t ArgMin(const std::vector<double>& values) {
  if (values.empty()) return 0;
  return static_cast<size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = Clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order = ArgSortAscending(values);
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    // Find the run of tied values and assign each the average rank.
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

std::vector<size_t> ArgSortDescending(const std::vector<double>& values) {
  std::vector<size_t> indices(values.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](size_t a, size_t b) { return values[a] > values[b]; });
  return indices;
}

std::vector<size_t> ArgSortAscending(const std::vector<double>& values) {
  std::vector<size_t> indices(values.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](size_t a, size_t b) { return values[a] < values[b]; });
  return indices;
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace stats
}  // namespace tps
