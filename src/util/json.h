#ifndef TPS_UTIL_JSON_H_
#define TPS_UTIL_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace tps {
namespace json {

/// Minimal JSON document model for the observability layer (metrics dumps,
/// selection traces, bench telemetry). Deliberately small: one tagged value
/// type, a deterministic writer, and a hardened recursive-descent parser.
///
/// Determinism contract: `Dump()` is a pure function of the value — object
/// keys keep insertion order, doubles are printed with %.17g (lossless
/// round-trip), and integral doubles in the exact int64 range print without
/// an exponent or fraction. Two equal values always dump to identical
/// bytes, so JSON artifacts can be compared byte-for-byte in golden tests.
///
/// Safety contract: `Parse()` never crashes or throws on malformed input —
/// truncated documents, bad escapes, deep nesting (bounded by
/// `kMaxParseDepth`) and trailing garbage all return InvalidArgument.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value String(std::string s);
  static Value Array();
  static Value Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one on a value is a programming
  /// error (checked). Use the As* helpers for fallible extraction when
  /// consuming parsed input.
  bool bool_value() const;
  double number() const;
  const std::string& string() const;

  /// Array elements / object entries (object keys keep insertion order).
  const std::vector<Value>& items() const;
  const std::vector<std::pair<std::string, Value>>& entries() const;

  /// Appends to an array value.
  void Append(Value v);
  /// Sets (or overwrites) an object key.
  void Set(const std::string& key, Value v);

  /// Object lookup; null when absent or this is not an object.
  const Value* Find(const std::string& key) const;
  size_t size() const;

  /// Fallible extraction for parsed documents: object member `key` of the
  /// required type, as a Status error (never a crash) on mismatch.
  StatusOr<bool> GetBool(const std::string& key) const;
  StatusOr<double> GetNumber(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<const Value*> GetArray(const std::string& key) const;
  StatusOr<const Value*> GetObject(const std::string& key) const;

  /// Serializes. indent < 0 -> compact one-line form; indent >= 0 ->
  /// pretty-printed with that many spaces per level. Non-finite numbers
  /// (inf/NaN have no JSON spelling) are emitted as null.
  std::string Dump(int indent = -1) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Nesting bound for Parse — deeper documents are rejected, not recursed
/// into, so adversarial inputs cannot overflow the stack.
inline constexpr int kMaxParseDepth = 96;

/// Parses one JSON document (with optional surrounding whitespace).
/// Trailing non-whitespace bytes are an error.
StatusOr<Value> Parse(const std::string& text);

/// Escapes `s` into a double-quoted JSON string literal. Bytes >= 0x20 are
/// passed through verbatim (arbitrary byte strings round-trip regardless of
/// UTF-8 validity); control bytes use the standard short escapes or \u00XX.
std::string EscapeString(const std::string& s);

}  // namespace json
}  // namespace tps

#endif  // TPS_UTIL_JSON_H_
