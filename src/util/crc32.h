#ifndef TPS_UTIL_CRC32_H_
#define TPS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tps {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// guarding every record in the store's log files.
uint32_t Crc32(const void* data, size_t length);
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks with the previous return value.
/// Start with `Crc32Init()` and finish with `Crc32Finish()`.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, const void* data, size_t length);
uint32_t Crc32Finish(uint32_t state);

}  // namespace tps

#endif  // TPS_UTIL_CRC32_H_
