#ifndef TPS_UTIL_STATUSOR_H_
#define TPS_UTIL_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tps {

/// Holds either a value of type T or an error Status.
///
/// Accessing the value of a non-OK StatusOr aborts the process with a
/// diagnostic (library code is exception-free), so callers must check ok()
/// (or use ValueOr) first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK StatusOr must
  /// carry a value.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal(
          "StatusOr constructed from OK status without a value");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "FATAL: accessing value of failed StatusOr: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace tps

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define TPS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  TPS_ASSIGN_OR_RETURN_IMPL_(                                 \
      TPS_STATUS_MACROS_CONCAT_(_tps_statusor, __LINE__), lhs, rexpr)

#define TPS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) return statusor.status();          \
  lhs = std::move(statusor).value()

#define TPS_STATUS_MACROS_CONCAT_(x, y) TPS_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define TPS_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // TPS_UTIL_STATUSOR_H_
