#ifndef TPS_UTIL_TIMER_H_
#define TPS_UTIL_TIMER_H_

#include <chrono>

namespace tps {

/// Wall-clock stopwatch for coarse harness timing. The paper reports costs
/// in *training epochs* (see sim::EpochBudget); this timer only instruments
/// harness overheads.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tps

#endif  // TPS_UTIL_TIMER_H_
