#include "util/crc32.h"

namespace tps {

namespace {

/// Lazily built 256-entry lookup table for the reflected polynomial.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t state, const void* data, size_t length) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < length; ++i) {
    state = (state >> 8) ^ table[(state ^ bytes[i]) & 0xFFu];
  }
  return state;
}

uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, size_t length) {
  return Crc32Finish(Crc32Update(Crc32Init(), data, length));
}

uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace tps
