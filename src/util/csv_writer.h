#ifndef TPS_UTIL_CSV_WRITER_H_
#define TPS_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace tps {

/// Accumulates rows and writes an RFC-4180-ish CSV file. Cells containing
/// commas, quotes or newlines are quoted; embedded quotes are doubled.
/// Benches use this to dump figure series for external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Writes header plus all rows to `path`. Fails with IOError if the file
  /// cannot be opened.
  Status WriteToFile(const std::string& path) const;

  /// Renders the CSV content to a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tps

#endif  // TPS_UTIL_CSV_WRITER_H_
