#include "util/metrics.h"

#include <algorithm>
#include <limits>

#include "util/json.h"
#include "util/logging.h"

namespace tps {

Histogram::Histogram(bool enabled, std::vector<double> bucket_bounds)
    : enabled_(enabled),
      bounds_(std::move(bucket_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  TPS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

void Histogram::Record(double value) {
  if (!enabled_) return;
  // Linear scan: the fixed bucket lists are short (~21 entries) and the
  // scan is branch-predictable, so this beats binary search at this size.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double current_min = min_.load(std::memory_order_relaxed);
  while (value < current_min &&
         !min_.compare_exchange_weak(current_min, value,
                                     std::memory_order_relaxed)) {
  }
  double current_max = max_.load(std::memory_order_relaxed);
  while (value > current_max &&
         !max_.compare_exchange_weak(current_max, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

uint64_t Histogram::bucket_count(size_t i) const {
  TPS_CHECK(i < buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Default() {
  // Intentionally leaked: instrumented code (including other static-storage
  // objects) may record during shutdown.
  static MetricsRegistry* const registry = new MetricsRegistry(true);
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TPS_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(enabled_)).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TPS_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(enabled_)).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::DefaultLatencyBounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  TPS_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                enabled_, std::move(bucket_bounds)))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::ToJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value root = json::Value::Object();

  json::Value counters = json::Value::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name,
                 json::Value::Int(static_cast<int64_t>(counter->value())));
  }
  root.Set("counters", std::move(counters));

  json::Value gauges = json::Value::Object();
  for (const auto& [name, gauge] : gauges_) {
    json::Value g = json::Value::Object();
    g.Set("value", json::Value::Number(gauge->value()));
    g.Set("max", json::Value::Number(gauge->max_value()));
    gauges.Set(name, std::move(g));
  }
  root.Set("gauges", std::move(gauges));

  json::Value histograms = json::Value::Object();
  for (const auto& [name, histogram] : histograms_) {
    json::Value h = json::Value::Object();
    h.Set("count",
          json::Value::Int(static_cast<int64_t>(histogram->count())));
    h.Set("sum", json::Value::Number(histogram->sum()));
    h.Set("min", json::Value::Number(histogram->min()));
    h.Set("max", json::Value::Number(histogram->max()));
    json::Value buckets = json::Value::Array();
    const std::vector<double>& bounds = histogram->bucket_bounds();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      const uint64_t count = histogram->bucket_count(i);
      if (count == 0) continue;  // Sparse dump: most buckets are empty.
      json::Value bucket = json::Value::Object();
      if (i < bounds.size()) {
        bucket.Set("le", json::Value::Number(bounds[i]));
      } else {
        bucket.Set("le", json::Value::String("inf"));
      }
      bucket.Set("count", json::Value::Int(static_cast<int64_t>(count)));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(h));
  }
  root.Set("histograms", std::move(histograms));
  return root.Dump(indent);
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tps
