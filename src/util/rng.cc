#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace tps {

namespace {

// SplitMix64: used only for seeding.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TPS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TPS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full int64 range wrapped around.
  const uint64_t draw = (span == 0) ? Next() : UniformInt(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  TPS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TPS_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace tps
