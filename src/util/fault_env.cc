#include "util/fault_env.h"

#include <algorithm>
#include <utility>

namespace tps {

/// Wraps a real WritableFile and applies the owning env's armed write
/// faults. The write counter lives on the env so faults can target the
/// Nth write across files (e.g. a compaction temp file after the log).
class FaultInjectingWritableFile final : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingEnv* env,
                             std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    const uint64_t index = ++env_->writes_seen_;
    if (env_->tear_at_write_ != 0 && index == env_->tear_at_write_) {
      const size_t keep = static_cast<size_t>(
          std::min<uint64_t>(env_->tear_keep_bytes_, data.size()));
      if (keep > 0) {
        TPS_RETURN_NOT_OK(base_->Append(data.substr(0, keep)));
        TPS_RETURN_NOT_OK(base_->Flush());
      }
      return Status::IOError("injected torn write (kept " +
                             std::to_string(keep) + " bytes)");
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

/// Caps each Read at the env's max chunk size to simulate short reads.
class FaultInjectingSequentialFile final : public SequentialFile {
 public:
  FaultInjectingSequentialFile(FaultInjectingEnv* env,
                               std::unique_ptr<SequentialFile> base)
      : env_(env), base_(std::move(base)) {}

  StatusOr<size_t> Read(size_t n, char* scratch) override {
    return base_->Read(std::min(n, env_->max_read_chunk_), scratch);
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<SequentialFile> base_;
};

StatusOr<std::unique_ptr<SequentialFile>>
FaultInjectingEnv::NewSequentialFile(const std::string& path) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> base,
                       base_->NewSequentialFile(path));
  return std::unique_ptr<SequentialFile>(
      new FaultInjectingSequentialFile(this, std::move(base)));
}

StatusOr<std::unique_ptr<WritableFile>>
FaultInjectingEnv::NewAppendableFile(const std::string& path) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewAppendableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(this, std::move(base)));
}

StatusOr<std::unique_ptr<WritableFile>>
FaultInjectingEnv::NewTruncatedFile(const std::string& path) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewTruncatedFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(this, std::move(base)));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  ++renames_seen_;
  if (failing_renames_ > 0) {
    --failing_renames_;
    return Status::IOError("injected rename failure: " + from + " -> " + to);
  }
  return base_->RenameFile(from, to);
}

}  // namespace tps
