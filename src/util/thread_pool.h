#ifndef TPS_UTIL_THREAD_POOL_H_
#define TPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tps {

/// Fixed-size pool of worker threads draining one shared FIFO queue — no
/// work stealing, no per-thread queues. The online selection pipeline
/// (coarse recall, fine selection) and the offline performance-matrix
/// build all share one instance, so a process uses a bounded number of
/// threads no matter how many pipeline stages run.
///
/// Determinism contract: the pool guarantees nothing about *execution
/// order*; callers obtain bit-identical results by writing every task's
/// output to an index-addressed slot the caller owns (see ParallelFor) and
/// reducing the slots in index order on the submitting thread. Because all
/// per-index computations in this codebase are pure functions of their
/// index, parallel output is bit-identical to serial output.
///
/// Observability: the pool reports `threadpool.tasks_submitted` /
/// `threadpool.tasks_completed` counters, a `threadpool.task_latency_us`
/// histogram and a `threadpool.queue_depth` gauge (current + peak) to
/// MetricsRegistry::Default(). Recording is relaxed-atomic and never
/// affects scheduling or results.
class ThreadPool {
 public:
  /// Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins all workers. Pending tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks may call Submit and ParallelFor on the same
  /// pool, but not Wait (a task waiting for itself to finish would
  /// deadlock). An exception escaping a task is captured; the first one
  /// captured is rethrown by the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished, then rethrows
  /// the first captured task exception (if any) and clears it. Must not be
  /// called from inside a pool task.
  void Wait();

  /// Runs fn(i) for every i in [0, n) across the pool *and* the calling
  /// thread, returning when all n calls have finished. Work is handed out
  /// via a shared counter; all indices are executed even if some throw, so
  /// failure reporting is deterministic: the exception from the smallest
  /// failing index is rethrown on the calling thread.
  ///
  /// fn must be safe to call concurrently for distinct indices and should
  /// write its result to a caller-owned slot at index i. n == 0 is a
  /// no-op.
  ///
  /// Safe to call from inside a pool task (nested fan-out): the calling
  /// task drains the whole index range itself if every worker is busy, and
  /// it only waits on *index completion* — never on its helper tasks being
  /// scheduled — so a fully occupied pool makes nested calls degrade to a
  /// serial loop instead of deadlocking. Helper tasks that run after the
  /// range is exhausted are no-ops (they share ownership of the call
  /// state, so late execution is safe).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0).
  static int DefaultThreads();

  /// Clamps a requested worker count to [1, num_items] so no idle workers
  /// are spawned for work lists smaller than the request.
  static int ClampThreads(int requested, size_t num_items);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  /// Tasks submitted but not yet finished (queued + running).
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace tps

#endif  // TPS_UTIL_THREAD_POOL_H_
