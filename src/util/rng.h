#ifndef TPS_UTIL_RNG_H_
#define TPS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tps {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state.
///
/// Every stochastic component in the library takes a Rng (or a seed) so
/// experiments are exactly reproducible run-to-run and platform-to-platform;
/// nothing uses std::random_device or unseeded global state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Non-positive weights are treated as zero; if all weights
  /// are zero the index is uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n).
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator. Streams from distinct calls on
  /// the same parent are decorrelated (SplitMix64 over a fresh draw).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tps

#endif  // TPS_UTIL_RNG_H_
