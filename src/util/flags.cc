#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace tps {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

StatusOr<FlagParser> FlagParser::Parse(
    const std::vector<std::string>& args) {
  FlagParser parser;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || !strings::StartsWith(arg, "--")) {
      parser.positionals_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      const std::string value = body.substr(eq + 1);
      if (name.empty() || value.empty()) {
        return Status::InvalidArgument("malformed flag '" + arg + "'");
      }
      parser.flags_[name] = value;
      continue;
    }
    // `--flag value` when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < args.size() && !strings::StartsWith(args[i + 1], "--")) {
      parser.flags_[body] = args[i + 1];
      ++i;
    } else {
      parser.flags_[body] = "";
    }
  }
  return parser;
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return value;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return value;
}

StatusOr<bool> FlagParser::GetBool(const std::string& name,
                                   bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string value = strings::ToLower(it->second);
  if (value.empty() || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects a boolean, got '" + it->second +
                                 "'");
}

std::vector<std::string> FlagParser::GetList(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return {};
  return strings::Split(it->second, ',');
}

}  // namespace tps
