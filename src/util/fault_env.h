#ifndef TPS_UTIL_FAULT_ENV_H_
#define TPS_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "util/env.h"

namespace tps {

/// An Env decorator that injects deterministic filesystem faults, used by
/// the store test suite to simulate crashes mid-write, torn sectors, short
/// reads and failed renames without any real I/O error.
///
/// Faults are armed by call index (1-based, counted across all files the
/// env has opened), so a test can say "the 3rd Append tears after 5 bytes"
/// and replay the exact failure every run. All other calls pass straight
/// through to the base env. Single-threaded, like the store layer itself.
class FaultInjectingEnv final : public Env {
 public:
  /// `base` must outlive this env; it is not owned.
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  // --- Fault arming. ---

  /// The `nth` Append (1-based, counted from the last Reset) writes only
  /// the first `keep_bytes` bytes of its payload, then returns IOError —
  /// a torn write. `keep_bytes` past the payload size keeps it all (the
  /// write lands but still reports failure, like a crash after the write
  /// hit the disk but before the ack).
  void TearWrite(uint64_t nth, uint64_t keep_bytes) {
    tear_at_write_ = nth;
    tear_keep_bytes_ = keep_bytes;
  }

  /// The `nth` Append fails cleanly: no bytes written.
  void FailWrite(uint64_t nth) { TearWrite(nth, 0); }

  /// The next `count` RenameFile calls fail without renaming.
  void FailRenames(uint64_t count) { failing_renames_ = count; }

  /// Every SequentialFile::Read returns at most `max_bytes` (short reads).
  void SetMaxReadChunk(size_t max_bytes) { max_read_chunk_ = max_bytes; }

  /// Disarms all faults and resets the operation counters.
  void Reset() {
    writes_seen_ = 0;
    renames_seen_ = 0;
    tear_at_write_ = 0;
    tear_keep_bytes_ = 0;
    failing_renames_ = 0;
    max_read_chunk_ = std::numeric_limits<size_t>::max();
  }

  // --- Operation counters (for assertions). ---
  uint64_t writes_seen() const { return writes_seen_; }
  uint64_t renames_seen() const { return renames_seen_; }

  // --- Env interface. ---
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewTruncatedFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }

 private:
  friend class FaultInjectingWritableFile;
  friend class FaultInjectingSequentialFile;

  Env* base_;
  uint64_t writes_seen_ = 0;
  uint64_t renames_seen_ = 0;
  uint64_t tear_at_write_ = 0;  // 0 = disarmed.
  uint64_t tear_keep_bytes_ = 0;
  uint64_t failing_renames_ = 0;
  size_t max_read_chunk_ = std::numeric_limits<size_t>::max();
};

}  // namespace tps

#endif  // TPS_UTIL_FAULT_ENV_H_
