#ifndef TPS_UTIL_FLAGS_H_
#define TPS_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace tps {

/// Minimal command-line parser for the CLI tools.
///
/// Grammar: `program [subcommand] [--flag=value | --flag value | --bool]
/// [positional...]`. Flags may appear in any order and may be interleaved
/// with positionals; `--` ends flag parsing.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). Fails on malformed flags (e.g. a
  /// value-less `--flag=`).
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  /// Parses from a pre-split vector (for tests).
  static StatusOr<FlagParser> Parse(const std::vector<std::string>& args);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Integer value of --name; fails on non-numeric values.
  StatusOr<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double value of --name; fails on non-numeric values.
  StatusOr<double> GetDouble(const std::string& name,
                             double fallback) const;

  /// Boolean: present without value or with value in {true,1,yes} => true;
  /// {false,0,no} => false; absent => fallback.
  StatusOr<bool> GetBool(const std::string& name, bool fallback) const;

  /// Comma-separated list value of --name.
  std::vector<std::string> GetList(const std::string& name) const;

  /// Non-flag arguments, in order.
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  FlagParser() = default;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace tps

#endif  // TPS_UTIL_FLAGS_H_
