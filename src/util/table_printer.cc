#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace tps {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) {
    columns = std::max(columns, row.cells.size());
  }
  std::vector<size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    if (!row.separator) account(row.cells);
  }

  std::ostringstream os;
  auto emit_separator = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  emit_separator();
  emit_row(header_);
  emit_separator();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator();
    } else {
      emit_row(row.cells);
    }
  }
  emit_separator();
  return os.str();
}

}  // namespace tps
