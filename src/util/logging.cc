#include "util/logging.h"

#include <cstdio>
#include <iostream>

namespace tps {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= static_cast<int>(g_log_level) ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    // Strip directories from the file path for readability.
    const char* basename = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace tps
