#ifndef TPS_UTIL_STATS_H_
#define TPS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace tps {

/// Descriptive statistics over small vectors of doubles. All functions on
/// empty input return 0.0 unless documented otherwise; callers that need to
/// distinguish "no data" should check emptiness themselves.
namespace stats {

double Sum(const std::vector<double>& values);
double Mean(const std::vector<double>& values);

/// Population variance (divide by N).
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Index of the maximum element; 0 on empty input. Ties break to the
/// earliest index.
size_t ArgMax(const std::vector<double>& values);
size_t ArgMin(const std::vector<double>& values);

/// Median via sorting a copy.
double Median(std::vector<double> values);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> values, double p);

/// Pearson correlation coefficient; 0.0 if either side has zero variance or
/// sizes differ.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation; ties get averaged ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Indices that would sort `values` descending (ties stable by index).
std::vector<size_t> ArgSortDescending(const std::vector<double>& values);

/// Indices that would sort `values` ascending (ties stable by index).
std::vector<size_t> ArgSortAscending(const std::vector<double>& values);

/// Average ranks (1-based) with ties averaged, ascending order.
std::vector<double> Ranks(const std::vector<double>& values);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

}  // namespace stats
}  // namespace tps

#endif  // TPS_UTIL_STATS_H_
