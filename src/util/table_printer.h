#ifndef TPS_UTIL_TABLE_PRINTER_H_
#define TPS_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tps {

/// Renders rows of strings as an aligned ASCII table. Used by the benchmark
/// harnesses to print paper tables in a stable, diffable format.
///
///   TablePrinter t({"Dataset", "Runtime", "Speedup"});
///   t.AddRow({"MNLI", "19", "10.53x"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row. Rows shorter than the header are padded with empty
  /// cells; longer rows extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: adds a horizontal separator line at this position.
  void AddSeparator();

  /// Writes the table. Every column is padded to its widest cell.
  void Print(std::ostream& os) const;

  /// Renders to a string (same output as Print).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace tps

#endif  // TPS_UTIL_TABLE_PRINTER_H_
