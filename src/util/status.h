#ifndef TPS_UTIL_STATUS_H_
#define TPS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tps {

/// Error category carried by a Status. Mirrors the Arrow/RocksDB convention
/// of status-based error handling: library code never throws on expected
/// failure paths; it returns a Status (or StatusOr<T>) instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIOError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An OK status carries no message and allocates nothing. Error statuses
/// carry a code and a message. Statuses are copyable and movable; moving
/// from a Status leaves it OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&& other) noexcept
      : code_(other.code_), message_(std::move(other.message_)) {
    other.code_ = StatusCode::kOk;
    other.message_.clear();
  }
  Status& operator=(Status&& other) noexcept {
    code_ = other.code_;
    message_ = std::move(other.message_);
    other.code_ = StatusCode::kOk;
    other.message_.clear();
    return *this;
  }

  // Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tps

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define TPS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::tps::Status _tps_status = (expr);         \
    if (!_tps_status.ok()) return _tps_status;  \
  } while (false)

#endif  // TPS_UTIL_STATUS_H_
