#ifndef TPS_MATRIX_EIGEN_H_
#define TPS_MATRIX_EIGEN_H_

#include <vector>

#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

/// Eigendecomposition of a real symmetric matrix.
struct SymmetricEigenResult {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` (as a row-major Matrix) is the unit eigenvector
  /// for values[j].
  Matrix vectors;
};

/// Cyclic Jacobi eigenvalue algorithm for symmetric matrices. Converges to
/// machine precision for the small (<= a few hundred) matrices this library
/// uses (LogME feature Grams, distance-matrix spectra in tests).
///
/// Fails if `m` is not square or not symmetric within `symmetry_tolerance`.
StatusOr<SymmetricEigenResult> SymmetricEigen(
    const Matrix& m, double symmetry_tolerance = 1e-9);

}  // namespace tps

#endif  // TPS_MATRIX_EIGEN_H_
