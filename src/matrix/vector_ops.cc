#include "matrix/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tps {
namespace vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double L1Norm(const std::vector<double>& a) {
  double sum = 0.0;
  for (double v : a) sum += std::fabs(v);
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

std::vector<double> AbsDiff(const std::vector<double>& a,
                            const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::fabs(a[i] - b[i]);
  return out;
}

double MeanOfTopK(std::vector<double> values, size_t k) {
  return MeanOfTopKInPlace(values.data(), values.size(), k);
}

void NormalizeInPlace(std::vector<double>& a) {
  const double norm = Norm(a);
  if (norm == 0.0) return;
  for (double& v : a) v /= norm;
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  std::vector<double> out(logits);
  SoftmaxInPlace(out.data(), out.size());
  return out;
}

void SoftmaxInPlace(double* values, size_t n) {
  if (n == 0) return;
  const double max_logit = *std::max_element(values, values + n);
  double denom = 0.0;
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::exp(values[i] - max_logit);
    denom += values[i];
  }
  for (size_t i = 0; i < n; ++i) values[i] /= denom;
}

double MeanOfTopKInPlace(double* values, size_t n, size_t k) {
  if (n == 0) return 0.0;
  k = std::clamp<size_t>(k, 1, n);
  std::partial_sort(values, values + static_cast<ptrdiff_t>(k), values + n,
                    std::greater<double>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += values[i];
  return sum / static_cast<double>(k);
}

void AbsDiffInto(const double* a, const double* b, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = std::fabs(a[i] - b[i]);
}

}  // namespace vec
}  // namespace tps
