#include "matrix/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tps {
namespace vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double L1Norm(const std::vector<double>& a) {
  double sum = 0.0;
  for (double v : a) sum += std::fabs(v);
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

std::vector<double> AbsDiff(const std::vector<double>& a,
                            const std::vector<double>& b) {
  TPS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::fabs(a[i] - b[i]);
  return out;
}

double MeanOfTopK(std::vector<double> values, size_t k) {
  if (values.empty()) return 0.0;
  k = std::clamp<size_t>(k, 1, values.size());
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<ptrdiff_t>(k), values.end(),
                    std::greater<double>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += values[i];
  return sum / static_cast<double>(k);
}

void NormalizeInPlace(std::vector<double>& a) {
  const double norm = Norm(a);
  if (norm == 0.0) return;
  for (double& v : a) v /= norm;
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  if (logits.empty()) return {};
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double denom = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    denom += out[i];
  }
  for (double& v : out) v /= denom;
  return out;
}

}  // namespace vec
}  // namespace tps
