#ifndef TPS_MATRIX_MATRIX_H_
#define TPS_MATRIX_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/statusor.h"

namespace tps {

/// Dense row-major matrix of doubles.
///
/// This is the storage type for the performance matrix Matrix(D, M) and for
/// pairwise-distance matrices used by the clustering algorithms. It is a
/// value type: copyable, movable, and comparable.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Builds from nested vectors. Fails if rows are ragged.
  static StatusOr<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) {
    TPS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    TPS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Copy of row r.
  std::vector<double> Row(size_t r) const;

  /// Copy of column c.
  std::vector<double> Col(size_t c) const;

  /// Overwrites row r. `values.size()` must equal cols().
  void SetRow(size_t r, const std::vector<double>& values);

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix product; this->cols() must equal other.rows().
  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// Per-row means (length rows()).
  std::vector<double> RowMeans() const;

  /// Per-column means (length cols()).
  std::vector<double> ColMeans() const;

  /// True if shapes match and all elements are within `tolerance`.
  bool ApproxEquals(const Matrix& other, double tolerance = 1e-12) const;

  /// Multi-line debug rendering with fixed precision.
  std::string ToString(int decimals = 4) const;

  const std::vector<double>& data() const { return data_; }

  /// Mutable raw row-major storage, for the SoA batch kernels that fill a
  /// matrix through contiguous pointers. Prefer At() everywhere else.
  std::vector<double>& data() { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tps

#endif  // TPS_MATRIX_MATRIX_H_
