#include "matrix/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tps {

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& m,
                                              double symmetry_tolerance) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = m.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(m.At(i, j) - m.At(j, i)) > symmetry_tolerance) {
        return Status::InvalidArgument(
            "SymmetricEigen requires a symmetric matrix");
      }
    }
  }

  Matrix a = m;                     // Working copy, diagonalized in place.
  Matrix v = Matrix::Identity(n);   // Accumulated rotations.

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a.At(i, j) * a.At(i, j);
    }
    if (off < 1e-24) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        // Classic Jacobi rotation parameters.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a.At(x, x) > a.At(y, y);
  });

  SymmetricEigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = a.At(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      result.vectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return result;
}

}  // namespace tps
