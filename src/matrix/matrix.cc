#include "matrix/matrix.h"

#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace tps {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

StatusOr<Matrix> Matrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged rows in Matrix::FromRows");
    }
  }
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  TPS_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() +
                                 static_cast<ptrdiff_t>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  TPS_CHECK(c < cols_);
  std::vector<double> column(rows_);
  for (size_t r = 0; r < rows_; ++r) column[r] = At(r, c);
  return column;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  TPS_CHECK(r < rows_);
  TPS_CHECK(values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = values[c];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(strings::Format(
        "matrix shape mismatch: (%zu x %zu) * (%zu x %zu)", rows_, cols_,
        other.rows_, other.cols_));
  }
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = At(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += v * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::RowMeans() const {
  std::vector<double> means(rows_, 0.0);
  if (cols_ == 0) return means;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += At(r, c);
    means[r] = sum / static_cast<double>(cols_);
  }
  return means;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (size_t c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < rows_; ++r) sum += At(r, c);
    means[c] = sum / static_cast<double>(rows_);
  }
  return means;
}

bool Matrix::ApproxEquals(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Matrix::ToString(int decimals) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << " x " << cols_ << ")\n";
  for (size_t r = 0; r < rows_; ++r) {
    os << "  [";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << strings::FormatDouble(At(r, c), decimals);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace tps
