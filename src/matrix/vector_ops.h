#ifndef TPS_MATRIX_VECTOR_OPS_H_
#define TPS_MATRIX_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tps {

/// Small dense vector kernels shared by the clustering, embedding and
/// transferability modules. All pairwise functions require equal sizes
/// (checked) unless documented otherwise.
namespace vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm(const std::vector<double>& a);

double L1Norm(const std::vector<double>& a);

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Cosine similarity in [-1, 1]; 0.0 if either vector has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a + b elementwise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b elementwise.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// a * s elementwise.
std::vector<double> Scale(const std::vector<double>& a, double s);

/// Elementwise absolute differences |a[i] - b[i]|.
std::vector<double> AbsDiff(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Mean of the k largest entries of `values`. k is clamped to
/// [1, values.size()]; returns 0.0 on empty input. Used by the paper's
/// Eq. 1 model similarity (top-k largest accuracy differences).
double MeanOfTopK(std::vector<double> values, size_t k);

/// In-place scaling to unit L2 norm; no-op on a zero vector.
void NormalizeInPlace(std::vector<double>& a);

/// Softmax (numerically stabilized by max subtraction).
std::vector<double> Softmax(const std::vector<double>& logits);

// --- Batch kernels (SoA hot path; see DESIGN.md "Hot-path kernels") ---
//
// Raw-pointer variants of the allocating helpers above, for inner loops
// that reuse caller-owned scratch. Each is bit-identical to its allocating
// counterpart (same operations, same order); the differential kernel
// harness (tests/transfer/kernel_equivalence_test.cc) pins this.

/// Softmax over `values[0, n)` in place: identical max-subtraction, exp
/// and normalization order as Softmax(). No-op when n == 0.
void SoftmaxInPlace(double* values, size_t n);

/// MeanOfTopK over caller-owned scratch (partially sorts `values`). Same
/// clamp, partial_sort and summation order as MeanOfTopK. Returns 0.0 when
/// n == 0.
double MeanOfTopKInPlace(double* values, size_t n, size_t k);

/// out[i] = |a[i] - b[i]| for i in [0, n). `out` may alias `a` or `b`.
void AbsDiffInto(const double* a, const double* b, size_t n, double* out);

}  // namespace vec
}  // namespace tps

#endif  // TPS_MATRIX_VECTOR_OPS_H_
