#ifndef TPS_MATRIX_VECTOR_OPS_H_
#define TPS_MATRIX_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tps {

/// Small dense vector kernels shared by the clustering, embedding and
/// transferability modules. All pairwise functions require equal sizes
/// (checked) unless documented otherwise.
namespace vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm(const std::vector<double>& a);

double L1Norm(const std::vector<double>& a);

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Cosine similarity in [-1, 1]; 0.0 if either vector has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a + b elementwise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b elementwise.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// a * s elementwise.
std::vector<double> Scale(const std::vector<double>& a, double s);

/// Elementwise absolute differences |a[i] - b[i]|.
std::vector<double> AbsDiff(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Mean of the k largest entries of `values`. k is clamped to
/// [1, values.size()]; returns 0.0 on empty input. Used by the paper's
/// Eq. 1 model similarity (top-k largest accuracy differences).
double MeanOfTopK(std::vector<double> values, size_t k);

/// In-place scaling to unit L2 norm; no-op on a zero vector.
void NormalizeInPlace(std::vector<double>& a);

/// Softmax (numerically stabilized by max subtraction).
std::vector<double> Softmax(const std::vector<double>& logits);

}  // namespace vec
}  // namespace tps

#endif  // TPS_MATRIX_VECTOR_OPS_H_
