#include "index/recall_index.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "clustering/distance.h"

namespace tps {

Status ValidateIndexInputs(const std::vector<std::vector<double>>& vectors,
                           const std::vector<double>& prior,
                           const std::vector<int>& assignments,
                           int num_partitions) {
  if (vectors.empty()) {
    return Status::InvalidArgument("index needs at least one model vector");
  }
  const size_t dims = vectors[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("model vectors must be non-empty");
  }
  for (const std::vector<double>& v : vectors) {
    if (v.size() != dims) {
      return Status::InvalidArgument("ragged model vectors");
    }
  }
  if (prior.size() != vectors.size()) {
    return Status::InvalidArgument(
        "prior count does not match the vector count");
  }
  if (assignments.size() != vectors.size()) {
    return Status::InvalidArgument(
        "assignment count does not match the vector count");
  }
  if (num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  for (int a : assignments) {
    if (a < 0 || a >= num_partitions) {
      return Status::InvalidArgument("assignment out of partition range");
    }
  }
  return Status::OK();
}

Status FinalizeIndexStructure(IndexStructure* s,
                              size_t propagation_neighbors) {
  // The caller sizes `members` to the partition count before finalizing
  // (Create/Build do); everything below is recomputed from scratch.
  const size_t P = s->members.size();
  if (P == 0) {
    return Status::InvalidArgument("index has no partitions");
  }
  s->members.assign(P, {});
  for (size_t m = 0; m < s->assignments.size(); ++m) {
    s->members[static_cast<size_t>(s->assignments[m])].push_back(m);
  }
  // Ascending by construction (models visited in index order).

  // Representative: highest prior, first wins ties — the same rule
  // ClusterModels uses, so a brute-force index over a clustering's
  // assignments reproduces its representatives exactly.
  s->representatives.assign(P, IndexStructure::kNoSlot);
  for (size_t p = 0; p < P; ++p) {
    size_t best = IndexStructure::kNoSlot;
    double best_prior = 0.0;
    for (size_t m : s->members[p]) {
      if (best == IndexStructure::kNoSlot || s->prior[m] > best_prior) {
        best = m;
        best_prior = s->prior[m];
      }
    }
    s->representatives[p] = best;
  }

  // Scored set: partitions with >= 2 members; if none qualifies, every
  // non-empty partition (the degenerate fallback the clustering path has).
  s->scored_partitions.clear();
  for (size_t p = 0; p < P; ++p) {
    if (s->members[p].size() >= 2) s->scored_partitions.push_back(p);
  }
  if (s->scored_partitions.empty()) {
    for (size_t p = 0; p < P; ++p) {
      if (!s->members[p].empty()) s->scored_partitions.push_back(p);
    }
  }
  if (s->scored_partitions.empty()) {
    return Status::InvalidArgument("index has no non-empty partition");
  }
  s->scored_models.clear();
  s->slot_of_partition.assign(P, IndexStructure::kNoSlot);
  for (size_t slot = 0; slot < s->scored_partitions.size(); ++slot) {
    const size_t p = s->scored_partitions[slot];
    s->scored_models.push_back(s->representatives[p]);
    s->slot_of_partition[p] = slot;
  }

  // Neighbor lists: for each unscored (propagation-only) partition, the
  // scored slots its Eq. 4 may read. Unbounded = every slot (exact).
  // Bounded = the `propagation_neighbors` most performance-similar scored
  // representatives (ties -> lower slot), emitted ascending so the
  // propagation accumulates in the same order the exact sweep would.
  s->neighbors.assign(P, {});
  const size_t num_slots = s->scored_models.size();
  std::vector<double> scratch;
  for (size_t p = 0; p < P; ++p) {
    if (s->slot_of_partition[p] != IndexStructure::kNoSlot) continue;
    if (s->members[p].empty()) continue;
    std::vector<size_t>& list = s->neighbors[p];
    if (propagation_neighbors == 0 || propagation_neighbors >= num_slots) {
      list.resize(num_slots);
      for (size_t g = 0; g < num_slots; ++g) list[g] = g;
      continue;
    }
    const std::vector<double>& rep_vec =
        s->vectors[s->representatives[p]];
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(num_slots);
    for (size_t g = 0; g < num_slots; ++g) {
      const std::vector<double>& other =
          s->vectors[s->scored_models[g]];
      const double sim =
          PerformanceSimilarity(rep_vec.data(), other.data(),
                                rep_vec.size(), s->similarity_top_k,
                                scratch);
      ranked.emplace_back(sim, g);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const std::pair<double, size_t>& a,
                        const std::pair<double, size_t>& b) {
                       return a.first > b.first;
                     });
    ranked.resize(propagation_neighbors);
    list.reserve(ranked.size());
    for (const auto& [sim, g] : ranked) list.push_back(g);
    std::sort(list.begin(), list.end());
  }

  // Static probe priority: descending representative prior, ties ->
  // ascending partition id (stable sort over the ascending scored list).
  s->probe_priority = s->scored_partitions;
  std::stable_sort(s->probe_priority.begin(), s->probe_priority.end(),
                   [&](size_t a, size_t b) {
                     return s->prior[s->representatives[a]] >
                            s->prior[s->representatives[b]];
                   });

  // Pilot order: farthest-point-first over the representative vectors,
  // seeded with the top static priority. O(scored^2 * dims) offline; the
  // online probe only slices a prefix.
  s->pilot_order.clear();
  s->pilot_order.reserve(num_slots);
  std::vector<double> min_d2(num_slots,
                             std::numeric_limits<double>::infinity());
  std::vector<char> chosen(num_slots, 0);
  auto slot_of = [&](size_t partition) {
    return s->slot_of_partition[partition];
  };
  size_t next = slot_of(s->probe_priority[0]);
  for (size_t round = 0; round < num_slots; ++round) {
    chosen[next] = 1;
    s->pilot_order.push_back(s->scored_partitions[next]);
    const std::vector<double>& picked = s->vectors[s->scored_models[next]];
    size_t best = IndexStructure::kNoSlot;
    double best_d2 = -1.0;
    for (size_t g = 0; g < num_slots; ++g) {
      if (chosen[g]) continue;
      const std::vector<double>& other = s->vectors[s->scored_models[g]];
      double d2 = 0.0;
      for (size_t d = 0; d < other.size(); ++d) {
        const double diff = other[d] - picked[d];
        d2 += diff * diff;
      }
      if (d2 < min_d2[g]) min_d2[g] = d2;
      if (min_d2[g] > best_d2) {  // Strict >: lowest slot wins ties.
        best_d2 = min_d2[g];
        best = g;
      }
    }
    if (best == IndexStructure::kNoSlot) break;
    next = best;
  }
  return Status::OK();
}

std::vector<size_t> PilotPartitions(const IndexStructure& s, size_t count) {
  const size_t take = std::min(count, s.pilot_order.size());
  std::vector<size_t> pilots(s.pilot_order.begin(),
                             s.pilot_order.begin() +
                                 static_cast<long>(take));
  std::sort(pilots.begin(), pilots.end());
  return pilots;
}

std::vector<size_t> RouteByPilotScores(const IndexStructure& s,
                                       const std::vector<size_t>& pilots,
                                       const std::vector<double>& pilot_scores,
                                       size_t count) {
  std::vector<char> is_pilot(s.num_partitions(), 0);
  for (size_t p : pilots) is_pilot[p] = 1;
  // Predicted recall value of an unprobed partition: its representative's
  // prior x the similarity-weighted average of the measured pilot scores,
  // weighted by the Eq. 4 decay kernel — the same notion of "performs
  // like" that propagation uses, sharp enough that near pilots dominate
  // and far pilots fade. O(scored x pilots) kernel evaluations per query,
  // a few flops each — noise next to one forward pass.
  std::vector<std::pair<double, size_t>> ranked;
  std::vector<double> scratch;
  for (size_t p : s.scored_partitions) {
    if (is_pilot[p]) continue;
    const std::vector<double>& rep_vec = s.vectors[s.representatives[p]];
    double accum = 0.0;
    double weight = 0.0;
    for (size_t i = 0; i < pilots.size(); ++i) {
      const std::vector<double>& pilot_vec =
          s.vectors[s.representatives[pilots[i]]];
      const double sim =
          PerformanceSimilarity(rep_vec.data(), pilot_vec.data(),
                                rep_vec.size(), s.similarity_top_k, scratch);
      accum += sim * pilot_scores[i];
      weight += sim;
    }
    const double predicted =
        weight > 0.0 ? s.prior[s.representatives[p]] * (accum / weight) : 0.0;
    ranked.emplace_back(predicted, p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const std::pair<double, size_t>& a,
                      const std::pair<double, size_t>& b) {
                     return a.first > b.first;
                   });
  if (ranked.size() > count) ranked.resize(count);
  std::vector<size_t> routed;
  routed.reserve(ranked.size());
  for (const auto& [predicted, p] : ranked) routed.push_back(p);
  std::sort(routed.begin(), routed.end());
  return routed;
}

StatusOr<BruteForceRecallIndex> BruteForceRecallIndex::Create(
    std::vector<std::vector<double>> vectors, std::vector<double> prior,
    std::vector<int> assignments, int num_partitions,
    size_t similarity_top_k) {
  TPS_RETURN_NOT_OK(ValidateIndexInputs(vectors, prior, assignments,
                                        num_partitions));
  if (similarity_top_k == 0) {
    return Status::InvalidArgument("similarity_top_k must be >= 1");
  }
  BruteForceRecallIndex index;
  IndexStructure& s = index.structure_;
  s.similarity_top_k = similarity_top_k;
  s.vectors = std::move(vectors);
  s.prior = std::move(prior);
  s.assignments = std::move(assignments);
  s.members.resize(static_cast<size_t>(num_partitions));
  TPS_RETURN_NOT_OK(FinalizeIndexStructure(&s, /*propagation_neighbors=*/0));
  return index;
}

std::vector<size_t> BruteForceRecallIndex::ProbePartitions(
    size_t nprobe, size_t target_dim) const {
  (void)nprobe;      // The oracle always probes everything,
  (void)target_dim;  // so routing hints are moot.
  return structure_.scored_partitions;
}

}  // namespace tps
