#ifndef TPS_INDEX_RECALL_INDEX_H_
#define TPS_INDEX_RECALL_INDEX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace tps {

/// The partition layout every RecallIndex backend exposes to the recall
/// phase ("Sub-linear recall index" in DESIGN.md). It plays the role the
/// ModelClustering plays for the legacy full-sweep path, but carries its
/// own copies of the per-model data the online path reads (performance
/// vectors + accuracy priors), so consuming it never walks the zoo or the
/// performance matrix.
///
/// Terminology:
///  - partition: one posting list of model indices (a coarse-quantizer
///    cell for the IVF backend, a cluster for the brute-force oracle).
///  - scored partition: a partition whose representative gets a proxy
///    forward pass (>= 2 members, mirroring the clustering rule that only
///    non-singleton clusters are scored; if no partition qualifies, every
///    non-empty partition is scored so recall still works).
///  - slot: a scored partition's position in `scored_partitions` /
///    `scored_models` (the order proxy scores are laid out in).
struct IndexStructure {
  /// Sentinel for "this partition has no slot" (unscored) and "this
  /// partition has no representative" (empty).
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Eq. 1 top-k used by similarity-decay propagation (Eq. 4).
  size_t similarity_top_k = 5;

  /// Per model: its performance vector over the benchmark datasets
  /// (vec(m) — the same rows the clustering ran on).
  std::vector<std::vector<double>> vectors;
  /// Per model: acc(m), the average benchmark accuracy (Eq. 2 prior).
  std::vector<double> prior;
  /// Per model: owning partition id.
  std::vector<int> assignments;

  /// Per partition: member model indices, ascending.
  std::vector<std::vector<size_t>> members;
  /// Per partition: the member with the highest prior (ties -> lowest
  /// model index, matching the clustering representative rule); kNoSlot
  /// for an empty partition.
  std::vector<size_t> representatives;

  /// Scored partition ids, ascending.
  std::vector<size_t> scored_partitions;
  /// Representatives of the scored partitions, in slot order.
  std::vector<size_t> scored_models;
  /// Per partition: its slot, or kNoSlot when unscored.
  std::vector<size_t> slot_of_partition;

  /// Per unscored partition: the slots (into `scored_partitions`) its
  /// Eq. 4 propagation may read, ascending. The brute-force backend lists
  /// every slot (exact propagation); the IVF backend keeps only the
  /// nearest few by performance similarity. Empty for scored partitions.
  std::vector<std::vector<size_t>> neighbors;

  /// Scored partition ids in static probe-priority order: descending
  /// representative prior, ties -> ascending partition id. An nprobe-
  /// bounded query scores the first nprobe entries. This static order is
  /// the novel-target fallback: a target's proxy scores only materialize
  /// *after* probing, so the prior is the one signal known offline. When
  /// the target is one of the benchmark columns the IVF backend re-ranks
  /// per query by prior x recorded column performance instead (see
  /// RecallIndex::ProbePartitions).
  std::vector<size_t> probe_priority;

  /// Scored partition ids in farthest-point-first order over the
  /// representative vectors: the highest-prior representative first (ties
  /// -> lowest partition id), then repeatedly the scored partition whose
  /// representative maximizes the minimum squared distance to every
  /// representative already chosen (ties -> lowest id). A prefix of this
  /// list is a spread sample of the performance space — the pilot wave of
  /// the recall phase's adaptive probe (see PilotPartitions /
  /// RouteByPilotScores below).
  std::vector<size_t> pilot_order;

  size_t num_models() const { return vectors.size(); }
  size_t num_partitions() const { return members.size(); }
};

/// Recomputes every derived field of `s` (members, representatives,
/// scored set, slots, neighbors, probe priority) from the primary fields
/// (similarity_top_k, vectors, prior, assignments). `propagation_neighbors`
/// bounds each unscored partition's neighbor list (0 = keep every scored
/// slot). Deterministic: a pure function of the primary fields, so two
/// structures with identical primaries finalize identically — the
/// incremental-insert == rebuild equivalence rests on this.
Status FinalizeIndexStructure(IndexStructure* s,
                              size_t propagation_neighbors);

/// Interface the recall phase consumes ("Sub-linear recall index" in
/// DESIGN.md): a partition layout plus a probe policy. Backends:
///  - BruteForceRecallIndex: every scored partition probed every query —
///    the exact oracle the equivalence suite compares against.
///  - IvfIndex (index/ivf_index.h): k-means coarse quantizer, nprobe-
///    bounded probing, neighbor-list propagation, incremental insert.
class RecallIndex {
 public:
  virtual ~RecallIndex() = default;

  virtual const char* name() const = 0;

  /// The scored partitions one query visits, ascending partition id.
  /// nprobe = 0 means the backend default; backends clamp nprobe to the
  /// scored-partition count. `target_dim` is the target dataset's column
  /// in the performance vectors when the target is one of the offline
  /// benchmarks (kNoSlot for a novel target) — a backend may use that
  /// column to route the probe toward partitions that do well on the
  /// target, which costs only stored-column reads, never a forward pass.
  /// The brute-force oracle ignores both and always probes everything.
  virtual std::vector<size_t> ProbePartitions(
      size_t nprobe,
      size_t target_dim = IndexStructure::kNoSlot) const = 0;

  const IndexStructure& structure() const { return structure_; }
  size_t num_models() const { return structure_.num_models(); }
  size_t num_partitions() const { return structure_.num_partitions(); }

 protected:
  IndexStructure structure_;
};

/// The oracle backend: an arbitrary partitioning (typically a
/// ModelClustering's assignments, or another index's partitioning) probed
/// exhaustively. Recall through this backend is bit-identical to the
/// legacy clustering sweep — tests/index/index_equivalence_test.cc pins
/// it — so it anchors both ends of the equivalence chain.
class BruteForceRecallIndex : public RecallIndex {
 public:
  /// `assignments[m]` in [0, num_partitions); `vectors` and `prior` are
  /// indexed by model. Fails on size mismatches or out-of-range
  /// assignments.
  static StatusOr<BruteForceRecallIndex> Create(
      std::vector<std::vector<double>> vectors, std::vector<double> prior,
      std::vector<int> assignments, int num_partitions,
      size_t similarity_top_k = 5);

  const char* name() const override { return "brute_force"; }

  /// Every scored partition, every query (`nprobe` and `target_dim`
  /// ignored).
  std::vector<size_t> ProbePartitions(
      size_t nprobe,
      size_t target_dim = IndexStructure::kNoSlot) const override;

 private:
  BruteForceRecallIndex() = default;
};

/// Shared validation for index builders: vectors rectangular, prior sized
/// like vectors, every assignment in range.
Status ValidateIndexInputs(const std::vector<std::vector<double>>& vectors,
                           const std::vector<double>& prior,
                           const std::vector<int>& assignments,
                           int num_partitions);

/// The first `count` entries of `s.pilot_order`, returned ascending — the
/// exploration wave of the recall phase's adaptive probe for a novel
/// target (one whose proxy scores no stored column predicts). `count` is
/// clamped to the scored-partition count.
std::vector<size_t> PilotPartitions(const IndexStructure& s, size_t count);

/// The exploitation wave: given the pilots (ascending) and their measured
/// normalized proxy scores (aligned with `pilots`), ranks every other
/// scored partition by predicted recall value — representative prior x
/// the Eq. 4 similarity-weighted average of the pilot scores — and
/// returns the top `count`, ascending, ties -> lowest partition id.
/// Deterministic: a pure function of the structure and the arguments.
std::vector<size_t> RouteByPilotScores(const IndexStructure& s,
                                       const std::vector<size_t>& pilots,
                                       const std::vector<double>& pilot_scores,
                                       size_t count);

}  // namespace tps

#endif  // TPS_INDEX_RECALL_INDEX_H_
