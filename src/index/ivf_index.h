#ifndef TPS_INDEX_IVF_INDEX_H_
#define TPS_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/recall_index.h"
#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

struct IvfIndexOptions {
  /// Coarse-quantizer cells. 0 = auto: 2 * ceil(sqrt(n)), clamped to
  /// [1, n] — the classic IVF sizing, so posting lists average ~sqrt(n)/2
  /// members and both the probe loop and the probed lists stay sub-linear.
  int num_partitions = 0;
  /// Scored partitions probed when a query passes nprobe = 0. 0 = auto:
  /// max(24, scored_count / 8), clamped to the scored count — see
  /// IvfIndex::default_nprobe() for why the floor.
  size_t default_nprobe = 0;
  /// Per propagation-only partition: how many nearest scored slots its
  /// Eq. 4 may read. 0 = every slot (exact propagation — what the
  /// equivalence suite uses to pin the full-probe == brute-force theorem).
  size_t propagation_neighbors = 8;
  /// Eq. 1 top-k for similarity-decay propagation.
  size_t similarity_top_k = 5;
  /// k-means budget for the coarse quantizer. Lighter than the clustering
  /// defaults: the quantizer only routes lookups, it is not the paper's
  /// clustering artifact.
  int kmeans_iterations = 25;
  int kmeans_restarts = 2;
  uint64_t seed = 42;
};

/// Inverted-file (IVF) partition index over model performance vectors
/// ("Sub-linear recall index" in DESIGN.md): a seeded k-means coarse
/// quantizer splits the zoo into ~2*sqrt(n) cells with per-cell posting
/// lists; a query proxy-scores only the representatives of the top-nprobe
/// cells (static priority: descending representative prior) and ranks only
/// the probed posting lists, with Eq. 4 propagation for the long tail
/// restricted to precomputed neighbor lists.
///
/// Determinism: Build is a pure function of (vectors, prior, options) —
/// seeded k-means, index-order reductions — so the same inputs always
/// yield the same index, bit for bit. Insert updates exactly one posting
/// list against the frozen quantizer and refreshes the derived fields;
/// tests/index/index_equivalence_test.cc pins Insert == BuildWithCentroids
/// over the grown set.
class IvfIndex : public RecallIndex {
 public:
  /// Trains the quantizer and builds the posting lists. `vectors` is
  /// model-major (one performance vector per model), `prior` the matching
  /// average benchmark accuracies.
  static StatusOr<IvfIndex> Build(std::vector<std::vector<double>> vectors,
                                  std::vector<double> prior,
                                  const IvfIndexOptions& options);

  /// Rebuilds against a frozen quantizer: every vector is assigned to its
  /// nearest centroid (no retraining). This is the rebuild-from-scratch
  /// oracle the incremental-insert equivalence compares against.
  static StatusOr<IvfIndex> BuildWithCentroids(
      Matrix centroids, std::vector<std::vector<double>> vectors,
      std::vector<double> prior, const IvfIndexOptions& options);

  /// Incremental insert: assigns the new model to its nearest centroid
  /// (the quantizer stays frozen), appends it to that partition's posting
  /// list, and refreshes the derived per-partition fields — O(P * dims +
  /// singletons * scored) work, never a re-cluster of the zoo. The new
  /// model's index is the current num_models().
  Status Insert(const std::vector<double>& vector, double prior);

  const char* name() const override { return "ivf"; }

  /// The top-nprobe scored partitions, returned ascending. nprobe = 0
  /// uses default_nprobe(); values are clamped to the scored-partition
  /// count (nprobe >= scored count probes everything, which is the
  /// bit-for-bit brute-force regime). When `target_dim` names a column of
  /// the performance vectors — the target dataset is one of the offline
  /// benchmarks — the probe is routed per query by descending
  /// representative prior x recorded performance on that column (ties ->
  /// ascending partition id), a pure read of stored data that costs
  /// O(scored log scored) and no forward passes. Novel targets
  /// (target_dim = kNoSlot) fall back to the static prior-only priority.
  std::vector<size_t> ProbePartitions(
      size_t nprobe,
      size_t target_dim = IndexStructure::kNoSlot) const override;

  /// Geometric probe for an index built over *learned embedding* vectors
  /// (the embedding recall backend, src/recall/): the `nprobe` partitions
  /// whose centroids are nearest `query` by squared Euclidean distance
  /// (ties -> lowest partition id), returned ascending. nprobe = 0 uses
  /// default_nprobe(); values are clamped to the partition count. Unlike
  /// ProbePartitions this ranks every partition, not just the scored set:
  /// an embedding query ranks candidates by dot product, so there is no
  /// representative-proxy step that would make unscored cells useless.
  /// `query` must match the index dimensionality.
  std::vector<size_t> ProbePartitionsNearQuery(
      const std::vector<double>& query, size_t nprobe) const;

  /// Resolved default probe width (options.default_nprobe, or the auto
  /// rule), clamped to the scored-partition count.
  size_t default_nprobe() const;

  const Matrix& centroids() const { return centroids_; }
  const IvfIndexOptions& options() const { return options_; }

  /// Line-oriented text codec (precision 17, like the matrix and
  /// clustering artifacts). Only the primary fields are serialized; the
  /// derived layout is refinalized on load, so the codec cannot desync
  /// from the build rules.
  std::string Serialize() const;
  static StatusOr<IvfIndex> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<IvfIndex> LoadFromFile(const std::string& path);

 private:
  IvfIndex() = default;

  /// Nearest centroid by squared Euclidean distance, ties -> lowest id.
  size_t NearestCentroid(const std::vector<double>& vector) const;

  Matrix centroids_;  // num_partitions x dims.
  IvfIndexOptions options_;
};

}  // namespace tps

#endif  // TPS_INDEX_IVF_INDEX_H_
