#include "index/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "clustering/kmeans.h"

namespace tps {

namespace {

Status ValidateVectors(const std::vector<std::vector<double>>& vectors,
                       const std::vector<double>& prior,
                       const IvfIndexOptions& options) {
  if (vectors.empty()) {
    return Status::InvalidArgument("index needs at least one model vector");
  }
  const size_t dims = vectors[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("model vectors must be non-empty");
  }
  for (const std::vector<double>& v : vectors) {
    if (v.size() != dims) {
      return Status::InvalidArgument("ragged model vectors");
    }
  }
  if (prior.size() != vectors.size()) {
    return Status::InvalidArgument(
        "prior count does not match the vector count");
  }
  if (options.num_partitions < 0) {
    return Status::InvalidArgument("num_partitions must be >= 0");
  }
  if (options.num_partitions > static_cast<int>(vectors.size())) {
    return Status::InvalidArgument(
        "num_partitions exceeds the number of models");
  }
  if (options.similarity_top_k == 0) {
    return Status::InvalidArgument("similarity_top_k must be >= 1");
  }
  if (options.kmeans_iterations < 1 || options.kmeans_restarts < 1) {
    return Status::InvalidArgument(
        "kmeans_iterations and kmeans_restarts must be >= 1");
  }
  return Status::OK();
}

size_t ResolvePartitions(const IvfIndexOptions& options, size_t n) {
  if (options.num_partitions > 0) {
    return static_cast<size_t>(options.num_partitions);
  }
  const size_t auto_p = 2 * static_cast<size_t>(
                                std::ceil(std::sqrt(static_cast<double>(n))));
  return std::min(n, std::max<size_t>(1, auto_p));
}

}  // namespace

size_t IvfIndex::NearestCentroid(const std::vector<double>& vector) const {
  size_t best = 0;
  double best_dist = 0.0;
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double dist = 0.0;
    for (size_t d = 0; d < centroids_.cols(); ++d) {
      const double diff = vector[d] - centroids_.At(c, d);
      dist += diff * diff;
    }
    if (c == 0 || dist < best_dist) {  // Strict <: lowest id wins ties.
      best = c;
      best_dist = dist;
    }
  }
  return best;
}

StatusOr<IvfIndex> IvfIndex::Build(std::vector<std::vector<double>> vectors,
                                   std::vector<double> prior,
                                   const IvfIndexOptions& options) {
  TPS_RETURN_NOT_OK(ValidateVectors(vectors, prior, options));
  const size_t num_partitions = ResolvePartitions(options, vectors.size());
  TPS_ASSIGN_OR_RETURN(Matrix points, Matrix::FromRows(vectors));
  KMeansOptions kmeans_options;
  kmeans_options.num_clusters = static_cast<int>(num_partitions);
  kmeans_options.max_iterations = options.kmeans_iterations;
  kmeans_options.restarts = options.kmeans_restarts;
  kmeans_options.seed = options.seed;
  TPS_ASSIGN_OR_RETURN(KMeansResult kmeans, KMeans(points, kmeans_options));

  IvfIndex index;
  index.options_ = options;
  index.centroids_ = std::move(kmeans.centroids);
  // The k-means loop can stop on its iteration cap right after a centroid
  // update, leaving the reported assignments one step behind the final
  // centroids. The index contract is nearest-final-centroid (Insert and
  // BuildWithCentroids both route that way — the equivalence theorems rest
  // on it), so re-derive every assignment here and drop any cell the final
  // pass leaves empty. Pruning keeps the quantizer minimal: every surviving
  // centroid is some model's nearest, so a frozen-quantizer rebuild
  // reproduces these assignments exactly.
  std::vector<int> assignments(vectors.size());
  std::vector<size_t> cell_count(index.centroids_.rows(), 0);
  for (size_t m = 0; m < vectors.size(); ++m) {
    const size_t cell = index.NearestCentroid(vectors[m]);
    assignments[m] = static_cast<int>(cell);
    ++cell_count[cell];
  }
  size_t kept = 0;
  std::vector<int> remap(cell_count.size(), -1);
  for (size_t c = 0; c < cell_count.size(); ++c) {
    if (cell_count[c] > 0) remap[c] = static_cast<int>(kept++);
  }
  if (kept < cell_count.size()) {
    Matrix pruned(kept, index.centroids_.cols());
    for (size_t c = 0; c < cell_count.size(); ++c) {
      if (remap[c] < 0) continue;
      for (size_t d = 0; d < index.centroids_.cols(); ++d) {
        pruned.At(static_cast<size_t>(remap[c]), d) = index.centroids_.At(c, d);
      }
    }
    index.centroids_ = std::move(pruned);
    for (int& a : assignments) a = remap[static_cast<size_t>(a)];
  }

  IndexStructure& s = index.structure_;
  s.similarity_top_k = options.similarity_top_k;
  s.vectors = std::move(vectors);
  s.prior = std::move(prior);
  s.assignments = std::move(assignments);
  s.members.resize(index.centroids_.rows());
  TPS_RETURN_NOT_OK(
      FinalizeIndexStructure(&s, options.propagation_neighbors));
  return index;
}

StatusOr<IvfIndex> IvfIndex::BuildWithCentroids(
    Matrix centroids, std::vector<std::vector<double>> vectors,
    std::vector<double> prior, const IvfIndexOptions& options) {
  TPS_RETURN_NOT_OK(ValidateVectors(vectors, prior, options));
  if (centroids.empty()) {
    return Status::InvalidArgument("centroids must be non-empty");
  }
  if (centroids.cols() != vectors[0].size()) {
    return Status::InvalidArgument(
        "centroid dimensionality does not match the model vectors");
  }
  IvfIndex index;
  index.options_ = options;
  index.centroids_ = std::move(centroids);
  IndexStructure& s = index.structure_;
  s.similarity_top_k = options.similarity_top_k;
  s.vectors = std::move(vectors);
  s.prior = std::move(prior);
  s.assignments.resize(s.vectors.size());
  for (size_t m = 0; m < s.vectors.size(); ++m) {
    s.assignments[m] = static_cast<int>(index.NearestCentroid(s.vectors[m]));
  }
  s.members.resize(index.centroids_.rows());
  TPS_RETURN_NOT_OK(
      FinalizeIndexStructure(&s, options.propagation_neighbors));
  return index;
}

Status IvfIndex::Insert(const std::vector<double>& vector, double prior) {
  if (vector.size() != centroids_.cols()) {
    return Status::InvalidArgument(
        "inserted vector dimensionality does not match the index");
  }
  // Frozen quantizer: route to the nearest existing centroid, touch that
  // posting list only, then refresh the derived layout. No k-means rerun,
  // no reassignment of existing models — Insert over a BuildWithCentroids
  // index is bit-identical to rebuilding it with the grown inputs
  // (tests/index/index_equivalence_test.cc).
  const size_t partition = NearestCentroid(vector);
  structure_.vectors.push_back(vector);
  structure_.prior.push_back(prior);
  structure_.assignments.push_back(static_cast<int>(partition));
  return FinalizeIndexStructure(&structure_,
                                options_.propagation_neighbors);
}

size_t IvfIndex::default_nprobe() const {
  const size_t scored = structure_.scored_partitions.size();
  // Auto rule: an eighth of the scored partitions, but never fewer than
  // 24 — the adaptive pilot-and-route probe needs enough pilots to cover
  // the performance space before routing can exploit them, and below ~24
  // probes its recall@10 against the exhaustive sweep falls off sharply
  // (bench_scaling_zoo_size). Small zoos simply probe a larger fraction;
  // sub-linear probing is a large-zoo economy anyway.
  const size_t resolved =
      options_.default_nprobe != 0
          ? options_.default_nprobe
          : std::max<size_t>(24, scored / 8);
  return std::min(resolved, scored);
}

std::vector<size_t> IvfIndex::ProbePartitions(size_t nprobe,
                                              size_t target_dim) const {
  const IndexStructure& s = structure_;
  const size_t scored = s.scored_partitions.size();
  const size_t take =
      nprobe == 0 ? default_nprobe() : std::min(nprobe, scored);
  if (take >= scored) {
    // Full probe visits everything; skip the per-query re-rank so the
    // result is the scored set itself (ascending), whatever the target.
    return s.scored_partitions;
  }
  const size_t dims = s.vectors.empty() ? 0 : s.vectors[0].size();
  std::vector<size_t> probed;
  if (target_dim != IndexStructure::kNoSlot && target_dim < dims) {
    // Known-benchmark routing: the representative's recorded performance
    // on the target column is a free surrogate for the proxy score the
    // probe would measure, so rank by its product with the prior — the
    // same shape as the Eq. 2 recall score.
    std::vector<size_t> order = s.scored_partitions;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const size_t ra = s.representatives[a];
      const size_t rb = s.representatives[b];
      return s.prior[ra] * s.vectors[ra][target_dim] >
             s.prior[rb] * s.vectors[rb][target_dim];
    });
    probed.assign(order.begin(), order.begin() + static_cast<long>(take));
  } else {
    probed.assign(s.probe_priority.begin(),
                  s.probe_priority.begin() + static_cast<long>(take));
  }
  std::sort(probed.begin(), probed.end());
  return probed;
}

std::vector<size_t> IvfIndex::ProbePartitionsNearQuery(
    const std::vector<double>& query, size_t nprobe) const {
  const size_t partitions = centroids_.rows();
  const size_t take = std::min(
      nprobe == 0 ? std::max<size_t>(1, default_nprobe()) : nprobe,
      partitions);
  if (take >= partitions) {
    std::vector<size_t> all(partitions);
    for (size_t c = 0; c < partitions; ++c) all[c] = c;
    return all;
  }
  std::vector<std::pair<double, size_t>> by_distance(partitions);
  for (size_t c = 0; c < partitions; ++c) {
    double dist = 0.0;
    for (size_t d = 0; d < centroids_.cols(); ++d) {
      const double diff = query[d] - centroids_.At(c, d);
      dist += diff * diff;
    }
    by_distance[c] = {dist, c};
  }
  // Ascending distance; the pair's second breaks ties toward the lowest
  // partition id, so the probe set is deterministic.
  std::sort(by_distance.begin(), by_distance.end());
  std::vector<size_t> probed(take);
  for (size_t i = 0; i < take; ++i) probed[i] = by_distance[i].second;
  std::sort(probed.begin(), probed.end());
  return probed;
}

std::string IvfIndex::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  const IndexStructure& s = structure_;
  const size_t dims = s.vectors.empty() ? 0 : s.vectors[0].size();
  out << "tps-ivf-index v1\n";
  out << s.num_models() << " " << dims << " " << centroids_.rows() << "\n";
  out << options_.num_partitions << " " << options_.default_nprobe << " "
      << options_.propagation_neighbors << " " << options_.similarity_top_k
      << " " << options_.kmeans_iterations << " "
      << options_.kmeans_restarts << " " << options_.seed << "\n";
  for (double p : s.prior) out << p << " ";
  out << "\n";
  for (int a : s.assignments) out << a << " ";
  out << "\n";
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    for (size_t d = 0; d < centroids_.cols(); ++d) {
      out << centroids_.At(c, d) << " ";
    }
    out << "\n";
  }
  for (const std::vector<double>& v : s.vectors) {
    for (double x : v) out << x << " ";
    out << "\n";
  }
  return out.str();
}

StatusOr<IvfIndex> IvfIndex::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-ivf-index v1") {
    return Status::InvalidArgument("bad ivf index header");
  }
  size_t n = 0, dims = 0, partitions = 0;
  in >> n >> dims >> partitions;
  if (!in || n == 0 || dims == 0 || partitions == 0 || partitions > n) {
    return Status::InvalidArgument("bad ivf index dimensions");
  }
  IvfIndex index;
  IvfIndexOptions& options = index.options_;
  in >> options.num_partitions >> options.default_nprobe >>
      options.propagation_neighbors >> options.similarity_top_k >>
      options.kmeans_iterations >> options.kmeans_restarts >> options.seed;
  if (!in) return Status::InvalidArgument("bad ivf index options");

  IndexStructure& s = index.structure_;
  s.similarity_top_k = options.similarity_top_k;
  s.prior.resize(n);
  for (double& p : s.prior) in >> p;
  s.assignments.resize(n);
  for (int& a : s.assignments) {
    in >> a;
    if (in && (a < 0 || a >= static_cast<int>(partitions))) {
      return Status::InvalidArgument("ivf assignment out of range");
    }
  }
  if (!in) return Status::InvalidArgument("truncated ivf index");
  index.centroids_ = Matrix(partitions, dims);
  for (size_t c = 0; c < partitions; ++c) {
    for (size_t d = 0; d < dims; ++d) in >> index.centroids_.At(c, d);
  }
  s.vectors.assign(n, std::vector<double>(dims, 0.0));
  for (std::vector<double>& v : s.vectors) {
    for (double& x : v) in >> x;
  }
  if (!in) return Status::InvalidArgument("truncated ivf index");
  s.members.resize(partitions);
  // Refinalized rather than deserialized: the derived layout is always a
  // pure function of the primaries, so the codec cannot desync from the
  // build rules.
  TPS_RETURN_NOT_OK(
      FinalizeIndexStructure(&s, options.propagation_neighbors));
  return index;
}

Status IvfIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << Serialize();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<IvfIndex> IvfIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto result = Deserialize(text);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " in " + path);
  }
  return result;
}

}  // namespace tps
