#ifndef TPS_SERVE_SERVER_H_
#define TPS_SERVE_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "util/socket.h"
#include "util/statusor.h"

namespace tps {
namespace serve {

/// Where the server listens. At least one endpoint must be enabled; both
/// may be (the same service answers on each).
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix endpoint.
  std::string unix_path;
  /// TCP port on 127.0.0.1; -1 disables the TCP endpoint, 0 auto-assigns
  /// (read back via tcp_port()).
  int tcp_port = -1;
};

/// NDJSON socket front end for a SelectionService (see protocol.h).
///
/// Threading model: one blocking accept-loop thread per endpoint plus one
/// blocking thread per live connection — no readiness polling, which keeps
/// the stack simple and sanitizer-clean. Selects are routed through
/// SelectionService::Submit, so socket traffic is subject to the same
/// admission control and deadlines as embedded callers; ping/stats answer
/// inline.
///
/// Lifecycle: Start() binds and begins accepting. Wait() parks the owning
/// thread until a client sends `{"cmd":"shutdown"}` or Shutdown() is called
/// from another thread. Shutdown() (idempotent; also run by the destructor)
/// stops accepting, unblocks every connection with ::shutdown, and joins
/// all threads. The service outlives the server and is not owned by it.
class SelectionServer {
 public:
  static StatusOr<std::unique_ptr<SelectionServer>> Start(
      SelectionService* service, const ServerOptions& options);

  ~SelectionServer();

  SelectionServer(const SelectionServer&) = delete;
  SelectionServer& operator=(const SelectionServer&) = delete;

  /// Actual TCP port (meaningful when the TCP endpoint is enabled;
  /// resolves port 0 auto-assignment). 0 when TCP is disabled.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Blocks until shutdown is requested (wire command or Shutdown()).
  void Wait();

  /// Stops accepting, disconnects all clients, joins all threads. Safe to
  /// call from any thread except a connection handler (handlers request
  /// shutdown instead; the thread parked in Wait() — or the destructor —
  /// performs the join).
  void Shutdown();

 private:
  SelectionServer(SelectionService* service, std::vector<ServerSocket> listeners);

  void AcceptLoop(ServerSocket* listener);
  void HandleConnection(std::shared_ptr<Socket> socket);
  /// Flags shutdown and unblocks Wait()/Accept() without joining (callable
  /// from a connection handler).
  void RequestShutdown();

  SelectionService* const service_;
  std::vector<ServerSocket> listeners_;
  int tcp_port_ = 0;
  std::string unix_path_;

  std::mutex mu_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;
  bool joined_ = false;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::shared_ptr<Socket>> connections_;
};

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_SERVER_H_
