#ifndef TPS_SERVE_SERVER_H_
#define TPS_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/service.h"
#include "util/socket.h"
#include "util/statusor.h"

namespace tps {
namespace serve {

/// Where the server listens. At least one endpoint must be enabled; both
/// may be (the same service answers on each).
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix endpoint.
  std::string unix_path;
  /// TCP port on 127.0.0.1; -1 disables the TCP endpoint, 0 auto-assigns
  /// (read back via tcp_port()).
  int tcp_port = -1;
  /// Upper bound on one request line; longer lines are discarded and
  /// answered with an InvalidArgument error reply (the session survives).
  size_t max_line_bytes = 1 << 20;
  /// Test-only hook: invoked by a connection thread immediately before it
  /// sends a reply line. Lets tests pin the reply until the peer has
  /// acted (e.g. closed its end) to make send-failure paths
  /// deterministic. Never set in production.
  std::function<void()> pre_reply_hook;
};

/// NDJSON socket front end for a SelectionService (see protocol.h).
///
/// Threading model: one blocking accept-loop thread per endpoint plus one
/// blocking thread per live connection — no readiness polling, which keeps
/// the stack simple and sanitizer-clean. Selects are routed through
/// SelectionService::Submit, so socket traffic is subject to the same
/// admission control and deadlines as embedded callers; ping/stats answer
/// inline. A reload runs on the connection thread — artifact load +
/// validation never touch the serving path.
///
/// Connection bookkeeping: each connection self-registers on a done-list
/// when its handler finishes; the accept loops join those threads and drop
/// their sockets before taking the next client, so a long-lived server
/// that has answered N connections tracks O(live) state, not O(N).
/// Shutdown() joins whatever is left.
///
/// Lifecycle: Start() binds and begins accepting. Wait() parks the owning
/// thread until a client sends `{"cmd":"shutdown"}` or Shutdown() is called
/// from another thread. Shutdown() (idempotent; also run by the destructor)
/// stops accepting, unblocks every connection with ::shutdown, and joins
/// all threads. The service outlives the server and is not owned by it.
class SelectionServer {
 public:
  static StatusOr<std::unique_ptr<SelectionServer>> Start(
      SelectionService* service, const ServerOptions& options);

  ~SelectionServer();

  SelectionServer(const SelectionServer&) = delete;
  SelectionServer& operator=(const SelectionServer&) = delete;

  /// Actual TCP port (meaningful when the TCP endpoint is enabled;
  /// resolves port 0 auto-assignment). 0 when TCP is disabled.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Connections currently tracked (live handlers plus finished ones not
  /// yet reaped by an accept loop). Tests assert this stays bounded over
  /// many sequential sessions.
  size_t tracked_connections() const;

  /// Blocks until shutdown is requested (wire command or Shutdown()).
  void Wait();

  /// Stops accepting, disconnects all clients, joins all threads. Safe to
  /// call from any thread except a connection handler (handlers request
  /// shutdown instead; the thread parked in Wait() — or the destructor —
  /// performs the join).
  void Shutdown();

 private:
  /// One tracked connection: the handler thread and its socket (the socket
  /// is shared with the handler; RequestShutdown pokes it to unblock a
  /// parked recv).
  struct Connection {
    std::thread thread;
    std::shared_ptr<Socket> socket;
  };

  SelectionServer(SelectionService* service,
                  std::vector<ServerSocket> listeners,
                  const ServerOptions& options);

  void AcceptLoop(ServerSocket* listener);
  void HandleConnection(std::shared_ptr<Socket> socket);
  /// Joins finished connection threads and forgets their sockets. Called
  /// with `mu_` NOT held (joining under the registry lock would deadlock
  /// against a handler trying to mark itself done).
  void ReapFinishedConnections();
  /// Flags shutdown and unblocks Wait()/Accept() without joining (callable
  /// from a connection handler).
  void RequestShutdown();

  SelectionService* const service_;
  std::vector<ServerSocket> listeners_;
  int tcp_port_ = 0;
  std::string unix_path_;
  const size_t max_line_bytes_;
  const std::function<void()> pre_reply_hook_;

  mutable std::mutex mu_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;
  bool joined_ = false;
  std::vector<std::thread> accept_threads_;
  /// Live + not-yet-reaped connections, keyed by a monotonic id.
  std::unordered_map<uint64_t, Connection> connections_;
  /// Ids whose handlers have returned; their threads are joinable and
  /// their sockets droppable. Drained by ReapFinishedConnections().
  std::vector<uint64_t> finished_;
  uint64_t next_connection_id_ = 0;
};

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_SERVER_H_
