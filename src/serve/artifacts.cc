#include "serve/artifacts.h"

#include <utility>

#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "store/model_store.h"

namespace tps {
namespace serve {

namespace {

StatusOr<ModelZoo> ZooFor(TaskDomain domain) {
  return ModelZoo::Create(domain == TaskDomain::kNLP ? NlpPaperZooSpecs()
                                                     : CvPaperZooSpecs());
}

std::string EffectiveId(const ArtifactPaths& paths) {
  if (!paths.id.empty()) return paths.id;
  return paths.domain == TaskDomain::kNLP ? "nlp" : "cv";
}

}  // namespace

StatusOr<ServiceArtifacts> ServiceArtifacts::Load(
    const ArtifactPaths& paths) {
  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  TPS_ASSIGN_OR_RETURN(ModelZoo zoo, ZooFor(paths.domain));

  auto load_matrix = [&]() -> StatusOr<PerformanceMatrix> {
    if (!paths.store.empty()) {
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
      return store.GetPerformanceMatrix(EffectiveId(paths));
    }
    if (paths.matrix.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return PerformanceMatrix::LoadFromFile(paths.matrix);
  };
  auto load_clustering = [&]() -> StatusOr<ModelClustering> {
    if (!paths.store.empty()) {
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
      return store.GetClustering(EffectiveId(paths));
    }
    if (paths.clustering.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return LoadClustering(paths.clustering);
  };
  TPS_ASSIGN_OR_RETURN(PerformanceMatrix matrix, load_matrix());
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering, load_clustering());

  // Artifacts built over a generated zoo (tps_cli zoo-gen) do not match
  // the paper zoo. When the store carries the generating specs, rebuild
  // the zoo from them, in matrix column order, so serving covers exactly
  // the models the artifacts were computed over.
  if (matrix.num_models() != zoo.size() && !paths.store.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
    std::vector<ModelSpec> specs;
    specs.reserve(matrix.num_models());
    for (const std::string& name : matrix.model_names()) {
      auto spec = store.GetModelSpec(name);
      if (!spec.ok()) {
        return Status(spec.status().code(),
                      "matrix model '" + name +
                          "' is not registered in the store: " +
                          spec.status().message());
      }
      specs.push_back(std::move(spec).value());
    }
    TPS_ASSIGN_OR_RETURN(zoo, ModelZoo::Create(specs));
  }

  std::shared_ptr<const IvfIndex> index;
  if (!paths.store.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
    auto loaded = store.GetRecallIndex(EffectiveId(paths));
    if (loaded.ok()) {
      index = std::make_shared<const IvfIndex>(std::move(loaded).value());
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  } else if (!paths.index.empty()) {
    TPS_ASSIGN_OR_RETURN(IvfIndex loaded,
                         IvfIndex::LoadFromFile(paths.index));
    index = std::make_shared<const IvfIndex>(std::move(loaded));
  }

  ServiceArtifacts artifacts{std::move(registry),   std::move(zoo),
                             std::move(matrix),     std::move(clustering),
                             paths.domain,          std::move(index)};
  TPS_RETURN_NOT_OK(artifacts.Validate());
  return artifacts;
}

Status ServiceArtifacts::Validate() const {
  if (matrix.num_models() != zoo.size() ||
      clustering.clusters.assignments.size() != zoo.size()) {
    return Status::FailedPrecondition(
        "artifacts do not match the " + std::string(ToString(domain)) +
        " paper zoo; rebuild with `tps_cli offline`");
  }
  if (clustering.representatives.size() !=
      static_cast<size_t>(clustering.clusters.num_clusters)) {
    return Status::FailedPrecondition(
        "clustering has " + std::to_string(clustering.representatives.size()) +
        " representatives for " +
        std::to_string(clustering.clusters.num_clusters) + " clusters");
  }
  for (size_t rep : clustering.representatives) {
    if (rep >= zoo.size()) {
      return Status::FailedPrecondition(
          "clustering representative index " + std::to_string(rep) +
          " is outside the zoo");
    }
  }
  if (index != nullptr && index->num_models() != zoo.size()) {
    return Status::FailedPrecondition(
        "recall index covers " + std::to_string(index->num_models()) +
        " models but the zoo has " + std::to_string(zoo.size()));
  }
  return Status::OK();
}

StatusOr<ServiceArtifacts> ServiceArtifacts::Build(TaskDomain domain,
                                                   int threads) {
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  TPS_ASSIGN_OR_RETURN(ModelZoo zoo, ZooFor(domain));
  FineTuneSimulator simulator;
  TPS_ASSIGN_OR_RETURN(
      PerformanceMatrix matrix,
      PerformanceMatrix::BuildParallel(zoo, registry.Benchmarks(domain),
                                       simulator,
                                       Hyperparams::DefaultsFor(domain),
                                       threads));
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering,
                       ClusterModels(matrix, zoo, ModelClusteringOptions()));
  return ServiceArtifacts{std::move(registry),   std::move(zoo),
                          std::move(matrix),     std::move(clustering),
                          domain,                nullptr};
}

}  // namespace serve
}  // namespace tps
