#include "serve/artifacts.h"

#include <utility>

#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "store/model_store.h"

namespace tps {
namespace serve {

namespace {

StatusOr<ModelZoo> ZooFor(TaskDomain domain) {
  return ModelZoo::Create(domain == TaskDomain::kNLP ? NlpPaperZooSpecs()
                                                     : CvPaperZooSpecs());
}

std::string EffectiveId(const ArtifactPaths& paths) {
  if (!paths.id.empty()) return paths.id;
  return paths.domain == TaskDomain::kNLP ? "nlp" : "cv";
}

}  // namespace

StatusOr<ServiceArtifacts> ServiceArtifacts::Load(
    const ArtifactPaths& paths) {
  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  TPS_ASSIGN_OR_RETURN(ModelZoo zoo, ZooFor(paths.domain));

  auto load_matrix = [&]() -> StatusOr<PerformanceMatrix> {
    if (!paths.store.empty()) {
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
      return store.GetPerformanceMatrix(EffectiveId(paths));
    }
    if (paths.matrix.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return PerformanceMatrix::LoadFromFile(paths.matrix);
  };
  auto load_clustering = [&]() -> StatusOr<ModelClustering> {
    if (!paths.store.empty()) {
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
      return store.GetClustering(EffectiveId(paths));
    }
    if (paths.clustering.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return LoadClustering(paths.clustering);
  };
  TPS_ASSIGN_OR_RETURN(PerformanceMatrix matrix, load_matrix());
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering, load_clustering());

  // Artifacts built over a generated zoo (tps_cli zoo-gen) do not match
  // the paper zoo. When the store carries the generating specs, rebuild
  // the zoo from them, in matrix column order, so serving covers exactly
  // the models the artifacts were computed over.
  if (matrix.num_models() != zoo.size() && !paths.store.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
    std::vector<ModelSpec> specs;
    specs.reserve(matrix.num_models());
    for (const std::string& name : matrix.model_names()) {
      auto spec = store.GetModelSpec(name);
      if (!spec.ok()) {
        return Status(spec.status().code(),
                      "matrix model '" + name +
                          "' is not registered in the store: " +
                          spec.status().message());
      }
      specs.push_back(std::move(spec).value());
    }
    TPS_ASSIGN_OR_RETURN(zoo, ModelZoo::Create(specs));
  }

  std::shared_ptr<const IvfIndex> index;
  if (!paths.store.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
    auto loaded = store.GetRecallIndex(EffectiveId(paths));
    if (loaded.ok()) {
      index = std::make_shared<const IvfIndex>(std::move(loaded).value());
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  } else if (!paths.index.empty()) {
    TPS_ASSIGN_OR_RETURN(IvfIndex loaded,
                         IvfIndex::LoadFromFile(paths.index));
    index = std::make_shared<const IvfIndex>(std::move(loaded));
  }

  ServiceArtifacts artifacts{std::move(registry),   std::move(zoo),
                             std::move(matrix),     std::move(clustering),
                             paths.domain,          std::move(index),
                             nullptr,               nullptr};

  // Trained recall embeddings: like the recall index, absent-is-OK in
  // store mode (the embedding backend is simply unavailable then).
  if (!paths.store.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(paths.store));
    auto loaded = store.GetRecallEmbeddings(EffectiveId(paths));
    if (loaded.ok()) {
      TPS_RETURN_NOT_OK(
          artifacts.AttachEmbeddings(std::move(loaded).value()));
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  } else if (!paths.embeddings.empty()) {
    TPS_ASSIGN_OR_RETURN(
        recall::RecallEmbeddings loaded,
        recall::RecallEmbeddings::LoadFromFile(paths.embeddings));
    TPS_RETURN_NOT_OK(artifacts.AttachEmbeddings(std::move(loaded)));
  }

  TPS_RETURN_NOT_OK(artifacts.Validate());
  return artifacts;
}

Status ServiceArtifacts::AttachEmbeddings(recall::RecallEmbeddings trained) {
  // The embedding-space IVF is a pure function of the embeddings (seeded
  // k-means over the model vectors), so it is rebuilt here rather than
  // persisted — the codec cannot desync from the build rules.
  TPS_ASSIGN_OR_RETURN(IvfIndex built,
                       IvfIndex::Build(trained.model_embeddings(),
                                       trained.prior(), IvfIndexOptions()));
  embedding_index = std::make_shared<const IvfIndex>(std::move(built));
  embeddings =
      std::make_shared<const recall::RecallEmbeddings>(std::move(trained));
  return Status::OK();
}

Status ServiceArtifacts::Validate() const {
  if (matrix.num_models() != zoo.size() ||
      clustering.clusters.assignments.size() != zoo.size()) {
    return Status::FailedPrecondition(
        "artifacts do not match the " + std::string(ToString(domain)) +
        " paper zoo; rebuild with `tps_cli offline`");
  }
  if (clustering.representatives.size() !=
      static_cast<size_t>(clustering.clusters.num_clusters)) {
    return Status::FailedPrecondition(
        "clustering has " + std::to_string(clustering.representatives.size()) +
        " representatives for " +
        std::to_string(clustering.clusters.num_clusters) + " clusters");
  }
  for (size_t rep : clustering.representatives) {
    if (rep >= zoo.size()) {
      return Status::FailedPrecondition(
          "clustering representative index " + std::to_string(rep) +
          " is outside the zoo");
    }
  }
  if (index != nullptr && index->num_models() != zoo.size()) {
    return Status::FailedPrecondition(
        "recall index covers " + std::to_string(index->num_models()) +
        " models but the zoo has " + std::to_string(zoo.size()));
  }
  if (embeddings != nullptr) {
    if (embeddings->model_names() != matrix.model_names()) {
      return Status::FailedPrecondition(
          "recall embeddings do not match the performance matrix models; "
          "retrain with `tps_cli train-embed`");
    }
    if (embedding_index == nullptr ||
        embedding_index->num_models() != embeddings->num_models()) {
      return Status::FailedPrecondition(
          "embedding index does not cover the recall embeddings");
    }
  }
  return Status::OK();
}

StatusOr<ServiceArtifacts> ServiceArtifacts::Build(TaskDomain domain,
                                                   int threads) {
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  TPS_ASSIGN_OR_RETURN(ModelZoo zoo, ZooFor(domain));
  FineTuneSimulator simulator;
  TPS_ASSIGN_OR_RETURN(
      PerformanceMatrix matrix,
      PerformanceMatrix::BuildParallel(zoo, registry.Benchmarks(domain),
                                       simulator,
                                       Hyperparams::DefaultsFor(domain),
                                       threads));
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering,
                       ClusterModels(matrix, zoo, ModelClusteringOptions()));
  return ServiceArtifacts{std::move(registry),   std::move(zoo),
                          std::move(matrix),     std::move(clustering),
                          domain,                nullptr,
                          nullptr,               nullptr};
}

}  // namespace serve
}  // namespace tps
