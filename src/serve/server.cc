#include "serve/server.h"

#include <utility>

#include "serve/protocol.h"

namespace tps {
namespace serve {

StatusOr<std::unique_ptr<SelectionServer>> SelectionServer::Start(
    SelectionService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "at least one endpoint is required (unix_path or tcp_port)");
  }
  std::vector<ServerSocket> listeners;
  if (!options.unix_path.empty()) {
    TPS_ASSIGN_OR_RETURN(ServerSocket listener,
                         ServerSocket::ListenUnix(options.unix_path));
    listeners.push_back(std::move(listener));
  }
  if (options.tcp_port >= 0) {
    TPS_ASSIGN_OR_RETURN(ServerSocket listener,
                         ServerSocket::ListenTcp(options.tcp_port));
    listeners.push_back(std::move(listener));
  }
  return std::unique_ptr<SelectionServer>(
      new SelectionServer(service, std::move(listeners), options));
}

SelectionServer::SelectionServer(SelectionService* service,
                                 std::vector<ServerSocket> listeners,
                                 const ServerOptions& options)
    : service_(service),
      listeners_(std::move(listeners)),
      max_line_bytes_(options.max_line_bytes),
      pre_reply_hook_(options.pre_reply_hook) {
  for (ServerSocket& listener : listeners_) {
    if (!listener.unix_path().empty()) unix_path_ = listener.unix_path();
    if (listener.port() > 0) tcp_port_ = listener.port();
  }
  accept_threads_.reserve(listeners_.size());
  for (ServerSocket& listener : listeners_) {
    accept_threads_.emplace_back([this, &listener] { AcceptLoop(&listener); });
  }
}

SelectionServer::~SelectionServer() { Shutdown(); }

void SelectionServer::AcceptLoop(ServerSocket* listener) {
  for (;;) {
    StatusOr<Socket> accepted = listener->Accept();
    // Whether or not a client arrived, clean up after connections that
    // finished since the last pass — the bookkeeping stays O(live
    // connections) over a server's lifetime instead of growing by one
    // thread + one socket per client ever served.
    ReapFinishedConnections();
    if (!accepted.ok()) return;  // Unavailable after Shutdown, or fatal.
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // Late straggler: drop the connection.
    const uint64_t id = next_connection_id_++;
    Connection connection;
    connection.socket = socket;
    connection.thread = std::thread([this, socket, id] {
      HandleConnection(std::move(socket));
      std::lock_guard<std::mutex> done_lock(mu_);
      finished_.push_back(id);
    });
    connections_.emplace(id, std::move(connection));
  }
}

void SelectionServer::ReapFinishedConnections() {
  std::vector<Connection> reaped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reaped.reserve(finished_.size());
    for (const uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Already joined by Shutdown.
      reaped.push_back(std::move(it->second));
      connections_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: the handler pushed its id just before
  // returning, so this blocks at most for the tail of that thread's exit.
  for (Connection& connection : reaped) connection.thread.join();
}

size_t SelectionServer::tracked_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

void SelectionServer::HandleConnection(std::shared_ptr<Socket> socket) {
  std::string buffer;
  for (;;) {
    StatusOr<std::string> line_or = socket->RecvLine(&buffer, max_line_bytes_);
    if (!line_or.ok()) {
      // An oversized line was discarded by RecvLine with the stream left
      // framed on the next line: answer the error and keep the session.
      if (line_or.status().IsInvalidArgument()) {
        if (!socket->SendAll(ErrorToLine(line_or.status()) + "\n").ok()) {
          return;
        }
        continue;
      }
      return;  // Peer closed (or we were shut down).
    }
    if (line_or->empty()) continue;  // Tolerate blank keep-alive lines.
    StatusOr<WireRequest> request_or = ParseRequestLine(*line_or);
    if (!request_or.ok()) {
      // One bad line never tears down the session.
      if (!socket->SendAll(ErrorToLine(request_or.status()) + "\n").ok()) {
        return;
      }
      continue;
    }
    std::string reply;
    bool shutdown_after = false;
    switch (request_or->command) {
      case WireCommand::kPing:
        reply = PongLine();
        break;
      case WireCommand::kStats:
        reply = StatsToLine(service_->Stats());
        break;
      case WireCommand::kShutdown:
        reply = ShutdownAckLine();
        shutdown_after = true;
        break;
      case WireCommand::kReload: {
        // Load + validate + publish run right here on the connection
        // thread; in-flight selects keep serving their admitted version.
        ArtifactPaths source = std::move(request_or->reload);
        source.domain = service_->snapshot()->artifacts.domain;
        const Status status = service_->Reload(source);
        reply = status.ok() ? ReloadAckLine(service_->artifact_version())
                            : ErrorToLine(status);
        break;
      }
      case WireCommand::kSelect: {
        // Submit, not Handle: socket traffic goes through the same
        // admission control and deadline accounting as embedded callers.
        SelectionResponse response =
            service_->Submit(std::move(request_or->select)).get();
        reply = ResponseToLine(response);
        break;
      }
    }
    if (pre_reply_hook_) pre_reply_hook_();
    const bool reply_sent = socket->SendAll(reply + "\n").ok();
    if (shutdown_after) {
      // The shutdown was ACCEPTED when the command parsed; the ack is
      // best-effort. A client that sends `shutdown` and disconnects
      // without reading the reply must still stop the server.
      RequestShutdown();  // Wait()/destructor performs the join.
      return;
    }
    if (!reply_sent) return;
  }
}

void SelectionServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  for (ServerSocket& listener : listeners_) listener.Shutdown();
  for (auto& [id, connection] : connections_) {
    connection.socket->ShutdownBoth();
  }
  stopped_cv_.notify_all();
}

void SelectionServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

void SelectionServer::Shutdown() {
  RequestShutdown();
  std::vector<std::thread> accepts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
    accepts.swap(accept_threads_);
  }
  for (std::thread& thread : accepts) thread.join();
  // After the accept threads are gone no new connection threads can be
  // spawned, so this snapshot is complete.
  std::vector<Connection> remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    remaining.reserve(connections_.size());
    for (auto& [id, connection] : connections_) {
      remaining.push_back(std::move(connection));
    }
    connections_.clear();
    finished_.clear();
  }
  for (Connection& connection : remaining) connection.thread.join();
  for (ServerSocket& listener : listeners_) listener.Close();
}

}  // namespace serve
}  // namespace tps
