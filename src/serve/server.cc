#include "serve/server.h"

#include <utility>

#include "serve/protocol.h"

namespace tps {
namespace serve {

StatusOr<std::unique_ptr<SelectionServer>> SelectionServer::Start(
    SelectionService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "at least one endpoint is required (unix_path or tcp_port)");
  }
  std::vector<ServerSocket> listeners;
  if (!options.unix_path.empty()) {
    TPS_ASSIGN_OR_RETURN(ServerSocket listener,
                         ServerSocket::ListenUnix(options.unix_path));
    listeners.push_back(std::move(listener));
  }
  if (options.tcp_port >= 0) {
    TPS_ASSIGN_OR_RETURN(ServerSocket listener,
                         ServerSocket::ListenTcp(options.tcp_port));
    listeners.push_back(std::move(listener));
  }
  return std::unique_ptr<SelectionServer>(
      new SelectionServer(service, std::move(listeners)));
}

SelectionServer::SelectionServer(SelectionService* service,
                                 std::vector<ServerSocket> listeners)
    : service_(service), listeners_(std::move(listeners)) {
  for (ServerSocket& listener : listeners_) {
    if (!listener.unix_path().empty()) unix_path_ = listener.unix_path();
    if (listener.port() > 0) tcp_port_ = listener.port();
  }
  accept_threads_.reserve(listeners_.size());
  for (ServerSocket& listener : listeners_) {
    accept_threads_.emplace_back([this, &listener] { AcceptLoop(&listener); });
  }
}

SelectionServer::~SelectionServer() { Shutdown(); }

void SelectionServer::AcceptLoop(ServerSocket* listener) {
  for (;;) {
    StatusOr<Socket> accepted = listener->Accept();
    if (!accepted.ok()) return;  // Unavailable after Shutdown, or fatal.
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // Late straggler: drop the connection.
    connections_.push_back(socket);
    connection_threads_.emplace_back(
        [this, socket] { HandleConnection(socket); });
  }
}

void SelectionServer::HandleConnection(std::shared_ptr<Socket> socket) {
  std::string buffer;
  for (;;) {
    StatusOr<std::string> line_or = socket->RecvLine(&buffer);
    if (!line_or.ok()) return;  // Peer closed (or we were shut down).
    if (line_or->empty()) continue;  // Tolerate blank keep-alive lines.
    StatusOr<WireRequest> request_or = ParseRequestLine(*line_or);
    if (!request_or.ok()) {
      // One bad line never tears down the session.
      if (!socket->SendAll(ErrorToLine(request_or.status()) + "\n").ok()) {
        return;
      }
      continue;
    }
    std::string reply;
    bool shutdown_after = false;
    switch (request_or->command) {
      case WireCommand::kPing:
        reply = PongLine();
        break;
      case WireCommand::kStats:
        reply = StatsToLine(service_->Stats());
        break;
      case WireCommand::kShutdown:
        reply = ShutdownAckLine();
        shutdown_after = true;
        break;
      case WireCommand::kSelect: {
        // Submit, not Handle: socket traffic goes through the same
        // admission control and deadline accounting as embedded callers.
        SelectionResponse response =
            service_->Submit(std::move(request_or->select)).get();
        reply = ResponseToLine(response);
        break;
      }
    }
    if (!socket->SendAll(reply + "\n").ok()) return;
    if (shutdown_after) {
      RequestShutdown();  // Wait()/destructor performs the join.
      return;
    }
  }
}

void SelectionServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  for (ServerSocket& listener : listeners_) listener.Shutdown();
  for (const std::shared_ptr<Socket>& connection : connections_) {
    connection->ShutdownBoth();
  }
  stopped_cv_.notify_all();
}

void SelectionServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

void SelectionServer::Shutdown() {
  RequestShutdown();
  std::vector<std::thread> accepts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
    accepts.swap(accept_threads_);
  }
  for (std::thread& thread : accepts) thread.join();
  // After the accept threads are gone no new connection threads can be
  // spawned, so this snapshot is complete.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connection_threads_);
  }
  for (std::thread& thread : connections) thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections_.clear();
  }
  for (ServerSocket& listener : listeners_) listener.Close();
}

}  // namespace serve
}  // namespace tps
