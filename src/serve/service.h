#ifndef TPS_SERVE_SERVICE_H_
#define TPS_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cancellation.h"
#include "core/selection_trace.h"
#include "core/two_phase.h"
#include "serve/artifact_slot.h"
#include "serve/artifacts.h"
#include "sim/finetune_simulator.h"
#include "transfer/kernels.h"
#include "transfer/proxy_flight.h"
#include "transfer/score_cache.h"
#include "util/metrics.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace tps {
namespace serve {

/// Tuning knobs for one SelectionService ("Serving" in DESIGN.md).
struct ServiceOptions {
  /// Request worker threads draining the admission queue (Submit path).
  /// 0 is valid: Submit then queues without ever draining — only useful
  /// for tests that drive the queue by hand via Handle.
  int worker_threads = 2;
  /// Bounded queue capacity. A Submit that finds the queue full is
  /// rejected immediately with an Unavailable response (explicit
  /// backpressure), never blocked.
  size_t max_queue = 64;
  /// Inner pipeline parallelism: > 1 creates one shared ThreadPool that
  /// all requests' recall/fine fan-outs run on. 1 = serial pipeline.
  int pipeline_threads = 1;
  /// Proxy-score cache entries shared by all requests; 0 disables the
  /// cache.
  size_t cache_capacity = 4096;
  /// Default per-request deadline in milliseconds; 0 = no deadline.
  /// Requests may override per call.
  double default_deadline_ms = 0.0;
  /// Cross-request proxy coalescing: concurrent requests needing the same
  /// (target, model, scorer) proxy share one computation (single-flight on
  /// the cache key, with cancellation-safe leader handoff). Bit-identical
  /// to independent computation — tests/serve/coalescing_test.cc — so this
  /// only changes cost, never answers.
  bool coalesce_proxies = true;
  /// Kernel family for the proxy hot path (forwarded to
  /// RecallOptions::kernel_mode). kBatched = SoA vectorized kernels;
  /// kReference = original scalar loops. Bit-identical by contract.
  kernels::KernelMode kernel_mode = kernels::KernelMode::kBatched;
  /// Metrics sink; nullptr -> MetricsRegistry::Default().
  MetricsRegistry* metrics = nullptr;
  /// Test-only hook: invoked by a worker thread immediately before it
  /// starts processing a dequeued request. Lets tests hold a worker on a
  /// latch to fill the queue deterministically. Never set in production.
  std::function<void()> pre_handle_hook;
};

/// One selection query.
struct SelectionRequest {
  std::string target;           // Dataset name, e.g. "mnli".
  size_t top_k = 10;            // Recall size handed to fine selection.
  double threshold = 0.0;       // Fine-filter threshold.
  std::string proxy = "leep";   // Single proxy scorer.
  std::vector<std::string> proxies;  // Multi-proxy override (may be empty).
  /// Per-request deadline in ms, measured from admission (Submit) or from
  /// Handle entry; <= 0 uses the service default; 0 default = none.
  double deadline_ms = 0.0;
  /// When true the response carries the full SelectionTrace.
  bool want_trace = false;
  /// When true (the default) and the published artifacts carry a recall
  /// index, recall runs the sub-linear indexed path; false forces the
  /// legacy clustering sweep (per-request A/B switch). No effect when the
  /// artifacts have no index.
  bool use_index = true;
  /// Scored partitions to probe in index mode; 0 = the index's default.
  /// Probing every partition reproduces the legacy sweep bit-for-bit.
  size_t nprobe = 0;
  /// Recall backend routing ("Recall backends" in DESIGN.md): empty (the
  /// default) runs the built-in representative path exactly as before the
  /// backend interface existed; "representative" / "embedding" / "hybrid"
  /// route phase 1 through the named backend of the admission snapshot.
  /// Unknown names fail with NotFound, names the published artifacts
  /// cannot serve (no trained embeddings) with FailedPrecondition. For
  /// the embedding backend `nprobe` bounds the embedding-space IVF probe.
  std::string recall_backend;
};

/// One selection answer. `status` is OK on success; on failure every other
/// field except `target` is default-initialized (no partial results).
struct SelectionResponse {
  Status status;
  std::string target;
  std::string selected_model;
  double selected_accuracy = 0.0;
  double training_epochs = 0.0;
  double inference_epochs = 0.0;
  double total_epochs = 0.0;
  std::vector<size_t> survivors_per_stage;
  /// Wall time spent inside the pipeline (excludes queue wait).
  double wall_ms = 0.0;
  /// Cache hits/misses recorded by this request's recall phase.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  bool has_trace = false;
  SelectionTrace trace;
  /// Artifact version this request was served against (1 = the artifacts
  /// the service started with; each Reload bumps it). Set on failures too,
  /// so swap-under-load harnesses can attribute every answer to exactly
  /// one version.
  uint64_t artifact_version = 0;
  /// Recall index backend that served this request ("ivf", ...), empty
  /// when recall ran the legacy clustering sweep.
  std::string index_backend;
  /// Recall backend that served this request, echoed from the request;
  /// empty when the built-in path ran unrouted.
  std::string recall_backend;
  /// Full pipeline report (recall ranking, outcome, budget) for embedded
  /// callers that need more than the summary fields (e.g. markdown report
  /// rendering). Never serialized onto the wire.
  TwoPhaseReport report;
};

/// Point-in-time service counters (the `stats` wire command and tests).
struct ServiceStats {
  size_t queue_depth = 0;
  /// Currently published artifact version (1 until the first Reload).
  uint64_t artifact_version = 0;
  /// Successful Reload calls over the service lifetime.
  uint64_t reloads = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
};

/// The embeddable serving layer: owns the published artifact versions, the
/// shared pipeline ThreadPool, the proxy-score cache, and a bounded request
/// queue with admission control, and answers many concurrent selection
/// requests without reloading anything per call.
///
/// Two entry points:
///  - Handle(): synchronous, runs the pipeline on the calling thread.
///    Thread-safe — any number of callers may Handle concurrently; they
///    share the cache and pool. Used by `tps_cli select` and tests.
///  - Submit(): admission-controlled. The request either takes a queue
///    slot (drained by worker threads) or is rejected immediately with an
///    Unavailable response. Deadlines start at admission, so time spent
///    queued counts against them. Used by the socket front end.
///
/// Hot artifact swap ("Serving: hot artifact swap" in DESIGN.md): Reload()
/// publishes new ServiceArtifacts with zero downtime. Every request
/// acquires an ArtifactSnapshot at admission and runs entirely against it;
/// Reload validates the new artifacts, publishes them RCU-style, and the
/// old version is destroyed when its last in-flight request finishes. The
/// proxy-score cache and flight group are epoch-tagged by artifact
/// version, so no response ever mixes scores from two versions.
///
/// Shutdown: the destructor stops the workers; requests still queued are
/// answered with Unavailable("service shutting down") rather than dropped.
///
/// Metrics (prefix `serve.`): requests/admitted/rejected/completed/
/// deadline_exceeded/errors/reloads counters, queue_depth gauge (current +
/// peak), artifact_version gauge, request_latency_us + queue_wait_us
/// histograms; plus the cache's own proxy_cache.* instruments.
class SelectionService {
 public:
  static StatusOr<std::unique_ptr<SelectionService>> Create(
      ServiceArtifacts artifacts, const ServiceOptions& options);

  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Runs one request synchronously on the calling thread. Never queues.
  SelectionResponse Handle(const SelectionRequest& request);

  /// Admission control: queue the request or reject it now. The returned
  /// future always resolves (Unavailable on rejection/shutdown,
  /// DeadlineExceeded if it expired in the queue, the pipeline's answer
  /// otherwise).
  std::future<SelectionResponse> Submit(SelectionRequest request);

  /// Zero-downtime artifact hot swap: validates `artifacts`, publishes
  /// them as the next version, and returns. In-flight requests keep the
  /// version they were admitted against; requests admitted after Reload
  /// returns see the new one. Never blocks the serving path beyond the
  /// slot's pointer swap. On validation failure nothing is published and
  /// the current version keeps serving.
  Status Reload(ServiceArtifacts artifacts);

  /// As above, loading the artifacts from a store or plain files first —
  /// the whole load runs off the serving path (on the caller's thread).
  Status Reload(const ArtifactPaths& source);

  ServiceStats Stats() const;

  /// The currently published artifact snapshot (version, zoo, registry,
  /// ...). The returned shared_ptr pins that version alive; drop it
  /// promptly so retired versions can be freed after a Reload.
  std::shared_ptr<const ArtifactSnapshot> snapshot() const {
    return slot_.Acquire();
  }
  /// Version of the currently published artifacts (starts at 1).
  uint64_t artifact_version() const { return slot_.version(); }
  ProxyScoreCache* cache() { return cache_.get(); }
  ProxyFlightGroup* flight_group() { return flight_.get(); }
  size_t queue_depth() const;

 private:
  struct QueuedRequest {
    SelectionRequest request;
    std::promise<SelectionResponse> promise;
    /// Artifact version acquired at admission: the whole request runs
    /// against this snapshot no matter how many Reloads land while it
    /// waits in the queue.
    std::shared_ptr<const ArtifactSnapshot> snapshot;
    /// Deadline armed at admission (null when the request has none).
    std::shared_ptr<CancelToken> token;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  SelectionService(ServiceArtifacts artifacts, const ServiceOptions& options);

  /// Core pipeline: resolve target, build TwoPhaseOptions (cache, cancel,
  /// trace), run the selector, fill the response. `token` may be null;
  /// `snapshot` is the version acquired at admission.
  SelectionResponse Run(const SelectionRequest& request,
                        const CancelToken* token,
                        const ArtifactSnapshot& snapshot);

  void WorkerLoop();

  const ServiceOptions options_;
  MetricsRegistry* const metrics_;
  ArtifactSlot slot_;
  std::unique_ptr<ThreadPool> pool_;      // Null when pipeline_threads == 1.
  std::unique_ptr<ProxyScoreCache> cache_;  // Null when capacity == 0.
  std::unique_ptr<ProxyFlightGroup> flight_;  // Null when coalescing is off.

  /// Serializes Reload callers (version allocation + publish); never held
  /// while serving.
  std::mutex reload_mu_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;
  std::deque<QueuedRequest> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;

  // Local stats mirrors (exact reads for Stats() independent of the
  // registry).
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> reloads_{0};
};

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_SERVICE_H_
