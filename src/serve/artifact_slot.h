#ifndef TPS_SERVE_ARTIFACT_SLOT_H_
#define TPS_SERVE_ARTIFACT_SLOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/two_phase.h"
#include "recall/recall_backend.h"
#include "serve/artifacts.h"
#include "sim/finetune_simulator.h"

namespace tps {
namespace serve {

/// One immutable published artifact version plus the pipeline objects that
/// point into it ("Serving: hot artifact swap" in DESIGN.md). Requests
/// acquire a shared_ptr to the snapshot at admission and keep it for their
/// whole lifetime, so everything one request reads — zoo, matrix,
/// clustering, selector — comes from a single version even while a newer
/// one is being published. Construct via make_shared only: the selector
/// holds pointers into this object's own members, so the snapshot must
/// never be moved or copied after construction.
struct ArtifactSnapshot {
  ArtifactSnapshot(ServiceArtifacts artifacts_in, uint64_t version_in)
      : artifacts(std::move(artifacts_in)),
        version(version_in),
        selector(&artifacts.zoo, &artifacts.matrix, &artifacts.clustering,
                 &simulator),
        backends(recall::RecallBackendContext{
            &artifacts.zoo, &artifacts.matrix, &artifacts.clustering,
            artifacts.embeddings.get(), artifacts.embedding_index.get()}) {}

  ArtifactSnapshot(const ArtifactSnapshot&) = delete;
  ArtifactSnapshot& operator=(const ArtifactSnapshot&) = delete;

  const ServiceArtifacts artifacts;
  /// Monotonic artifact version, starting at 1 for the artifacts the
  /// service was created with. Doubles as the cache/flight epoch
  /// (ProxyCacheKey::artifact_epoch).
  const uint64_t version;
  FineTuneSimulator simulator;
  TwoPhaseSelector selector;
  /// Per-version recall backends ("Recall backends" in DESIGN.md), built
  /// over this snapshot's own artifacts so a request routed to one can
  /// never mix versions mid-swap. Backends the version cannot support
  /// (no trained embeddings) are absent, not errors.
  const recall::RecallBackendSet backends;
};

/// RCU-style holder for the current ArtifactSnapshot. Readers (requests)
/// call Acquire() once at admission and never block on a publisher;
/// Publish() swaps the current pointer under a short critical section and
/// returns the retired version to whoever still holds it — the old
/// snapshot is destroyed when the last in-flight request drops its
/// shared_ptr, never under a lock and never while anyone can still read
/// it. There is no reader registry and no quiescent-state tracking; the
/// shared_ptr control block IS the grace period.
class ArtifactSlot {
 public:
  explicit ArtifactSlot(std::shared_ptr<const ArtifactSnapshot> initial);

  ArtifactSlot(const ArtifactSlot&) = delete;
  ArtifactSlot& operator=(const ArtifactSlot&) = delete;

  /// The current snapshot (never null). O(1), wait-free for practical
  /// purposes: one uncontended mutex acquisition and a shared_ptr copy.
  std::shared_ptr<const ArtifactSnapshot> Acquire() const;

  /// Atomically replaces the current snapshot and returns the retired one
  /// (so a caller may inspect or log it; dropping the return value retires
  /// it as soon as in-flight requests finish).
  std::shared_ptr<const ArtifactSnapshot> Publish(
      std::shared_ptr<const ArtifactSnapshot> next);

  /// Version of the currently published snapshot (lock-free read).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ArtifactSnapshot> current_;
  std::atomic<uint64_t> version_;
};

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_ARTIFACT_SLOT_H_
