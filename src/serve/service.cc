#include "serve/service.h"

#include <utility>

#include "util/timer.h"

namespace tps {
namespace serve {

StatusOr<std::unique_ptr<SelectionService>> SelectionService::Create(
    ServiceArtifacts artifacts, const ServiceOptions& options) {
  if (options.worker_threads < 0) {
    return Status::InvalidArgument("worker_threads must be >= 0");
  }
  if (options.max_queue == 0) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (options.pipeline_threads < 1) {
    return Status::InvalidArgument("pipeline_threads must be >= 1");
  }
  if (options.default_deadline_ms < 0.0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  TPS_RETURN_NOT_OK(artifacts.Validate());
  // unique_ptr over make_unique: the constructor is private.
  return std::unique_ptr<SelectionService>(
      new SelectionService(std::move(artifacts), options));
}

SelectionService::SelectionService(ServiceArtifacts artifacts,
                                   const ServiceOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : MetricsRegistry::Default()),
      slot_(std::make_shared<const ArtifactSnapshot>(std::move(artifacts),
                                                     /*version=*/1)) {
  if (options_.pipeline_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(ThreadPool::ClampThreads(
        options_.pipeline_threads, slot_.Acquire()->artifacts.zoo.size()));
  }
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ProxyScoreCache>(options_.cache_capacity,
                                               metrics_);
  }
  if (options_.coalesce_proxies) {
    flight_ = std::make_unique<ProxyFlightGroup>(metrics_);
  }
  metrics_->gauge("serve.artifact_version").Set(1.0);
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SelectionService::~SelectionService() {
  std::deque<QueuedRequest> abandoned;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    abandoned.swap(queue_);
  }
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  for (QueuedRequest& queued : abandoned) {
    SelectionResponse response;
    response.target = queued.request.target;
    response.artifact_version = queued.snapshot->version;
    response.status = Status::Unavailable("service shutting down");
    queued.promise.set_value(std::move(response));
  }
}

Status SelectionService::Reload(ServiceArtifacts artifacts) {
  // Validate BEFORE publishing: a malformed artifact set must never
  // replace a healthy serving version.
  TPS_RETURN_NOT_OK(artifacts.Validate());
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    const uint64_t next_version = slot_.version() + 1;
    slot_.Publish(std::make_shared<const ArtifactSnapshot>(
        std::move(artifacts), next_version));
    // The retired snapshot (Publish's return value) is dropped here; it is
    // destroyed once the last in-flight request releases its reference.
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("serve.reloads").Increment();
  metrics_->gauge("serve.artifact_version")
      .Set(static_cast<double>(slot_.version()));
  return Status::OK();
}

Status SelectionService::Reload(const ArtifactPaths& source) {
  // The load + validation run on the caller's thread; serving threads see
  // nothing until the pointer swap inside Reload(ServiceArtifacts).
  TPS_ASSIGN_OR_RETURN(ServiceArtifacts artifacts,
                       ServiceArtifacts::Load(source));
  return Reload(std::move(artifacts));
}

SelectionResponse SelectionService::Handle(const SelectionRequest& request) {
  metrics_->counter("serve.requests").Increment();
  const std::shared_ptr<const ArtifactSnapshot> snapshot = slot_.Acquire();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  CancelToken token;
  const CancelToken* token_ptr = nullptr;
  if (deadline_ms > 0.0) {
    token.SetDeadlineAfterMillis(deadline_ms);
    token_ptr = &token;
  }
  return Run(request, token_ptr, *snapshot);
}

std::future<SelectionResponse> SelectionService::Submit(
    SelectionRequest request) {
  metrics_->counter("serve.requests").Increment();
  QueuedRequest queued;
  queued.request = std::move(request);
  // Snapshot acquired at admission: whatever Reloads land while this
  // request is queued, it runs against the version that admitted it.
  queued.snapshot = slot_.Acquire();
  queued.enqueued_at = std::chrono::steady_clock::now();
  const double deadline_ms = queued.request.deadline_ms > 0.0
                                 ? queued.request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    // Armed at admission: queue wait burns deadline budget.
    queued.token = std::make_shared<CancelToken>();
    queued.token->SetDeadlineAfterMillis(deadline_ms);
  }
  std::future<SelectionResponse> future = queued.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutting_down_ && queue_.size() < options_.max_queue) {
      queue_.push_back(std::move(queued));
      metrics_->gauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
      metrics_->gauge("serve.queue_depth")
          .SetMax(static_cast<double>(queue_.size()));
      admitted_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("serve.admitted").Increment();
      lock.unlock();
      queue_ready_.notify_one();
      return future;
    }
  }
  // Rejected: explicit backpressure, never blocking the caller.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("serve.rejected").Increment();
  SelectionResponse response;
  response.target = queued.request.target;
  response.artifact_version = queued.snapshot->version;
  response.status = Status::Unavailable(
      "request queue full (" + std::to_string(options_.max_queue) +
      " deep); retry later");
  queued.promise.set_value(std::move(response));
  return future;
}

void SelectionService::WorkerLoop() {
  for (;;) {
    QueuedRequest queued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_) return;  // Destructor answers leftovers.
      queued = std::move(queue_.front());
      queue_.pop_front();
      metrics_->gauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    if (options_.pre_handle_hook) options_.pre_handle_hook();
    const double queue_wait_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - queued.enqueued_at)
            .count();
    metrics_->histogram("serve.queue_wait_us").Record(queue_wait_us);
    queued.promise.set_value(
        Run(queued.request, queued.token.get(), *queued.snapshot));
    // queued goes out of scope here, releasing the snapshot reference —
    // the last release after a Reload destroys the retired version.
  }
}

SelectionResponse SelectionService::Run(const SelectionRequest& request,
                                        const CancelToken* token,
                                        const ArtifactSnapshot& snapshot) {
  WallTimer timer;
  SelectionResponse response;
  response.target = request.target;
  response.artifact_version = snapshot.version;

  const uint64_t hits_before = cache_ != nullptr ? cache_->hits() : 0;
  const uint64_t misses_before = cache_ != nullptr ? cache_->misses() : 0;

  const ServiceArtifacts& artifacts = snapshot.artifacts;
  auto run = [&]() -> Status {
    // A request that expired in the queue is answered without touching
    // the pipeline.
    TPS_RETURN_NOT_OK(CheckCancel(token, "admission"));
    TPS_ASSIGN_OR_RETURN(const Dataset* target,
                         artifacts.registry.Find(request.target));
    if (target->spec().domain != artifacts.domain) {
      return Status::InvalidArgument(
          "target '" + request.target + "' is a " +
          std::string(ToString(target->spec().domain)) +
          " dataset but the service holds " +
          std::string(ToString(artifacts.domain)) + " artifacts");
    }
    TwoPhaseOptions options;
    options.recall.top_k_models = request.top_k;
    options.recall.proxy = request.proxy;
    options.recall.proxies = request.proxies;
    options.recall.score_cache = cache_.get();
    options.recall.flight_group = flight_.get();
    options.recall.kernel_mode = options_.kernel_mode;
    // Cache/flight entries are tagged with the snapshot's version, so two
    // versions never exchange scores — even for requests racing a swap.
    options.recall.artifact_epoch = snapshot.version;
    // Sub-linear recall: serve through the snapshot's index when it has
    // one and the request didn't opt out. The index lives inside the
    // snapshot, so it stays alive for the whole request even if a Reload
    // retires this version mid-flight.
    if (request.use_index && artifacts.index != nullptr) {
      options.recall.index = artifacts.index.get();
      options.recall.nprobe = request.nprobe;
      response.index_backend = artifacts.index->name();
    }
    // Recall backend routing: an empty name is the legacy built-in path
    // (provably untouched — no backend pointer is even set); a named
    // backend resolves against this snapshot's own backend set, so the
    // backend and the artifacts it reads are always the same version.
    if (!request.recall_backend.empty()) {
      TPS_ASSIGN_OR_RETURN(options.recall.backend,
                           snapshot.backends.Find(request.recall_backend));
      response.recall_backend = request.recall_backend;
    }
    options.fine_selection.threshold = request.threshold;
    options.metrics = metrics_;
    options.cancel = token;
    if (request.want_trace) options.trace = &response.trace;

    TPS_ASSIGN_OR_RETURN(
        TwoPhaseReport report,
        snapshot.selector.Select(
            *target, options,
            Hyperparams::DefaultsFor(target->spec().domain), pool_.get()));
    response.selected_model =
        artifacts.zoo.model(report.selection.selected_model).name();
    response.selected_accuracy = report.selection.selected_accuracy;
    response.training_epochs = report.budget.training_epochs();
    response.inference_epochs = report.budget.inference_epochs();
    response.total_epochs = report.budget.total_epochs();
    response.survivors_per_stage = report.selection.survivors_per_stage;
    response.has_trace = request.want_trace;
    response.report = std::move(report);
    return Status::OK();
  };
  response.status = run();
  if (!response.status.ok()) {
    // No partial results: wipe everything the failed attempt may have
    // started to fill (the trace in particular).
    const std::string target_name = response.target;
    const Status status = response.status;
    response = SelectionResponse();
    response.target = target_name;
    response.status = status;
    response.artifact_version = snapshot.version;
  }

  response.wall_ms = timer.ElapsedMillis();
  if (cache_ != nullptr) {
    response.cache_hits = cache_->hits() - hits_before;
    response.cache_misses = cache_->misses() - misses_before;
  }
  metrics_->histogram("serve.request_latency_us")
      .Record(response.wall_ms * 1e3);
  if (response.status.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("serve.completed").Increment();
  } else if (response.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("serve.deadline_exceeded").Increment();
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("serve.errors").Increment();
  }
  return response;
}

ServiceStats SelectionService::Stats() const {
  ServiceStats stats;
  stats.queue_depth = queue_depth();
  stats.artifact_version = slot_.version();
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    stats.cache_hits = cache_->hits();
    stats.cache_misses = cache_->misses();
    stats.cache_evictions = cache_->evictions();
    stats.cache_entries = cache_->size();
  }
  return stats;
}

size_t SelectionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace serve
}  // namespace tps
