#include "serve/protocol.h"

#include <utility>

#include "util/json.h"

namespace tps {
namespace serve {

namespace {

/// Restores a StatusCode from its stable wire name ("DeadlineExceeded").
StatusCode CodeFromName(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

json::Value SizeArray(const std::vector<size_t>& values) {
  json::Value array = json::Value::Array();
  for (size_t v : values) {
    array.Append(json::Value::Int(static_cast<int64_t>(v)));
  }
  return array;
}

}  // namespace

StatusOr<WireRequest> ParseRequestLine(const std::string& line) {
  TPS_ASSIGN_OR_RETURN(json::Value doc, json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  WireRequest request;
  if (const json::Value* cmd = doc.Find("cmd"); cmd != nullptr) {
    if (!cmd->is_string()) {
      return Status::InvalidArgument("\"cmd\" must be a string");
    }
    const std::string& name = cmd->string();
    if (name == "select") {
      request.command = WireCommand::kSelect;
    } else if (name == "ping") {
      return WireRequest{WireCommand::kPing, {}, {}};
    } else if (name == "stats") {
      return WireRequest{WireCommand::kStats, {}, {}};
    } else if (name == "shutdown") {
      return WireRequest{WireCommand::kShutdown, {}, {}};
    } else if (name == "reload") {
      request.command = WireCommand::kReload;
      for (const char* key : {"store", "id", "matrix", "clustering",
                              "index", "embeddings"}) {
        if (doc.Find(key) == nullptr) continue;
        TPS_ASSIGN_OR_RETURN(const std::string value, doc.GetString(key));
        if (key == std::string("store")) request.reload.store = value;
        if (key == std::string("id")) request.reload.id = value;
        if (key == std::string("matrix")) request.reload.matrix = value;
        if (key == std::string("clustering")) {
          request.reload.clustering = value;
        }
        if (key == std::string("index")) request.reload.index = value;
        if (key == std::string("embeddings")) {
          request.reload.embeddings = value;
        }
      }
      if (request.reload.store.empty() && request.reload.matrix.empty()) {
        return Status::InvalidArgument(
            "reload needs \"store\" or \"matrix\"/\"clustering\" paths");
      }
      return request;
    } else {
      return Status::InvalidArgument("unknown cmd: '" + name + "'");
    }
  }

  // Select fields. Unknown keys are deliberately ignored.
  TPS_ASSIGN_OR_RETURN(request.select.target, doc.GetString("target"));
  if (request.select.target.empty()) {
    return Status::InvalidArgument("\"target\" must not be empty");
  }
  if (doc.Find("k") != nullptr) {
    TPS_ASSIGN_OR_RETURN(const double k, doc.GetNumber("k"));
    if (k < 1) return Status::InvalidArgument("\"k\" must be >= 1");
    request.select.top_k = static_cast<size_t>(k);
  }
  if (doc.Find("threshold") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.threshold,
                         doc.GetNumber("threshold"));
    if (request.select.threshold < 0.0) {
      return Status::InvalidArgument("\"threshold\" must be >= 0");
    }
  }
  if (doc.Find("proxy") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.proxy, doc.GetString("proxy"));
  }
  if (doc.Find("proxies") != nullptr) {
    TPS_ASSIGN_OR_RETURN(const json::Value* proxies,
                         doc.GetArray("proxies"));
    for (const json::Value& item : proxies->items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("\"proxies\" must hold strings");
      }
      request.select.proxies.push_back(item.string());
    }
  }
  if (doc.Find("deadline_ms") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.deadline_ms,
                         doc.GetNumber("deadline_ms"));
    if (request.select.deadline_ms < 0.0) {
      return Status::InvalidArgument("\"deadline_ms\" must be >= 0");
    }
  }
  if (doc.Find("trace") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.want_trace, doc.GetBool("trace"));
  }
  if (doc.Find("use_index") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.use_index,
                         doc.GetBool("use_index"));
  }
  if (doc.Find("nprobe") != nullptr) {
    TPS_ASSIGN_OR_RETURN(const double nprobe, doc.GetNumber("nprobe"));
    if (nprobe < 0) return Status::InvalidArgument("\"nprobe\" must be >= 0");
    request.select.nprobe = static_cast<size_t>(nprobe);
  }
  if (doc.Find("recall_backend") != nullptr) {
    TPS_ASSIGN_OR_RETURN(request.select.recall_backend,
                         doc.GetString("recall_backend"));
  }
  return request;
}

std::string RequestToLine(const SelectionRequest& request) {
  json::Value doc = json::Value::Object();
  doc.Set("target", json::Value::String(request.target));
  doc.Set("k", json::Value::Int(static_cast<int64_t>(request.top_k)));
  doc.Set("threshold", json::Value::Number(request.threshold));
  doc.Set("proxy", json::Value::String(request.proxy));
  if (!request.proxies.empty()) {
    json::Value proxies = json::Value::Array();
    for (const std::string& p : request.proxies) {
      proxies.Append(json::Value::String(p));
    }
    doc.Set("proxies", std::move(proxies));
  }
  if (request.deadline_ms > 0.0) {
    doc.Set("deadline_ms", json::Value::Number(request.deadline_ms));
  }
  if (request.want_trace) doc.Set("trace", json::Value::Bool(true));
  if (!request.use_index) doc.Set("use_index", json::Value::Bool(false));
  if (request.nprobe != 0) {
    doc.Set("nprobe", json::Value::Int(static_cast<int64_t>(request.nprobe)));
  }
  if (!request.recall_backend.empty()) {
    doc.Set("recall_backend", json::Value::String(request.recall_backend));
  }
  return doc.Dump(-1);
}

std::string ResponseToLine(const SelectionResponse& response) {
  if (!response.status.ok()) return ErrorToLine(response.status);
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("target", json::Value::String(response.target));
  doc.Set("selected", json::Value::String(response.selected_model));
  doc.Set("accuracy", json::Value::Number(response.selected_accuracy));
  doc.Set("training_epochs", json::Value::Number(response.training_epochs));
  doc.Set("inference_epochs",
          json::Value::Number(response.inference_epochs));
  doc.Set("total_epochs", json::Value::Number(response.total_epochs));
  doc.Set("survivors", SizeArray(response.survivors_per_stage));
  doc.Set("artifact_version", json::Value::Int(static_cast<int64_t>(
                                  response.artifact_version)));
  doc.Set("wall_ms", json::Value::Number(response.wall_ms));
  doc.Set("cache_hits",
          json::Value::Int(static_cast<int64_t>(response.cache_hits)));
  doc.Set("cache_misses",
          json::Value::Int(static_cast<int64_t>(response.cache_misses)));
  if (!response.index_backend.empty()) {
    doc.Set("index_backend", json::Value::String(response.index_backend));
  }
  if (!response.recall_backend.empty()) {
    doc.Set("recall_backend", json::Value::String(response.recall_backend));
  }
  if (response.has_trace) {
    // The trace codec already emits deterministic JSON; parse it into the
    // reply document rather than duplicating the schema here.
    auto trace_or = json::Parse(response.trace.ToJson(-1));
    if (trace_or.ok()) doc.Set("trace", std::move(*trace_or));
  }
  return doc.Dump(-1);
}

std::string ErrorToLine(const Status& status) {
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(false));
  doc.Set("code",
          json::Value::String(std::string(StatusCodeToString(
              status.ok() ? StatusCode::kInternal : status.code()))));
  doc.Set("error", json::Value::String(
                       status.ok() ? "error reply for OK status"
                                   : status.message()));
  return doc.Dump(-1);
}

std::string PongLine() {
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("pong", json::Value::Bool(true));
  return doc.Dump(-1);
}

std::string StatsToLine(const ServiceStats& stats) {
  json::Value inner = json::Value::Object();
  inner.Set("queue_depth",
            json::Value::Int(static_cast<int64_t>(stats.queue_depth)));
  inner.Set("artifact_version", json::Value::Int(static_cast<int64_t>(
                                    stats.artifact_version)));
  inner.Set("reloads",
            json::Value::Int(static_cast<int64_t>(stats.reloads)));
  inner.Set("admitted",
            json::Value::Int(static_cast<int64_t>(stats.admitted)));
  inner.Set("rejected",
            json::Value::Int(static_cast<int64_t>(stats.rejected)));
  inner.Set("completed",
            json::Value::Int(static_cast<int64_t>(stats.completed)));
  inner.Set("deadline_exceeded", json::Value::Int(static_cast<int64_t>(
                                     stats.deadline_exceeded)));
  inner.Set("errors", json::Value::Int(static_cast<int64_t>(stats.errors)));
  inner.Set("cache_hits",
            json::Value::Int(static_cast<int64_t>(stats.cache_hits)));
  inner.Set("cache_misses",
            json::Value::Int(static_cast<int64_t>(stats.cache_misses)));
  inner.Set("cache_evictions", json::Value::Int(static_cast<int64_t>(
                                   stats.cache_evictions)));
  inner.Set("cache_entries",
            json::Value::Int(static_cast<int64_t>(stats.cache_entries)));
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("stats", std::move(inner));
  return doc.Dump(-1);
}

std::string ShutdownAckLine() {
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("shutting_down", json::Value::Bool(true));
  return doc.Dump(-1);
}

std::string ReloadAckLine(uint64_t artifact_version) {
  json::Value doc = json::Value::Object();
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("reloaded", json::Value::Bool(true));
  doc.Set("artifact_version",
          json::Value::Int(static_cast<int64_t>(artifact_version)));
  return doc.Dump(-1);
}

StatusOr<SelectionResponse> ParseResponseLine(const std::string& line) {
  TPS_ASSIGN_OR_RETURN(json::Value doc, json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  TPS_ASSIGN_OR_RETURN(const bool ok, doc.GetBool("ok"));
  if (!ok) {
    TPS_ASSIGN_OR_RETURN(const std::string code, doc.GetString("code"));
    TPS_ASSIGN_OR_RETURN(const std::string error, doc.GetString("error"));
    return Status(CodeFromName(code), error);
  }
  SelectionResponse response;
  response.status = Status::OK();
  TPS_ASSIGN_OR_RETURN(response.target, doc.GetString("target"));
  TPS_ASSIGN_OR_RETURN(response.selected_model, doc.GetString("selected"));
  TPS_ASSIGN_OR_RETURN(response.selected_accuracy,
                       doc.GetNumber("accuracy"));
  TPS_ASSIGN_OR_RETURN(response.training_epochs,
                       doc.GetNumber("training_epochs"));
  TPS_ASSIGN_OR_RETURN(response.inference_epochs,
                       doc.GetNumber("inference_epochs"));
  TPS_ASSIGN_OR_RETURN(response.total_epochs,
                       doc.GetNumber("total_epochs"));
  TPS_ASSIGN_OR_RETURN(const json::Value* survivors,
                       doc.GetArray("survivors"));
  for (const json::Value& item : survivors->items()) {
    if (!item.is_number() || item.number() < 0) {
      return Status::InvalidArgument("\"survivors\" must hold counts");
    }
    response.survivors_per_stage.push_back(
        static_cast<size_t>(item.number()));
  }
  if (doc.Find("artifact_version") != nullptr) {
    TPS_ASSIGN_OR_RETURN(const double version,
                         doc.GetNumber("artifact_version"));
    response.artifact_version = static_cast<uint64_t>(version);
  }
  TPS_ASSIGN_OR_RETURN(response.wall_ms, doc.GetNumber("wall_ms"));
  TPS_ASSIGN_OR_RETURN(const double hits, doc.GetNumber("cache_hits"));
  TPS_ASSIGN_OR_RETURN(const double misses, doc.GetNumber("cache_misses"));
  response.cache_hits = static_cast<uint64_t>(hits);
  response.cache_misses = static_cast<uint64_t>(misses);
  if (doc.Find("index_backend") != nullptr) {
    TPS_ASSIGN_OR_RETURN(response.index_backend,
                         doc.GetString("index_backend"));
  }
  if (doc.Find("recall_backend") != nullptr) {
    TPS_ASSIGN_OR_RETURN(response.recall_backend,
                         doc.GetString("recall_backend"));
  }
  if (const json::Value* trace = doc.Find("trace"); trace != nullptr) {
    TPS_ASSIGN_OR_RETURN(response.trace,
                         SelectionTrace::FromJson(trace->Dump(-1)));
    response.has_trace = true;
  }
  return response;
}

}  // namespace serve
}  // namespace tps
