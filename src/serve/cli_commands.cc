#include "serve/cli_commands.h"

#include <iostream>
#include <utility>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/socket.h"
#include "util/string_util.h"

namespace tps {
namespace serve {

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

StatusOr<TaskDomain> DomainFromFlag(const FlagParser& flags) {
  const std::string domain =
      strings::ToLower(flags.GetString("domain", "nlp"));
  if (domain == "nlp") return TaskDomain::kNLP;
  if (domain == "cv") return TaskDomain::kCV;
  return Status::InvalidArgument("--domain must be nlp or cv, got '" +
                                 domain + "'");
}

}  // namespace

StatusOr<ArtifactPaths> ArtifactPathsFromFlags(const FlagParser& flags) {
  ArtifactPaths paths;
  TPS_ASSIGN_OR_RETURN(paths.domain, DomainFromFlag(flags));
  paths.store = flags.GetString("store");
  paths.id = flags.GetString("id");
  paths.matrix = flags.GetString("matrix");
  paths.clustering = flags.GetString("clustering");
  paths.index = flags.GetString("index");
  paths.embeddings = flags.GetString("embeddings");
  return paths;
}

StatusOr<ServiceOptions> ServiceOptionsFromFlags(const FlagParser& flags) {
  ServiceOptions options;
  TPS_ASSIGN_OR_RETURN(int64_t workers, flags.GetInt("workers", 2));
  if (workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  options.worker_threads = static_cast<int>(workers);
  TPS_ASSIGN_OR_RETURN(
      int64_t queue,
      flags.GetInt("queue", static_cast<int64_t>(options.max_queue)));
  if (queue < 1) return Status::InvalidArgument("--queue must be >= 1");
  options.max_queue = static_cast<size_t>(queue);
  TPS_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 1));
  if (threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  options.pipeline_threads = static_cast<int>(threads);
  TPS_ASSIGN_OR_RETURN(
      int64_t cache,
      flags.GetInt("cache", static_cast<int64_t>(options.cache_capacity)));
  if (cache < 0) return Status::InvalidArgument("--cache must be >= 0");
  options.cache_capacity = static_cast<size_t>(cache);
  TPS_ASSIGN_OR_RETURN(options.default_deadline_ms,
                       flags.GetDouble("deadline", 0.0));
  if (options.default_deadline_ms < 0.0) {
    return Status::InvalidArgument("--deadline must be >= 0");
  }
  return options;
}

StatusOr<SelectionRequest> RequestFromFlags(const FlagParser& flags) {
  SelectionRequest request;
  request.target = flags.GetString("target");
  if (request.target.empty()) {
    return Status::InvalidArgument("--target is required");
  }
  TPS_ASSIGN_OR_RETURN(int64_t k, flags.GetInt("k", 10));
  if (k < 1) return Status::InvalidArgument("--k must be >= 1");
  request.top_k = static_cast<size_t>(k);
  TPS_ASSIGN_OR_RETURN(request.threshold,
                       flags.GetDouble("threshold", 0.0));
  request.proxy = flags.GetString("proxy", "leep");
  request.proxies = flags.GetList("proxies");
  TPS_ASSIGN_OR_RETURN(request.deadline_ms, flags.GetDouble("deadline", 0.0));
  if (request.deadline_ms < 0.0) {
    return Status::InvalidArgument("--deadline must be >= 0");
  }
  TPS_ASSIGN_OR_RETURN(request.want_trace, flags.GetBool("trace", false));
  TPS_ASSIGN_OR_RETURN(const bool no_index,
                       flags.GetBool("no-index", false));
  request.use_index = !no_index;
  TPS_ASSIGN_OR_RETURN(int64_t nprobe, flags.GetInt("nprobe", 0));
  if (nprobe < 0) return Status::InvalidArgument("--nprobe must be >= 0");
  request.nprobe = static_cast<size_t>(nprobe);
  request.recall_backend = flags.GetString("backend");
  return request;
}

int RunServe(const FlagParser& flags) {
  auto paths_or = ArtifactPathsFromFlags(flags);
  if (!paths_or.ok()) return Fail(paths_or.status());
  auto options_or = ServiceOptionsFromFlags(flags);
  if (!options_or.ok()) return Fail(options_or.status());

  ServerOptions server_options;
  server_options.unix_path = flags.GetString("socket");
  if (flags.Has("port")) {
    auto port_or = flags.GetInt("port", 0);
    if (!port_or.ok()) return Fail(port_or.status());
    if (*port_or < 0 || *port_or > 65535) {
      return Fail(Status::InvalidArgument("--port must be in [0, 65535]"));
    }
    server_options.tcp_port = static_cast<int>(*port_or);
  }
  if (server_options.unix_path.empty() && server_options.tcp_port < 0) {
    return Fail(Status::InvalidArgument(
        "--socket=PATH and/or --port=N is required"));
  }

  auto artifacts_or = ServiceArtifacts::Load(*paths_or);
  if (!artifacts_or.ok()) return Fail(artifacts_or.status());
  auto service_or =
      SelectionService::Create(std::move(*artifacts_or), *options_or);
  if (!service_or.ok()) return Fail(service_or.status());
  SelectionService& service = **service_or;

  auto server_or = SelectionServer::Start(&service, server_options);
  if (!server_or.ok()) return Fail(server_or.status());
  SelectionServer& server = **server_or;

  {
    const auto snapshot = service.snapshot();
    std::cout << "serving " << ToString(snapshot->artifacts.domain)
              << " zoo (" << snapshot->artifacts.zoo.size() << " models)\n";
  }
  if (!server.unix_path().empty()) {
    std::cout << "  unix socket -> " << server.unix_path() << "\n";
  }
  if (server.tcp_port() > 0) {
    std::cout << "  tcp -> 127.0.0.1:" << server.tcp_port() << "\n";
  }
  std::cout << "  workers=" << options_or->worker_threads
            << " queue=" << options_or->max_queue
            << " threads=" << options_or->pipeline_threads
            << " cache=" << options_or->cache_capacity << "\n"
            << "send {\"cmd\":\"shutdown\"} to stop\n"
            << std::flush;

  server.Wait();
  server.Shutdown();
  const ServiceStats stats = service.Stats();
  std::cout << "server stopped: " << stats.completed << " completed, "
            << stats.rejected << " rejected, " << stats.deadline_exceeded
            << " deadline-exceeded, " << stats.errors << " errors\n"
            << "proxy cache: " << stats.cache_hits << " hits, "
            << stats.cache_misses << " misses, " << stats.cache_evictions
            << " evictions\n";
  return 0;
}

namespace {

/// Shared body of `query` and `reload`; `forced_cmd` overrides --cmd when
/// non-empty.
int RunQueryImpl(const FlagParser& flags, const std::string& forced_cmd) {
  const std::string socket_path = flags.GetString("socket");
  StatusOr<Socket> socket_or = Status::InvalidArgument(
      "--socket=PATH or --port=N is required");
  if (!socket_path.empty()) {
    socket_or = ConnectUnix(socket_path);
  } else if (flags.Has("port")) {
    auto port_or = flags.GetInt("port", 0);
    if (!port_or.ok()) return Fail(port_or.status());
    socket_or = ConnectTcp(static_cast<int>(*port_or));
  }
  if (!socket_or.ok()) return Fail(socket_or.status());
  Socket socket = std::move(*socket_or);

  const std::string cmd =
      forced_cmd.empty() ? flags.GetString("cmd", "select") : forced_cmd;
  std::string line;
  if (cmd == "select") {
    auto request_or = RequestFromFlags(flags);
    if (!request_or.ok()) return Fail(request_or.status());
    line = RequestToLine(*request_or);
  } else if (cmd == "ping" || cmd == "stats" || cmd == "shutdown") {
    json::Value doc = json::Value::Object();
    doc.Set("cmd", json::Value::String(cmd));
    line = doc.Dump(-1);
  } else if (cmd == "reload") {
    // Same source flags as `serve` (--store/--id or --matrix/--clustering);
    // the server supplies the domain itself.
    json::Value doc = json::Value::Object();
    doc.Set("cmd", json::Value::String(cmd));
    for (const char* key : {"store", "id", "matrix", "clustering",
                            "index", "embeddings"}) {
      const std::string value = flags.GetString(key);
      if (!value.empty()) doc.Set(key, json::Value::String(value));
    }
    if (doc.Find("store") == nullptr && doc.Find("matrix") == nullptr) {
      return Fail(Status::InvalidArgument(
          "--cmd=reload needs --store or --matrix/--clustering"));
    }
    line = doc.Dump(-1);
  } else {
    return Fail(Status::InvalidArgument(
        "--cmd must be select, ping, stats, reload or shutdown; got '" +
        cmd + "'"));
  }

  Status sent = socket.SendAll(line + "\n");
  if (!sent.ok()) return Fail(sent);
  std::string buffer;
  auto reply_or = socket.RecvLine(&buffer);
  if (!reply_or.ok()) return Fail(reply_or.status());
  std::cout << *reply_or << "\n";

  // Exit code mirrors the reply so shell pipelines can branch on it.
  auto doc_or = json::Parse(*reply_or);
  if (!doc_or.ok()) return Fail(doc_or.status());
  auto ok_or = doc_or->GetBool("ok");
  if (!ok_or.ok()) return Fail(ok_or.status());
  return *ok_or ? 0 : 1;
}

}  // namespace

int RunQuery(const FlagParser& flags) { return RunQueryImpl(flags, ""); }

int RunReload(const FlagParser& flags) {
  return RunQueryImpl(flags, "reload");
}

}  // namespace serve
}  // namespace tps
