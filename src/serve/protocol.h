#ifndef TPS_SERVE_PROTOCOL_H_
#define TPS_SERVE_PROTOCOL_H_

#include <string>

#include "serve/service.h"
#include "util/statusor.h"

namespace tps {
namespace serve {

/// Newline-delimited JSON wire protocol ("Serving" in DESIGN.md).
///
/// Every request is one JSON object on one line; every reply is one JSON
/// object on one line. Schema (v1 — extend by adding keys, never by
/// renaming):
///
///   select (default when "cmd" is absent):
///     {"target": "mnli", "k": 10, "threshold": 0.0, "proxy": "leep",
///      "proxies": ["leep","nce"], "deadline_ms": 250, "trace": false,
///      "recall_backend": "embedding"}   // "" = built-in recall path
///     -> {"ok": true, "target": "mnli", "selected": "...",
///         "accuracy": 0.83, "training_epochs": 17, "inference_epochs":
///         3.5, "total_epochs": 20.5, "survivors": [10,5,2,1,1],
///         "wall_ms": 1.2, "cache_hits": 7, "cache_misses": 0,
///         "recall_backend": "embedding",  // echoed when routed
///         "trace": {...}}          // trace only when requested
///
///   {"cmd": "ping"}     -> {"ok": true, "pong": true}
///   {"cmd": "stats"}    -> {"ok": true, "stats": {...ServiceStats...}}
///   {"cmd": "shutdown"} -> {"ok": true, "shutting_down": true}, then the
///                          server stops accepting and drains.
///
///   reload (zero-downtime artifact hot swap):
///     {"cmd": "reload", "store": "PATH", "id": "nlp"}        // or
///     {"cmd": "reload", "matrix": "PATH", "clustering": "PATH"}
///     -> {"ok": true, "reloaded": true, "artifact_version": 2}
///     The artifacts load and validate on the connection thread, entirely
///     off the serving path; on any failure nothing is published and the
///     current version keeps serving. The domain is the server's own (a
///     reload can never flip an NLP server to CV).
///
/// Select replies carry "artifact_version": the artifact version the
/// request was served against (1 until the first reload).
///
/// Failures (parse errors, unknown targets, queue-full rejection, deadline
/// expiry) are `{"ok": false, "code": "<StatusCodeName>", "error":
/// "<message>"}` — the connection stays open; one bad line never tears
/// down a session.
enum class WireCommand { kSelect, kPing, kStats, kShutdown, kReload };

struct WireRequest {
  WireCommand command = WireCommand::kSelect;
  SelectionRequest select;  // Only meaningful for kSelect.
  /// Only meaningful for kReload. `domain` is NOT parsed from the wire —
  /// the server overwrites it with its own serving domain.
  ArtifactPaths reload;
};

/// Parses one request line. InvalidArgument on malformed JSON, a non-object
/// document, an unknown "cmd", bad field types, or a missing target for
/// select. Unknown keys are ignored (forward compatibility).
StatusOr<WireRequest> ParseRequestLine(const std::string& line);

/// Serializes a select request (the client side of the protocol).
std::string RequestToLine(const SelectionRequest& request);

/// One-line JSON reply for a handled selection (ok or error form).
std::string ResponseToLine(const SelectionResponse& response);

/// One-line `{"ok": false, ...}` reply for protocol-level failures.
std::string ErrorToLine(const Status& status);

/// {"ok": true, "pong": true}
std::string PongLine();

/// {"ok": true, "stats": {...}}
std::string StatsToLine(const ServiceStats& stats);

/// {"ok": true, "shutting_down": true}
std::string ShutdownAckLine();

/// {"ok": true, "reloaded": true, "artifact_version": N}
std::string ReloadAckLine(uint64_t artifact_version);

/// Client-side decode of a reply line: OK and the parsed object when
/// `"ok": true`; the transported Status (code restored from "code")
/// otherwise.
StatusOr<SelectionResponse> ParseResponseLine(const std::string& line);

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_PROTOCOL_H_
