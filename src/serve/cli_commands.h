#ifndef TPS_SERVE_CLI_COMMANDS_H_
#define TPS_SERVE_CLI_COMMANDS_H_

#include "serve/artifacts.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/statusor.h"

namespace tps {
namespace serve {

/// Flag plumbing shared by `tps_serve` and the `tps_cli serve`/`query`
/// subcommands, so the standalone daemon and the multiplexed CLI accept
/// identical flags and print identical output.

/// --domain/--store/--id/--matrix/--clustering -> ArtifactPaths.
StatusOr<ArtifactPaths> ArtifactPathsFromFlags(const FlagParser& flags);

/// --workers (2) / --queue (64) / --threads (1) / --cache (4096) /
/// --deadline (ms, 0 = none) -> ServiceOptions.
StatusOr<ServiceOptions> ServiceOptionsFromFlags(const FlagParser& flags);

/// --target / --k (10) / --threshold (0) / --proxy (leep) / --proxies /
/// --deadline (ms) / --trace (bool) -> SelectionRequest.
StatusOr<SelectionRequest> RequestFromFlags(const FlagParser& flags);

/// `serve`: load artifacts, start a SelectionService plus its socket front
/// end (--socket=PATH and/or --port=N; port 0 auto-assigns), then block
/// until a client sends {"cmd":"shutdown"}. Returns a process exit code.
int RunServe(const FlagParser& flags);

/// `query`: connect to a running server (--socket=PATH or --port=N), send
/// one request (--cmd=select|ping|stats|reload|shutdown, default select),
/// print the raw NDJSON reply line on stdout. For --cmd=reload the
/// artifact source flags (--store/--id or --matrix/--clustering) name the
/// new artifacts to hot-swap in. Exit 0 iff the reply has "ok": true.
int RunQuery(const FlagParser& flags);

/// `reload`: shorthand for `query --cmd=reload` — hot-swap a running
/// server onto the artifacts named by --store/--id or
/// --matrix/--clustering.
int RunReload(const FlagParser& flags);

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_CLI_COMMANDS_H_
