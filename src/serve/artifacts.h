#ifndef TPS_SERVE_ARTIFACTS_H_
#define TPS_SERVE_ARTIFACTS_H_

#include <memory>
#include <string>

#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "data/registry.h"
#include "index/ivf_index.h"
#include "model/zoo.h"
#include "recall/recall_embeddings.h"
#include "util/statusor.h"

namespace tps {
namespace serve {

/// Where to load the offline artifacts from: either a model store (`store`
/// + `id`) or the plain-file pair (`matrix` + `clustering`). `id` defaults
/// to the domain name ("nlp" / "cv") when empty.
struct ArtifactPaths {
  TaskDomain domain = TaskDomain::kNLP;
  std::string store;
  std::string id;
  std::string matrix;
  std::string clustering;
  /// Optional sub-linear recall index. In file mode this is the path of a
  /// serialized IvfIndex; in store mode the index is looked up under the
  /// same artifact id and is simply absent (never an error) when the store
  /// has none. Leave empty for index-free file-mode serving.
  std::string index;
  /// Optional trained recall embeddings (src/recall/). File mode: the path
  /// of a serialized RecallEmbeddings; store mode: looked up under the
  /// artifact id, absent-is-OK like the index. Without embeddings the
  /// embedding/hybrid recall backends are simply unavailable.
  std::string embeddings;
};

/// Everything the online pipeline reads: the dataset inventory, the model
/// zoo, and the offline artifacts (performance matrix + clustering). One
/// loaded instance is shared read-only by every request a SelectionService
/// handles — the whole point of the serving layer is to stop reloading
/// this per invocation.
struct ServiceArtifacts {
  DatasetRegistry registry;
  ModelZoo zoo;
  PerformanceMatrix matrix;
  ModelClustering clustering;
  TaskDomain domain = TaskDomain::kNLP;
  /// Optional sub-linear recall index over the zoo (null = serve the
  /// legacy clustering sweep). Shared because an ArtifactSnapshot may
  /// outlive the slot publication that delivered it.
  std::shared_ptr<const IvfIndex> index;
  /// Optional trained two-tower recall embeddings (null = the embedding
  /// and hybrid backends are unavailable for this version).
  std::shared_ptr<const recall::RecallEmbeddings> embeddings;
  /// IVF over the *embedding* vectors, so embedding recall is sub-linear
  /// too. Rebuilt deterministically from `embeddings` on attach (never
  /// persisted — it is a pure function of the embeddings); null whenever
  /// `embeddings` is.
  std::shared_ptr<const IvfIndex> embedding_index;

  /// Attaches trained recall embeddings and builds the embedding-space
  /// IVF over their model vectors. Deterministic: same embeddings, same
  /// index, bit for bit.
  Status AttachEmbeddings(recall::RecallEmbeddings trained);

  /// Internal-consistency check run before artifacts are served: the
  /// matrix and clustering must cover exactly this zoo. Load() runs it on
  /// every load; SelectionService::Reload runs it again before publishing,
  /// so a bad artifact file can never replace a good serving version.
  Status Validate() const;

  /// Loads previously persisted artifacts (store or files) and validates
  /// they cover exactly one zoo: the paper zoo for the domain or, when a
  /// store carries a differently-sized matrix, the generated zoo
  /// reconstructed from the store's model specs in matrix column order.
  /// The store is opened
  /// read-only-in-spirit: it is opened, read, and closed before this
  /// returns, so a long-lived service holds no lock on the log file.
  static StatusOr<ServiceArtifacts> Load(const ArtifactPaths& paths);

  /// Builds fresh artifacts in-process (registry + zoo + matrix +
  /// clustering) — the offline phase without persistence. Used by tests
  /// and benches that need a self-contained world. `threads` >= 1 fans
  /// the matrix build over a pool.
  static StatusOr<ServiceArtifacts> Build(TaskDomain domain,
                                          int threads = 1);
};

}  // namespace serve
}  // namespace tps

#endif  // TPS_SERVE_ARTIFACTS_H_
