#include "serve/artifact_slot.h"

#include <utility>

namespace tps {
namespace serve {

ArtifactSlot::ArtifactSlot(std::shared_ptr<const ArtifactSnapshot> initial)
    : current_(std::move(initial)), version_(current_->version) {}

std::shared_ptr<const ArtifactSnapshot> ArtifactSlot::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<const ArtifactSnapshot> ArtifactSlot::Publish(
    std::shared_ptr<const ArtifactSnapshot> next) {
  std::shared_ptr<const ArtifactSnapshot> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(current_);
    current_ = std::move(next);
    version_.store(current_->version, std::memory_order_release);
  }
  return retired;
}

}  // namespace serve
}  // namespace tps
