#ifndef TPS_CORE_PLANNER_H_
#define TPS_CORE_PLANNER_H_

#include <string>

#include "core/coarse_recall.h"
#include "core/selection.h"
#include "core/two_phase.h"
#include "util/statusor.h"

namespace tps {

/// Selection strategies the planner chooses between, cheapest first.
enum class SelectionStrategy {
  /// Coarse-recall only: fine-tune nothing but the single top-scored
  /// model. Cheapest, most error-prone (the paper's "first category").
  kProxyOnly,
  /// The paper's coarse-recall + fine-selection pipeline.
  kTwoPhase,
  /// Successive halving over the whole repository.
  kSuccessiveHalving,
  /// Fine-tune everything.
  kBruteForce,
};

std::string ToString(SelectionStrategy strategy);

/// Closed-form cost predictions (in epoch-equivalents) for each strategy,
/// given the repository shape. These are exact for BF/SH (their schedules
/// are deterministic) and worst-case bounds for the adaptive strategies.
struct StrategyCosts {
  double proxy_only = 0.0;
  double two_phase_upper = 0.0;  // Recall + SH-over-K bound.
  double two_phase_lower = 0.0;  // Recall + single-survivor fine-selection.
  double successive_halving = 0.0;
  double brute_force = 0.0;
};

struct PlanDecision {
  SelectionStrategy strategy = SelectionStrategy::kProxyOnly;
  /// The worst-case cost of the chosen strategy.
  double predicted_cost = 0.0;
  StrategyCosts costs;
  std::string rationale;
};

/// Shift-style cost-aware planning (the paper's reference [4]: "builds a
/// cost model to predict the training cost of successive halving and
/// fine-tuning directly"): given an epoch budget, pick the most thorough
/// strategy whose *worst-case* predicted cost fits.
///
/// Cost formulas (T = epochs per full fine-tune, n = repository size,
/// C = scored cluster representatives, K = recall size):
///   proxy-only          0.5 C + T
///   two-phase  (lower)  0.5 C + K + (T - 1)
///              (upper)  0.5 C + SH-schedule(K)
///   SH                  sum of the floor(n/2) schedule over T stages
///   brute force         n T
class CostAwarePlanner {
 public:
  /// `num_models`: repository size; `num_scored_clusters`: non-singleton
  /// clusters the recall phase scores; `recall_k`: fine-selection entry
  /// size; `epochs`: full fine-tune length.
  CostAwarePlanner(size_t num_models, size_t num_scored_clusters,
                   size_t recall_k, int epochs);

  /// Predicted costs of all strategies.
  StrategyCosts PredictCosts() const;

  /// Exact epoch count of the floor(n/2) successive-halving schedule.
  static double HalvingScheduleCost(size_t candidates, int epochs);

  /// Picks the most thorough strategy fitting `epoch_budget`. Falls back
  /// to proxy-only when nothing fits (with a rationale saying so).
  PlanDecision Plan(double epoch_budget) const;

 private:
  size_t num_models_;
  size_t num_scored_clusters_;
  size_t recall_k_;
  int epochs_;
};

}  // namespace tps

#endif  // TPS_CORE_PLANNER_H_
