#ifndef TPS_CORE_EVALUATION_H_
#define TPS_CORE_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/statusor.h"

namespace tps {

/// Evaluation-only helpers for the benchmark harnesses: the "what would
/// every model actually achieve" ground truth that methods are scored
/// against (the paper obtains it by fine-tuning all models on each target).

/// Final test accuracy of every zoo model fully fine-tuned on `target`
/// (indexed like the zoo).
StatusOr<std::vector<double>> TrueFinalAccuracies(
    const ModelZoo& zoo, const Dataset& target,
    const FineTuneSimulator& simulator, const Hyperparams& hp);

/// Mean of the accuracies at `indices`.
double MeanAt(const std::vector<double>& accuracies,
              const std::vector<size_t>& indices);

/// Index (into `accuracies`) of the best model.
size_t BestModel(const std::vector<double>& accuracies);

/// Indices of the top `k` models by accuracy, descending.
std::vector<size_t> TopKByAccuracy(const std::vector<double>& accuracies,
                                   size_t k);

}  // namespace tps

#endif  // TPS_CORE_EVALUATION_H_
