#ifndef TPS_CORE_TASK_SIMILARITY_H_
#define TPS_CORE_TASK_SIMILARITY_H_

#include <vector>

#include "core/performance_matrix.h"
#include "data/dataset.h"
#include "model/zoo.h"
#include "util/statusor.h"

namespace tps {

/// Task2Vec-style selection baseline (the paper's related work [57]):
/// embed tasks with a fixed probe model, find the benchmark task nearest
/// to the target, and rank repository models by their recorded performance
/// on that benchmark. One probe forward pass per task — even cheaper than
/// LEEP-based recall, but blind to anything the nearest benchmark does not
/// capture.
///
/// Task embedding: the probe model's features are computed on the task's
/// examples; the embedding concatenates the feature mean with the
/// per-dimension within-task standard deviation (a cheap stand-in for the
/// Fisher-information diagonal Task2Vec uses). Similarity is cosine.
class TaskSimilaritySelector {
 public:
  /// `probe` is the fixed probe model (e.g. bert-base / vit-base); all
  /// pointers must outlive this object. Benchmark embeddings are computed
  /// lazily on first use and cached.
  TaskSimilaritySelector(const PretrainedModel* probe,
                         const PerformanceMatrix* matrix,
                         const std::vector<const Dataset*>& benchmarks);

  /// Embeds one task with the probe model.
  StatusOr<std::vector<double>> EmbedTask(const Dataset& task) const;

  /// Index (into the benchmark list) of the benchmark most similar to
  /// `target`, plus the similarity value.
  struct NearestBenchmark {
    size_t benchmark_index = 0;
    double similarity = 0.0;
  };
  StatusOr<NearestBenchmark> FindNearestBenchmark(
      const Dataset& target) const;

  /// Ranks all repository models by their performance-matrix accuracy on
  /// the nearest benchmark, descending. Returns zoo indices.
  StatusOr<std::vector<size_t>> RankModels(const Dataset& target) const;

 private:
  const PretrainedModel* probe_;
  const PerformanceMatrix* matrix_;
  std::vector<const Dataset*> benchmarks_;
  mutable std::vector<std::vector<double>> benchmark_embeddings_;
};

}  // namespace tps

#endif  // TPS_CORE_TASK_SIMILARITY_H_
