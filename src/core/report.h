#ifndef TPS_CORE_REPORT_H_
#define TPS_CORE_REPORT_H_

#include <string>

#include "core/two_phase.h"
#include "data/dataset.h"
#include "model/zoo.h"

namespace tps {

/// Renders a human-readable Markdown report of one two-phase selection run:
/// target summary, recall ranking (with score breakdown), fine-selection
/// survivor schedule, the winner, and the cost ledger. Used by the CLI's
/// `select --report=PATH` and handy for experiment logs.
std::string RenderSelectionReport(const TwoPhaseReport& report,
                                  const ModelZoo& zoo, const Dataset& target,
                                  size_t recall_rows = 10);

}  // namespace tps

#endif  // TPS_CORE_REPORT_H_
