#ifndef TPS_CORE_HYPERBAND_H_
#define TPS_CORE_HYPERBAND_H_

#include <vector>

#include "core/selection.h"
#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/epoch_budget.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/statusor.h"

namespace tps {

struct HyperbandOptions {
  /// Reduction factor shared by all brackets.
  int eta = 2;
};

/// Per-bracket trace for reporting.
struct HyperbandBracket {
  /// Bracket id s (s_max .. 0).
  int s = 0;
  /// Number of candidates the bracket started with.
  size_t initial_candidates = 0;
  /// Epochs each starting candidate trained before the first cut.
  int initial_epochs = 0;
  /// Training epochs the bracket consumed.
  double epochs = 0.0;
  /// The bracket's winner (zoo index) and its final validation accuracy.
  size_t winner = 0;
  double winner_val = 0.0;
};

struct HyperbandOutcome {
  SelectionOutcome selection;
  std::vector<HyperbandBracket> brackets;
};

/// Hyperband (Li et al., 2018) over the model-selection problem: runs
/// several successive-halving brackets that trade breadth (many candidates,
/// short initial training) against depth (few candidates, long initial
/// training), then picks the best bracket winner by validation accuracy.
///
/// Adapted to the paper's regime: a "resource" is one fine-tuning epoch and
/// the maximum per-candidate resource is hp.epochs, so s_max =
/// floor(log_eta(hp.epochs)). Candidates for each bracket are taken from
/// the front of `candidates` (a recall-style ranking makes the broad
/// brackets meaningful). Like the SH baseline it curbs, Hyperband never
/// uses benchmark convergence trends — it is the strongest trend-free
/// baseline the fine-selection method should be compared against.
class HyperbandSelector {
 public:
  HyperbandSelector(const ModelZoo* zoo, const FineTuneSimulator* simulator,
                    HyperbandOptions options = HyperbandOptions());

  /// Runs all brackets over `candidates` (zoo indices, best-first).
  /// Charges training epochs to `budget` (may be null).
  StatusOr<HyperbandOutcome> Select(const std::vector<size_t>& candidates,
                                    const Dataset& target,
                                    const Hyperparams& hp,
                                    EpochBudget* budget) const;

 private:
  const ModelZoo* zoo_;
  const FineTuneSimulator* simulator_;
  HyperbandOptions options_;
};

}  // namespace tps

#endif  // TPS_CORE_HYPERBAND_H_
