#include "core/two_phase.h"

#include "recall/recall_backend.h"
#include "util/logging.h"

namespace tps {

TwoPhaseSelector::TwoPhaseSelector(const ModelZoo* zoo,
                                   const PerformanceMatrix* matrix,
                                   const ModelClustering* clustering,
                                   const FineTuneSimulator* simulator)
    : zoo_(zoo),
      matrix_(matrix),
      clustering_(clustering),
      simulator_(simulator) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(matrix_ != nullptr);
  TPS_CHECK(clustering_ != nullptr);
  TPS_CHECK(simulator_ != nullptr);
}

StatusOr<TwoPhaseReport> TwoPhaseSelector::Select(
    const Dataset& target, const TwoPhaseOptions& options) const {
  return Select(target, options,
                Hyperparams::DefaultsFor(target.spec().domain));
}

StatusOr<TwoPhaseReport> TwoPhaseSelector::Select(
    const Dataset& target, const TwoPhaseOptions& options,
    const Hyperparams& hp) const {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.num_threads == 1) return Select(target, options, hp, nullptr);
  // One pool for the whole call, shared by both phases. Never more
  // workers than the widest fan-out (all models scored directly).
  ThreadPool pool(ThreadPool::ClampThreads(options.num_threads,
                                           zoo_->size()));
  return Select(target, options, hp, &pool);
}

StatusOr<TwoPhaseReport> TwoPhaseSelector::Select(
    const Dataset& target, const TwoPhaseOptions& options,
    const Hyperparams& hp, ThreadPool* pool) const {
  TwoPhaseReport report;
  MetricsRegistry* metrics = options.metrics != nullptr
                                 ? options.metrics
                                 : MetricsRegistry::Default();
  SelectionTrace* trace = options.trace;
  if (trace != nullptr) {
    *trace = SelectionTrace();
    trace->target = target.name();
    trace->domain = ToString(target.spec().domain);
  }

  // Phase 1: coarse recall (charges 0.5 epoch-equivalents per proxy).
  // A non-null pluggable backend takes over the whole phase; the default
  // null path is the paper's cluster-representative proxy recall,
  // untouched (the representative backend delegates right back here, so
  // the two routes are bit-identical).
  if (options.recall.backend != nullptr) {
    TPS_ASSIGN_OR_RETURN(
        report.recall,
        options.recall.backend->Recall(target, options.recall,
                                       &report.budget, pool, metrics, trace,
                                       options.cancel));
  } else {
    CoarseRecall recall(zoo_, matrix_, clustering_);
    TPS_ASSIGN_OR_RETURN(report.recall,
                         recall.Recall(target, options.recall, &report.budget,
                                       pool, metrics, trace, options.cancel));
  }
  const std::vector<size_t> candidates =
      report.recall.TopModels(options.recall.top_k_models);
  if (candidates.empty()) {
    return Status::Internal("coarse recall returned no candidates");
  }

  // Phase 2: fine selection over the recalled candidates, on the same
  // pool.
  ConvergenceTrendMiner miner(matrix_, options.trends);
  FineSelectionSelector fine(zoo_, simulator_, &miner,
                             options.fine_selection);
  TPS_ASSIGN_OR_RETURN(report.selection,
                       fine.Select(candidates, target, hp, &report.budget,
                                   pool, metrics, trace, options.cancel));
  metrics->counter("two_phase.runs").Increment();
  if (trace != nullptr) trace->total_epochs = report.budget.total_epochs();
  return report;
}

}  // namespace tps
