#ifndef TPS_CORE_BASELINES_H_
#define TPS_CORE_BASELINES_H_

#include <vector>

#include "core/selection.h"
#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/epoch_budget.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/statusor.h"

namespace tps {

/// Brute-force search (BF in the paper): fine-tune every candidate for the
/// full epoch budget and keep the best final validation accuracy. The
/// accuracy ceiling every other strategy is compared against; cost is
/// |candidates| * epochs.
class BruteForceSelector {
 public:
  /// Pointers must outlive this object.
  BruteForceSelector(const ModelZoo* zoo, const FineTuneSimulator* simulator);

  /// Runs the selection over `candidates` (zoo indices). Charges training
  /// epochs to `budget` (may be null). Fails on an empty candidate list or
  /// domain mismatches.
  StatusOr<SelectionOutcome> Select(const std::vector<size_t>& candidates,
                                    const Dataset& target,
                                    const Hyperparams& hp,
                                    EpochBudget* budget) const;

 private:
  const ModelZoo* zoo_;
  const FineTuneSimulator* simulator_;
};

struct SuccessiveHalvingOptions {
  /// Pool-reduction factor per stage: keep floor(n / eta) survivors. The
  /// paper (and classic SH) uses eta = 2; larger values are cheaper and
  /// riskier (an ablation axis).
  int eta = 2;
};

/// Successive halving (SH, Jamieson & Talwalkar 2016, as used by Palette):
/// every surviving candidate trains one epoch per stage, then the pool is
/// cut to the floor(n/eta) best by validation accuracy (never below 1),
/// until the epoch budget is exhausted; the survivor with the best final
/// validation wins.
class SuccessiveHalvingSelector {
 public:
  SuccessiveHalvingSelector(
      const ModelZoo* zoo, const FineTuneSimulator* simulator,
      SuccessiveHalvingOptions options = SuccessiveHalvingOptions());

  StatusOr<SelectionOutcome> Select(const std::vector<size_t>& candidates,
                                    const Dataset& target,
                                    const Hyperparams& hp,
                                    EpochBudget* budget) const;

  const SuccessiveHalvingOptions& options() const { return options_; }

 private:
  const ModelZoo* zoo_;
  const FineTuneSimulator* simulator_;
  SuccessiveHalvingOptions options_;
};

}  // namespace tps

#endif  // TPS_CORE_BASELINES_H_
