#include "core/planner.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace tps {

std::string ToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kProxyOnly:
      return "proxy-only";
    case SelectionStrategy::kTwoPhase:
      return "two-phase";
    case SelectionStrategy::kSuccessiveHalving:
      return "successive-halving";
    case SelectionStrategy::kBruteForce:
      return "brute-force";
  }
  return "?";
}

CostAwarePlanner::CostAwarePlanner(size_t num_models,
                                   size_t num_scored_clusters,
                                   size_t recall_k, int epochs)
    : num_models_(num_models),
      num_scored_clusters_(num_scored_clusters),
      recall_k_(std::min(recall_k, num_models)),
      epochs_(epochs) {
  TPS_CHECK(num_models_ > 0);
  TPS_CHECK(epochs_ > 0);
}

double CostAwarePlanner::HalvingScheduleCost(size_t candidates, int epochs) {
  double total = 0.0;
  size_t remaining = candidates;
  for (int stage = 0; stage < epochs; ++stage) {
    total += static_cast<double>(remaining);
    if (remaining > 1) remaining = std::max<size_t>(1, remaining / 2);
  }
  return total;
}

StrategyCosts CostAwarePlanner::PredictCosts() const {
  StrategyCosts costs;
  const double recall_cost =
      0.5 * static_cast<double>(num_scored_clusters_);
  costs.proxy_only = recall_cost + static_cast<double>(epochs_);
  costs.two_phase_lower =
      recall_cost + static_cast<double>(recall_k_) +
      static_cast<double>(epochs_ - 1);
  costs.two_phase_upper =
      recall_cost + HalvingScheduleCost(recall_k_, epochs_);
  costs.successive_halving = HalvingScheduleCost(num_models_, epochs_);
  costs.brute_force =
      static_cast<double>(num_models_) * static_cast<double>(epochs_);
  return costs;
}

PlanDecision CostAwarePlanner::Plan(double epoch_budget) const {
  PlanDecision decision;
  decision.costs = PredictCosts();
  const StrategyCosts& costs = decision.costs;

  if (epoch_budget >= costs.brute_force) {
    decision.strategy = SelectionStrategy::kBruteForce;
    decision.predicted_cost = costs.brute_force;
    decision.rationale = strings::Format(
        "budget %.1f covers exhaustive fine-tuning (%.1f epochs)",
        epoch_budget, costs.brute_force);
  } else if (epoch_budget >= costs.successive_halving) {
    decision.strategy = SelectionStrategy::kSuccessiveHalving;
    decision.predicted_cost = costs.successive_halving;
    decision.rationale = strings::Format(
        "budget %.1f covers full-repository halving (%.1f) but not brute "
        "force (%.1f)",
        epoch_budget, costs.successive_halving, costs.brute_force);
  } else if (epoch_budget >= costs.two_phase_upper) {
    decision.strategy = SelectionStrategy::kTwoPhase;
    decision.predicted_cost = costs.two_phase_upper;
    decision.rationale = strings::Format(
        "budget %.1f covers two-phase selection even in the worst case "
        "(%.1f-%.1f epochs)",
        epoch_budget, costs.two_phase_lower, costs.two_phase_upper);
  } else {
    decision.strategy = SelectionStrategy::kProxyOnly;
    decision.predicted_cost = costs.proxy_only;
    decision.rationale = strings::Format(
        "budget %.1f fits only proxy scoring plus one fine-tune (%.1f "
        "epochs); selection quality is not guaranteed",
        epoch_budget, costs.proxy_only);
  }
  return decision;
}

}  // namespace tps
