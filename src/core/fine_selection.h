#ifndef TPS_CORE_FINE_SELECTION_H_
#define TPS_CORE_FINE_SELECTION_H_

#include <vector>

#include "core/cancellation.h"
#include "core/convergence_trend.h"
#include "core/selection.h"
#include "core/selection_trace.h"
#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/epoch_budget.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/metrics.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace tps {

struct FineSelectionOptions {
  /// Fine-filter threshold (Table IV): model j is removed only when some
  /// model i has better validation accuracy AND
  /// pred_i - pred_j > threshold * pred_j. 0.0 is the paper's default.
  double threshold = 0.0;
};

/// The paper's fine-selection strategy (Algorithm 1): successive halving
/// augmented with convergence-trend prediction. At each stage every
/// survivor trains one epoch; then
///   1. each survivor's final accuracy is predicted by matching its current
///      validation accuracy to the model's mined convergence trends
///      (Eqs. 5-6);
///   2. fine-filter: walking from the worst validation score upward, a
///      model is dropped if some better-validating model also has a
///      better prediction by the threshold margin;
///   3. halving backstop: the pool is cut to floor(n/2) by validation if
///      fine-filter removed fewer than half.
/// At least half the pool is filtered per stage, so cost is at most
/// successive halving's and usually far less.
class FineSelectionSelector {
 public:
  /// Pointers must outlive this object.
  FineSelectionSelector(const ModelZoo* zoo,
                        const FineTuneSimulator* simulator,
                        const ConvergenceTrendMiner* miner,
                        FineSelectionOptions options = FineSelectionOptions());

  /// Runs the selection over `candidates` (zoo indices, which must also be
  /// valid row indices of the miner's performance matrix). Charges training
  /// epochs to `budget` (may be null).
  ///
  /// When `pool` is non-null, the per-survivor epoch steps (simulated
  /// fine-tune runs) and per-survivor trend predictions run concurrently
  /// on the pool; every task writes an index-addressed slot and the
  /// fine-filter / halving step stays serial, so the outcome and the
  /// budget ledger are bit-identical to the serial run.
  ///
  /// Observability (never affects the result — see
  /// tests/core/metrics_inertness_test.cc): `metrics` receives rung/prune
  /// counters (nullptr -> MetricsRegistry::Default()); when `trace` is
  /// non-null every rung — entrants, each trend-based prune with its
  /// predicted-vs-threshold margin, halving drops, survivors — is appended
  /// to trace->stages.
  /// `cancel` (may be null) is polled at entry, inside the simulator
  /// fan-out, and at the top of every rung; an expired token yields
  /// DeadlineExceeded, never a partial outcome.
  StatusOr<SelectionOutcome> Select(const std::vector<size_t>& candidates,
                                    const Dataset& target,
                                    const Hyperparams& hp,
                                    EpochBudget* budget,
                                    ThreadPool* pool = nullptr,
                                    MetricsRegistry* metrics = nullptr,
                                    SelectionTrace* trace = nullptr,
                                    const CancelToken* cancel = nullptr) const;

  const FineSelectionOptions& options() const { return options_; }

 private:
  const ModelZoo* zoo_;
  const FineTuneSimulator* simulator_;
  const ConvergenceTrendMiner* miner_;
  FineSelectionOptions options_;
};

}  // namespace tps

#endif  // TPS_CORE_FINE_SELECTION_H_
