#ifndef TPS_CORE_SELECTION_TRACE_H_
#define TPS_CORE_SELECTION_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace tps {

/// Structured record of one two-phase selection run, end to end: what
/// phase 1 scored and recalled, what every fine-selection rung did to whom
/// and why, and where the epoch budget went. Filled in by CoarseRecall /
/// FineSelectionSelector / TwoPhaseSelector when a trace pointer is passed
/// (see TwoPhaseOptions::trace); collection is pure observation and never
/// changes the selection result (proved by
/// tests/core/metrics_inertness_test.cc).
///
/// Serializes to JSON (`tps_cli trace`) and parses back losslessly —
/// doubles round-trip bit-exactly — so traces can be archived next to
/// BENCH_*.json telemetry and diffed across commits. Schema documented in
/// DESIGN.md "Observability"; bump kSchemaVersion on breaking changes.

/// One proxy-scored cluster representative in phase 1.
struct TraceProxyScore {
  size_t model_index = 0;
  /// Cluster the representative speaks for.
  int cluster = 0;
  /// Normalized (multi-proxy averaged) score, the Eq. 2 proxy component.
  double norm_score = 0.0;

  bool operator==(const TraceProxyScore&) const = default;
};

/// One entry of the full recall ranking (mirrors RecallEntry).
struct TraceRecallEntry {
  size_t model_index = 0;
  double recall_score = 0.0;
  double prior_accuracy = 0.0;
  double proxy_component = 0.0;
  bool via_propagation = false;

  bool operator==(const TraceRecallEntry&) const = default;
};

/// Phase 1: coarse recall.
struct TraceRecallPhase {
  /// Representatives actually run through the proxy scorer(s), with the
  /// per-cluster scores every member inherits (Eq. 3).
  std::vector<TraceProxyScore> scored;
  /// Full ranking, descending recall score.
  std::vector<TraceRecallEntry> ranked;
  /// Zoo indices handed to phase 2 (the top-k cut).
  std::vector<size_t> recalled;
  size_t proxies_computed = 0;
  /// 0.5 epoch-equivalents per computed proxy.
  double inference_epochs = 0.0;
  double wall_ms = 0.0;

  bool operator==(const TraceRecallPhase&) const = default;
};

/// One trend-based prune in a fine-selection stage: `model_index` was
/// dropped because `pruned_by` had better validation AND a predicted-final
/// lead larger than the threshold margin.
struct TracePrune {
  size_t model_index = 0;
  size_t pruned_by = 0;
  /// Current validation accuracies at this stage.
  double val = 0.0;
  double by_val = 0.0;
  /// Predicted finals (Eqs. 5-6).
  double predicted = 0.0;
  double by_predicted = 0.0;
  /// How far past the bar the prune was:
  /// by_predicted - predicted - threshold * predicted (> 0 by definition).
  double margin = 0.0;

  bool operator==(const TracePrune&) const = default;
};

/// One fine-selection rung (stage = training epoch).
struct TraceStage {
  int stage = 0;
  /// Zoo indices entering the stage (each trains one epoch here).
  std::vector<size_t> entrants;
  double epochs_charged = 0.0;
  /// Trend-based prunes, in the order the fine-filter removed them.
  std::vector<TracePrune> prunes;
  /// Zoo indices cut by the halving backstop (fine-filter kept too many).
  std::vector<size_t> halving_drops;
  /// Zoo indices surviving into the next stage.
  std::vector<size_t> survivors;

  bool operator==(const TraceStage&) const = default;
};

struct SelectionTrace {
  static constexpr int kSchemaVersion = 1;

  std::string target;
  std::string domain;  // "NLP" / "CV" / "" when unknown.
  TraceRecallPhase recall;
  std::vector<TraceStage> stages;
  double fine_wall_ms = 0.0;
  size_t selected_model = 0;
  double selected_accuracy = 0.0;
  /// Per-phase epoch ledger (training is all phase 2; inference all
  /// phase 1).
  double training_epochs = 0.0;
  double total_epochs = 0.0;

  bool operator==(const SelectionTrace&) const = default;

  /// Deterministic JSON (indent < 0 -> compact). Two equal traces dump to
  /// identical bytes.
  std::string ToJson(int indent = 2) const;

  /// Parses a trace previously produced by ToJson. Malformed or truncated
  /// input is an InvalidArgument error, never a crash.
  static StatusOr<SelectionTrace> FromJson(const std::string& text);
};

}  // namespace tps

#endif  // TPS_CORE_SELECTION_TRACE_H_
