#include "core/coarse_recall.h"

#include <algorithm>

#include "clustering/distance.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace tps {

std::vector<size_t> RecallResult::TopModels(size_t k) const {
  std::vector<size_t> top;
  top.reserve(std::min(k, ranked.size()));
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    top.push_back(ranked[i].model_index);
  }
  return top;
}

size_t RecallResult::RankOf(size_t model_index) const {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].model_index == model_index) return i;
  }
  return ranked.size();
}

CoarseRecall::CoarseRecall(const ModelZoo* zoo,
                           const PerformanceMatrix* matrix,
                           const ModelClustering* clustering)
    : zoo_(zoo), matrix_(matrix), clustering_(clustering) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(matrix_ != nullptr);
  TPS_CHECK(clustering_ != nullptr);
}

StatusOr<RecallResult> CoarseRecall::Recall(const Dataset& target,
                                            const RecallOptions& options,
                                            EpochBudget* budget,
                                            ThreadPool* pool,
                                            MetricsRegistry* metrics,
                                            SelectionTrace* trace,
                                            const CancelToken* cancel) const {
  if (metrics == nullptr) metrics = MetricsRegistry::Default();
  TPS_RETURN_NOT_OK(CheckCancel(cancel, "coarse recall entry"));
  WallTimer phase_timer;
  const size_t n = zoo_->size();
  if (n == 0) return Status::FailedPrecondition("empty model zoo");
  if (clustering_->clusters.assignments.size() != n) {
    return Status::FailedPrecondition(
        "clustering does not match the zoo size");
  }
  std::vector<std::unique_ptr<ProxyScorer>> scorers;
  if (options.proxies.empty()) {
    TPS_ASSIGN_OR_RETURN(std::unique_ptr<ProxyScorer> scorer,
                         MakeProxyScorer(options.proxy, options.kernel_mode));
    scorers.push_back(std::move(scorer));
  } else {
    for (const std::string& name : options.proxies) {
      TPS_ASSIGN_OR_RETURN(std::unique_ptr<ProxyScorer> scorer,
                           MakeProxyScorer(name, options.kernel_mode));
      scorers.push_back(std::move(scorer));
    }
  }

  RecallResult result;

  // --- Step 1: compute raw proxy scores for the scored set. ---
  // Index mode: representatives of the partitions the index probes.
  // Legacy default: representatives of non-singleton clusters only.
  // Ablation: every model directly.
  std::vector<size_t> scored_models;
  // Index mode only: the probed scored-partition ids and the partition ->
  // slot map (slot = position in `scored_models`, which is the layout of
  // norm_scores). For a novel target below full probe the budget is spent
  // in two waves — spread pilots first, then partitions routed by the
  // pilots' measured proxies — so `probed` grows once mid-phase.
  std::vector<size_t> probed;
  std::vector<size_t> probed_slot;
  size_t adaptive_budget = 0;  // Wave-2 width; 0 = single-wave probe.
  if (options.index != nullptr) {
    const IndexStructure& s = options.index->structure();
    if (s.num_models() != n) {
      return Status::FailedPrecondition(
          "recall index does not match the zoo size");
    }
    // When the target is one of the benchmark columns the artifacts were
    // built over, tell the index which one: the backend can then route
    // the probe by recorded performance on the target instead of the
    // static prior-only priority. Name lookup over the dataset axis is
    // O(#benchmarks), independent of the zoo size.
    size_t target_dim = IndexStructure::kNoSlot;
    const std::vector<std::string>& dataset_names = matrix_->dataset_names();
    for (size_t j = 0; j < dataset_names.size(); ++j) {
      if (dataset_names[j] == target.name()) {
        target_dim = j;
        break;
      }
    }
    probed = options.index->ProbePartitions(options.nprobe, target_dim);
    // Novel target, partial probe: no stored column predicts the proxy
    // scores, so probing everything the static prior-priority picks risks
    // missing a target specialist. Split the same budget instead: half on
    // pilots spread across performance space (wave 1), half routed by the
    // pilots' measured proxies after they are scored (wave 2, below).
    if (target_dim == IndexStructure::kNoSlot && probed.size() >= 2 &&
        probed.size() < s.scored_partitions.size()) {
      const size_t take = probed.size();
      const size_t pilots = std::max<size_t>(1, take / 2);
      adaptive_budget = take - pilots;
      probed = PilotPartitions(s, pilots);
    }
    probed_slot.assign(s.num_partitions(), IndexStructure::kNoSlot);
    for (size_t i = 0; i < probed.size(); ++i) {
      probed_slot[probed[i]] = i;
      scored_models.push_back(s.representatives[probed[i]]);
    }
  } else if (options.use_cluster_representatives) {
    for (int c : clustering_->NonSingletonClusters()) {
      scored_models.push_back(
          clustering_->representatives[static_cast<size_t>(c)]);
    }
    // Degenerate case (every cluster singleton): fall back to scoring all
    // representatives so recall still works.
    if (scored_models.empty()) {
      for (size_t rep : clustering_->representatives) {
        scored_models.push_back(rep);
      }
    }
  } else {
    for (size_t m = 0; m < n; ++m) scored_models.push_back(m);
  }

  // Each proxy's raw scores are min-max normalized across the scored set,
  // then averaged (a single proxy degenerates to the paper's Eq. 2). All
  // proxies share one forward pass, so inference is charged once per
  // scored model. Each representative's forward pass is independent, so
  // they fan out over the pool into index-addressed slots; normalization
  // and averaging reduce the slots serially in model-index order.
  // The fingerprint half of the flight/cache key is shared by every scored
  // model, so it is hashed once per recall, not once per proxy.
  // Raw scores accumulate per wave (one wave everywhere except the
  // adaptive probe); normalization always runs once, over the final set.
  const uint64_t target_fingerprint =
      options.flight_group != nullptr ? DatasetFingerprint(target) : 0;
  std::vector<std::vector<double>> raw_per_scorer(scorers.size());
  auto score_wave = [&](const std::vector<size_t>& wave) -> Status {
    for (size_t si = 0; si < scorers.size(); ++si) {
      const std::unique_ptr<ProxyScorer>& scorer = scorers[si];
      std::vector<double> raw_scores(wave.size(), 0.0);
      if (pool == nullptr && options.score_cache == nullptr &&
          options.flight_group == nullptr) {
        // Serial uncached path: one ScoreBatch call shares the per-target
        // setup (label extraction, scratch) across every scored model. The
        // per-model cancellation checks still run — up front, so the check
        // count matches the per-model loop and no partial scoring precedes
        // a trip either way.
        for (size_t i = 0; i < wave.size(); ++i) {
          TPS_RETURN_NOT_OK(CheckCancel(cancel, "proxy fan-out"));
        }
        std::vector<const PretrainedModel*> models;
        models.reserve(wave.size());
        for (size_t m : wave) models.push_back(&zoo_->model(m));
        TPS_ASSIGN_OR_RETURN(raw_scores, scorer->ScoreBatch(models, target));
      } else {
        TPS_RETURN_NOT_OK(StatusParallelFor(
            pool, wave.size(), [&](size_t i) -> Status {
              TPS_RETURN_NOT_OK(CheckCancel(cancel, "proxy fan-out"));
              const PretrainedModel& model = zoo_->model(wave[i]);
              if (options.flight_group != nullptr) {
                ProxyCacheKey key;
                key.dataset_fingerprint = target_fingerprint;
                key.model = model.name();
                key.scorer = scorer->name();
                key.artifact_epoch = options.artifact_epoch;
                TPS_ASSIGN_OR_RETURN(
                    raw_scores[i],
                    options.flight_group->GetOrCompute(
                        options.score_cache, key,
                        /*poll_cancel=*/
                        [&]() {
                          return CheckCancel(cancel, "proxy flight wait");
                        },
                        /*compute=*/
                        [&]() { return scorer->Score(model, target); }));
              } else if (options.score_cache != nullptr) {
                TPS_ASSIGN_OR_RETURN(
                    raw_scores[i],
                    options.score_cache->GetOrCompute(*scorer, model, target,
                                                      options.artifact_epoch));
              } else {
                TPS_ASSIGN_OR_RETURN(raw_scores[i],
                                     scorer->Score(model, target));
              }
              return Status::OK();
            }));
      }
      raw_per_scorer[si].insert(raw_per_scorer[si].end(), raw_scores.begin(),
                                raw_scores.end());
    }
    return Status::OK();
  };
  // The scorer-averaged min-max normalization of the raw scores so far —
  // the final combination rule, reused mid-phase on the pilot wave to
  // route wave 2.
  auto combined_norm_scores = [&]() {
    std::vector<double> combined(raw_per_scorer[0].size(), 0.0);
    for (size_t si = 0; si < scorers.size(); ++si) {
      const std::vector<double> normalized =
          MinMaxNormalize(raw_per_scorer[si]);
      for (size_t i = 0; i < combined.size(); ++i) {
        combined[i] +=
            normalized[i] / static_cast<double>(scorers.size());
      }
    }
    return combined;
  };
  TPS_RETURN_NOT_OK(score_wave(scored_models));

  if (adaptive_budget > 0) {
    // Wave 2 of the adaptive probe: rank the unprobed scored partitions
    // by representative prior x similarity-weighted pilot proxies, spend
    // the rest of the budget there, and score those representatives too.
    const IndexStructure& s = options.index->structure();
    const std::vector<size_t> routed =
        RouteByPilotScores(s, probed, combined_norm_scores(),
                           adaptive_budget);
    std::vector<size_t> wave;
    wave.reserve(routed.size());
    for (size_t p : routed) {
      probed_slot[p] = scored_models.size();
      scored_models.push_back(s.representatives[p]);
      wave.push_back(s.representatives[p]);
    }
    probed.insert(probed.end(), routed.begin(), routed.end());
    TPS_RETURN_NOT_OK(score_wave(wave));
  }

  const std::vector<double> norm_scores = combined_norm_scores();
  for (size_t i = 0; i < scored_models.size(); ++i) {
    if (budget != nullptr) budget->ChargeProxyInference();
    ++result.proxies_computed;
  }

  if (options.index != nullptr) {
    // --- Step 2, index mode: rank the probed posting lists (Eq. 3) plus
    // the propagation-only partitions (Eq. 4 over the precomputed
    // neighbor lists), reading only the index structure. The candidate
    // set is the probed members + every propagation-only member — at
    // full probe that is the whole zoo and the result is bit-identical
    // to the legacy sweep below (tests/index/index_equivalence_test.cc);
    // below full probe the unprobed scored partitions are skipped
    // entirely, which is where the sub-linear latency comes from.
    // [indexed-recall-begin] — tools/check_no_linear_recall.sh forbids
    // zoo_/matrix_/clustering_ access in this section: the online path
    // must stay on the index structure.
    const IndexStructure& s = options.index->structure();
    TPS_RETURN_NOT_OK(CheckCancel(cancel, "recall scoring"));
    std::vector<size_t> candidates;
    for (size_t p : probed) {
      candidates.insert(candidates.end(), s.members[p].begin(),
                        s.members[p].end());
    }
    for (size_t p = 0; p < s.num_partitions(); ++p) {
      if (s.slot_of_partition[p] != IndexStructure::kNoSlot) continue;
      candidates.insert(candidates.end(), s.members[p].begin(),
                        s.members[p].end());
    }
    // Ascending model order: the fan-out slots and the stable_sort then
    // see the same array a serial run (or the legacy full sweep, at full
    // probe) would.
    std::sort(candidates.begin(), candidates.end());
    result.ranked.resize(candidates.size());
    TPS_RETURN_NOT_OK(StatusParallelFor(
        pool, candidates.size(), [&](size_t i) -> Status {
          const size_t m = candidates[i];
          RecallEntry entry;
          entry.model_index = m;
          entry.prior_accuracy = s.prior[m];
          const size_t partition =
              static_cast<size_t>(s.assignments[m]);
          const size_t slot = probed_slot[partition];
          if (slot != IndexStructure::kNoSlot) {
            // Eq. 3: member of a probed partition inherits its
            // representative's normalized proxy.
            entry.proxy_component = norm_scores[slot];
          } else {
            // Eq. 4: similarity-decayed propagation, restricted to the
            // partition's precomputed neighbor slots (ascending, so the
            // accumulation order matches the exact sweep when the list
            // is full). Neighbors that were not probed this query
            // contribute nothing.
            entry.via_propagation = true;
            const std::vector<double>& my_vec = s.vectors[m];
            std::vector<double> scratch;
            double accum = 0.0;
            size_t count = 0;
            for (size_t g : s.neighbors[partition]) {
              const size_t neighbor_slot =
                  probed_slot[s.scored_partitions[g]];
              if (neighbor_slot == IndexStructure::kNoSlot) continue;
              const double sim = PerformanceSimilarity(
                  my_vec.data(),
                  s.vectors[s.scored_models[g]].data(), my_vec.size(),
                  s.similarity_top_k, scratch);
              accum += sim * norm_scores[neighbor_slot];
              ++count;
            }
            entry.proxy_component =
                count == 0 ? 0.0 : accum / static_cast<double>(count);
          }
          entry.recall_score =
              options.use_accuracy_prior
                  ? entry.prior_accuracy * entry.proxy_component
                  : entry.proxy_component;
          result.ranked[i] = entry;
          return Status::OK();
        }));
    // [indexed-recall-end]
  } else {
    // Index from scored model -> normalized proxy value.
    std::vector<double> proxy_of_model(n, -1.0);
    for (size_t i = 0; i < scored_models.size(); ++i) {
      proxy_of_model[scored_models[i]] = norm_scores[i];
    }
    // Proxy by cluster id (for members inheriting their representative's
    // score).
    std::vector<double> proxy_of_cluster(
        static_cast<size_t>(clustering_->clusters.num_clusters), -1.0);
    for (int c = 0; c < clustering_->clusters.num_clusters; ++c) {
      const size_t rep =
          clustering_->representatives[static_cast<size_t>(c)];
      if (proxy_of_model[rep] >= 0.0) {
        proxy_of_cluster[static_cast<size_t>(c)] = proxy_of_model[rep];
      }
    }

    // --- Step 2, legacy mode: recall score per model (Eqs. 2-4). ---
    // Each model's score depends only on its own row, so the per-model
    // entries fan out over the pool into index-addressed slots; the
    // stable_sort below then sees the same array as the serial run and
    // breaks ties identically.
    TPS_RETURN_NOT_OK(CheckCancel(cancel, "recall scoring"));
    // Eq. 4 compares every unscored model against the same representative
    // vectors, so those rows are materialized once here instead of once
    // per (model, representative) pair inside the fan-out.
    bool needs_propagation = false;
    for (double p : proxy_of_cluster) {
      if (p < 0.0) {
        needs_propagation = true;
        break;
      }
    }
    std::vector<std::vector<double>> rep_vectors;
    if (needs_propagation) {
      rep_vectors.reserve(scored_models.size());
      for (size_t m : scored_models) {
        rep_vectors.push_back(matrix_->ModelVector(m));
      }
    }
    result.ranked.resize(n);
    TPS_RETURN_NOT_OK(StatusParallelFor(pool, n, [&](size_t m) -> Status {
      RecallEntry entry;
      entry.model_index = m;
      entry.prior_accuracy = matrix_->ModelAverageAccuracy(m);
      const int cluster = clustering_->ClusterOf(m);
      const double cluster_proxy =
          proxy_of_cluster[static_cast<size_t>(cluster)];
      if (cluster_proxy >= 0.0) {
        // Eq. 3: member of a scored cluster inherits the representative's
        // normalized proxy.
        entry.proxy_component = cluster_proxy;
      } else {
        // Eq. 4: similarity-decayed propagation from the scored
        // representatives, batched against the hoisted rows with one
        // |a-b| scratch buffer per model instead of per pair.
        entry.via_propagation = true;
        const std::vector<double> my_vec = matrix_->ModelVector(m);
        std::vector<double> scratch;
        double accum = 0.0;
        size_t count = 0;
        for (size_t i = 0; i < rep_vectors.size(); ++i) {
          const double sim = PerformanceSimilarity(
              my_vec.data(), rep_vectors[i].data(), my_vec.size(),
              clustering_->options.top_k, scratch);
          accum += sim * norm_scores[i];
          ++count;
        }
        entry.proxy_component =
            count == 0 ? 0.0 : accum / static_cast<double>(count);
      }
      entry.recall_score = options.use_accuracy_prior
                               ? entry.prior_accuracy * entry.proxy_component
                               : entry.proxy_component;
      result.ranked[m] = entry;
      return Status::OK();
    }));
  }

  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const RecallEntry& a, const RecallEntry& b) {
                     return a.recall_score > b.recall_score;
                   });

  // --- Observability (pure recording; the result above is final). ---
  const double wall_ms = phase_timer.ElapsedMillis();
  metrics->counter("recall.runs").Increment();
  metrics->counter("recall.proxies_computed")
      .Increment(result.proxies_computed);
  metrics->counter("recall.models_ranked").Increment(result.ranked.size());
  metrics->histogram("recall.wall_us").Record(wall_ms * 1e3);
  if (trace != nullptr) {
    trace->recall.scored.clear();
    for (size_t i = 0; i < scored_models.size(); ++i) {
      TraceProxyScore score;
      score.model_index = scored_models[i];
      score.cluster =
          options.index != nullptr
              ? options.index->structure().assignments[scored_models[i]]
              : clustering_->ClusterOf(scored_models[i]);
      score.norm_score = norm_scores[i];
      trace->recall.scored.push_back(score);
    }
    trace->recall.ranked.clear();
    for (const RecallEntry& entry : result.ranked) {
      trace->recall.ranked.push_back(
          TraceRecallEntry{entry.model_index, entry.recall_score,
                           entry.prior_accuracy, entry.proxy_component,
                           entry.via_propagation});
    }
    trace->recall.recalled = result.TopModels(options.top_k_models);
    trace->recall.proxies_computed = result.proxies_computed;
    trace->recall.inference_epochs =
        0.5 * static_cast<double>(result.proxies_computed);
    trace->recall.wall_ms = wall_ms;
  }
  return result;
}

}  // namespace tps
