#ifndef TPS_CORE_CANCELLATION_H_
#define TPS_CORE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace tps {

/// Cooperative cancellation + deadline token for the online selection
/// pipeline ("Serving" in DESIGN.md).
///
/// A token is armed with an explicit Cancel(), a wall-clock deadline, or
/// (tests only) a trip-after-N-checks countdown; pipeline code polls it at
/// phase and rung boundaries via Check(). Once a Check() observes the
/// token as expired the pipeline returns a DeadlineExceeded Status and the
/// caller never sees a partial result — cancellation is all-or-nothing by
/// construction, because results only escape through the StatusOr return
/// path.
///
/// Thread safety: all members are atomics; one token may be polled
/// concurrently from every pool thread of a fan-out while another thread
/// cancels it. Latching: the first expired observation (deadline passed or
/// countdown hit zero) latches `cancelled_`, so later Check() calls agree
/// even if the clock is never consulted again.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Marks the token cancelled. Idempotent; callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute steady-clock deadline. A non-positive duration from
  /// now means "already expired".
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_relaxed);
  }

  /// Arms a deadline `ms` milliseconds from now.
  void SetDeadlineAfterMillis(double ms) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(static_cast<int64_t>(ms * 1e6)));
  }

  /// Test hook: the token trips on the (n+1)-th Check() call (n = 0 trips
  /// the first check). Deterministic — lets tests cancel at every
  /// cooperative checkpoint of a pipeline run without racing a clock.
  void CancelAfterChecks(int64_t n) {
    checks_left_.store(n, std::memory_order_relaxed);
    has_countdown_.store(true, std::memory_order_relaxed);
  }

  /// True once the token has been cancelled, its deadline has passed, or
  /// its check countdown has hit zero. Does not consume a countdown tick.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_.load(std::memory_order_relaxed) &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline_ns_.load(std::memory_order_relaxed)) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Cooperative checkpoint: OK while live, DeadlineExceeded (tagged with
  /// `where`) once expired. Pipeline code calls this at phase entry and at
  /// every rung/fan-out boundary.
  Status Check(const char* where) const;

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<bool> has_countdown_{false};
  mutable std::atomic<int64_t> checks_left_{0};
};

/// Null-safe helper: OK when `token` is null, token->Check(where)
/// otherwise. Lets pipeline code thread an optional token without
/// branching at every call site.
inline Status CheckCancel(const CancelToken* token, const char* where) {
  return token == nullptr ? Status::OK() : token->Check(where);
}

}  // namespace tps

#endif  // TPS_CORE_CANCELLATION_H_
