#include "core/performance_matrix.h"

#include <fstream>
#include <iterator>
#include <sstream>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tps {

StatusOr<PerformanceMatrix> PerformanceMatrix::Build(
    const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
    const FineTuneSimulator& simulator, const Hyperparams& hp) {
  // The serial reference path: BuildOnPool without a pool walks the flat
  // (dataset, model) index space in order.
  return BuildOnPool(zoo, benchmarks, simulator, hp, nullptr);
}

StatusOr<PerformanceMatrix> PerformanceMatrix::BuildParallel(
    const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
    const FineTuneSimulator& simulator, const Hyperparams& hp,
    int num_threads) {
  if (num_threads < 1) {
    return Status::InvalidArgument("BuildParallel needs num_threads >= 1");
  }
  if (num_threads == 1) return Build(zoo, benchmarks, simulator, hp);
  // Input errors (empty zoo / empty or null benchmarks) are diagnosed by
  // BuildOnPool before any work is scheduled, so the clamp below never
  // sees a zero-item grid from valid inputs.
  const size_t total = benchmarks.size() * zoo.size();
  ThreadPool pool(ThreadPool::ClampThreads(num_threads, total));
  return BuildOnPool(zoo, benchmarks, simulator, hp, &pool);
}

StatusOr<PerformanceMatrix> PerformanceMatrix::BuildOnPool(
    const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
    const FineTuneSimulator& simulator, const Hyperparams& hp,
    ThreadPool* pool) {
  if (zoo.size() == 0) {
    return Status::InvalidArgument("PerformanceMatrix needs >= 1 model");
  }
  if (benchmarks.empty()) {
    return Status::InvalidArgument(
        "PerformanceMatrix needs >= 1 benchmark dataset");
  }
  for (const Dataset* ds : benchmarks) {
    if (ds == nullptr) {
      return Status::InvalidArgument("null benchmark dataset");
    }
  }

  WallTimer build_timer;
  PerformanceMatrix pm;
  for (const PretrainedModel& model : zoo.models()) {
    pm.model_names_.push_back(model.name());
  }
  for (const Dataset* ds : benchmarks) pm.dataset_names_.push_back(ds->name());
  const size_t num_models = zoo.size();
  const size_t total = benchmarks.size() * num_models;
  pm.accuracy_ = Matrix(benchmarks.size(), num_models);
  pm.runs_.resize(total);

  // Fan out over the flat (dataset, model) index space; each cell is an
  // index-addressed slot written by exactly one task, so the matrix is
  // bit-identical to the serial Build for any pool size.
  TPS_RETURN_NOT_OK(StatusParallelFor(pool, total, [&](size_t index)
                                          -> Status {
    const size_t di = index / num_models;
    const size_t mi = index % num_models;
    TPS_ASSIGN_OR_RETURN(TrainingRun run,
                         simulator.Run(zoo.model(mi), *benchmarks[di], hp));
    pm.accuracy_.At(di, mi) = run.final_test();
    pm.runs_[index] = std::move(run);
    return Status::OK();
  }));
  MetricsRegistry& metrics = *MetricsRegistry::Default();
  metrics.counter("matrix.builds").Increment();
  metrics.counter("matrix.cells_built").Increment(total);
  metrics.histogram("matrix.build_wall_us")
      .Record(build_timer.ElapsedMillis() * 1e3);
  return pm;
}

std::vector<double> PerformanceMatrix::ModelVector(size_t model_index) const {
  TPS_CHECK(model_index < num_models());
  return accuracy_.Col(model_index);
}

double PerformanceMatrix::ModelAverageAccuracy(size_t model_index) const {
  const std::vector<double> vec = ModelVector(model_index);
  double sum = 0.0;
  for (double v : vec) sum += v;
  return vec.empty() ? 0.0 : sum / static_cast<double>(vec.size());
}

std::vector<std::vector<double>> PerformanceMatrix::ModelVectors() const {
  std::vector<std::vector<double>> vectors;
  vectors.reserve(num_models());
  for (size_t m = 0; m < num_models(); ++m) {
    vectors.push_back(ModelVector(m));
  }
  return vectors;
}

std::vector<double> PerformanceMatrix::ModelAverageAccuracies() const {
  std::vector<double> priors;
  priors.reserve(num_models());
  for (size_t m = 0; m < num_models(); ++m) {
    priors.push_back(ModelAverageAccuracy(m));
  }
  return priors;
}

const TrainingRun& PerformanceMatrix::run(size_t dataset_index,
                                          size_t model_index) const {
  TPS_CHECK(dataset_index < num_datasets());
  TPS_CHECK(model_index < num_models());
  return runs_[dataset_index * num_models() + model_index];
}

double PerformanceMatrix::ValAtStage(size_t dataset_index, size_t model_index,
                                     int stage) const {
  const TrainingRun& r = run(dataset_index, model_index);
  TPS_CHECK(!r.val_accuracy.empty());
  const int last = static_cast<int>(r.val_accuracy.size()) - 1;
  const int s = stage < 0 ? 0 : (stage > last ? last : stage);
  return r.val_accuracy[static_cast<size_t>(s)];
}

std::string PerformanceMatrix::Serialize() const {
  std::ostringstream out;
  out << "tps-performance-matrix v1\n";
  out << num_datasets() << " " << num_models() << "\n";
  for (const std::string& name : dataset_names_) out << name << "\n";
  for (const std::string& name : model_names_) out << name << "\n";
  out.precision(17);
  for (size_t di = 0; di < num_datasets(); ++di) {
    for (size_t mi = 0; mi < num_models(); ++mi) {
      const TrainingRun& r = run(di, mi);
      out << di << " " << mi << " " << r.epochs();
      for (double v : r.val_accuracy) out << " " << v;
      for (double v : r.test_accuracy) out << " " << v;
      out << "\n";
    }
  }
  return out.str();
}

Status PerformanceMatrix::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << Serialize();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<PerformanceMatrix> PerformanceMatrix::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-performance-matrix v1") {
    return Status::InvalidArgument("bad performance-matrix header");
  }
  size_t num_datasets = 0, num_models = 0;
  in >> num_datasets >> num_models;
  in.ignore();  // Trailing newline.
  if (!in || num_datasets == 0 || num_models == 0) {
    return Status::InvalidArgument("bad performance-matrix dimensions");
  }

  PerformanceMatrix pm;
  pm.dataset_names_.resize(num_datasets);
  for (std::string& name : pm.dataset_names_) {
    if (!std::getline(in, name) || name.empty()) {
      return Status::InvalidArgument("truncated dataset names");
    }
  }
  pm.model_names_.resize(num_models);
  for (std::string& name : pm.model_names_) {
    if (!std::getline(in, name) || name.empty()) {
      return Status::InvalidArgument("truncated model names");
    }
  }

  pm.accuracy_ = Matrix(num_datasets, num_models);
  pm.runs_.resize(num_datasets * num_models);
  for (size_t entry = 0; entry < num_datasets * num_models; ++entry) {
    size_t di = 0, mi = 0;
    int epochs = 0;
    if (!(in >> di >> mi >> epochs) || di >= num_datasets ||
        mi >= num_models || epochs < 1) {
      return Status::InvalidArgument("truncated run record");
    }
    TrainingRun run;
    run.dataset_name = pm.dataset_names_[di];
    run.model_name = pm.model_names_[mi];
    run.val_accuracy.resize(static_cast<size_t>(epochs));
    run.test_accuracy.resize(static_cast<size_t>(epochs));
    for (double& v : run.val_accuracy) in >> v;
    for (double& v : run.test_accuracy) in >> v;
    if (!in) return Status::InvalidArgument("truncated curves");
    pm.accuracy_.At(di, mi) = run.final_test();
    pm.runs_[di * num_models + mi] = std::move(run);
  }
  return pm;
}

StatusOr<PerformanceMatrix> PerformanceMatrix::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto result = Deserialize(text);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " in " + path);
  }
  return result;
}

}  // namespace tps
