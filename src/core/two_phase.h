#ifndef TPS_CORE_TWO_PHASE_H_
#define TPS_CORE_TWO_PHASE_H_

#include "core/cancellation.h"
#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "core/selection.h"
#include "core/selection_trace.h"
#include "data/dataset.h"
#include "model/zoo.h"
#include "sim/epoch_budget.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/metrics.h"
#include "util/statusor.h"

namespace tps {

struct TwoPhaseOptions {
  RecallOptions recall;
  FineSelectionOptions fine_selection;
  TrendMinerOptions trends;
  /// Worker threads for the online pipeline. 1 (the default) runs fully
  /// serial; > 1 fans the proxy forward passes and per-survivor epoch
  /// steps over one shared ThreadPool. Output is bit-identical for every
  /// value (see "Threading model" in DESIGN.md). Values < 1 are an error.
  int num_threads = 1;
  /// Observability sinks ("Observability" in DESIGN.md). Neither affects
  /// the selection result in any way — tests/core/metrics_inertness_test.cc
  /// proves the report is bit-identical with them on, off, or disabled.
  ///
  /// Metrics sink for both phases. nullptr (the default) reports to
  /// MetricsRegistry::Default(); pass a registry constructed with
  /// enabled=false to make every recording a no-op.
  MetricsRegistry* metrics = nullptr;
  /// When non-null, one full SelectionTrace (recall scores, recalled set,
  /// per-rung survivors and prunes, epoch totals) is recorded into it per
  /// Select call. The trace is cleared first, so it can be reused.
  SelectionTrace* trace = nullptr;
  /// Cooperative cancellation / deadline token ("Serving" in DESIGN.md).
  /// Both phases poll it at phase entry, before every proxy/simulator
  /// fan-out, and at each fine-selection rung; once it expires Select
  /// returns a DeadlineExceeded Status and no partial result. nullptr (the
  /// default) never cancels.
  const CancelToken* cancel = nullptr;
};

/// End-to-end report: who was recalled, who won, and what it cost.
struct TwoPhaseReport {
  RecallResult recall;
  SelectionOutcome selection;
  /// Full cost ledger: training epochs + 0.5-epoch proxy inferences.
  EpochBudget budget;
};

/// The complete framework: offline artifacts (performance matrix + model
/// clustering) wired to the online coarse-recall -> fine-selection
/// pipeline.
///
///   TwoPhaseSelector selector(&zoo, &matrix, &clustering, &simulator);
///   TPS_ASSIGN_OR_RETURN(TwoPhaseReport report,
///                        selector.Select(target, options));
///
/// All pointers must outlive the selector.
class TwoPhaseSelector {
 public:
  TwoPhaseSelector(const ModelZoo* zoo, const PerformanceMatrix* matrix,
                   const ModelClustering* clustering,
                   const FineTuneSimulator* simulator);

  /// Runs both phases on `target` with per-domain default hyperparameters
  /// (5 epochs NLP / 4 epochs CV, lr 3e-5).
  StatusOr<TwoPhaseReport> Select(const Dataset& target,
                                  const TwoPhaseOptions& options) const;

  /// As above with explicit hyperparameters. When options.num_threads > 1
  /// a pool of that size is created for the call and shared by both
  /// phases.
  StatusOr<TwoPhaseReport> Select(const Dataset& target,
                                  const TwoPhaseOptions& options,
                                  const Hyperparams& hp) const;

  /// As above on a caller-owned pool (shared across Select calls, e.g. by
  /// a server handling many targets). `pool` may be null for serial;
  /// options.num_threads is ignored on this overload.
  StatusOr<TwoPhaseReport> Select(const Dataset& target,
                                  const TwoPhaseOptions& options,
                                  const Hyperparams& hp,
                                  ThreadPool* pool) const;

 private:
  const ModelZoo* zoo_;
  const PerformanceMatrix* matrix_;
  const ModelClustering* clustering_;
  const FineTuneSimulator* simulator_;
};

}  // namespace tps

#endif  // TPS_CORE_TWO_PHASE_H_
