#include "core/fine_selection.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace tps {

FineSelectionSelector::FineSelectionSelector(
    const ModelZoo* zoo, const FineTuneSimulator* simulator,
    const ConvergenceTrendMiner* miner, FineSelectionOptions options)
    : zoo_(zoo), simulator_(simulator), miner_(miner), options_(options) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(simulator_ != nullptr);
  TPS_CHECK(miner_ != nullptr);
  TPS_CHECK(options_.threshold >= 0.0);
}

StatusOr<SelectionOutcome> FineSelectionSelector::Select(
    const std::vector<size_t>& candidates, const Dataset& target,
    const Hyperparams& hp, EpochBudget* budget, ThreadPool* pool,
    MetricsRegistry* metrics, SelectionTrace* trace,
    const CancelToken* cancel) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("fine-selection needs >= 1 candidate");
  }
  for (size_t index : candidates) {
    if (index >= zoo_->size()) {
      return Status::OutOfRange("candidate index out of range");
    }
  }
  if (metrics == nullptr) metrics = MetricsRegistry::Default();
  TPS_RETURN_NOT_OK(CheckCancel(cancel, "fine selection entry"));
  WallTimer phase_timer;

  // Deterministic full curves; prefixes are consumed stage by stage. Each
  // candidate's run is an independent simulated fine-tune, so they fan out
  // over the pool into index-addressed slots.
  std::vector<TrainingRun> runs(candidates.size());
  TPS_RETURN_NOT_OK(StatusParallelFor(
      pool, candidates.size(), [&](size_t i) -> Status {
        TPS_RETURN_NOT_OK(CheckCancel(cancel, "simulator fan-out"));
        TPS_ASSIGN_OR_RETURN(
            runs[i], simulator_->Run(zoo_->model(candidates[i]), target, hp));
        return Status::OK();
      }));

  SelectionOutcome outcome;
  std::vector<size_t> remaining(candidates.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
  // Positions into `candidates` -> zoo indices, for the trace.
  const auto zoo_indices = [&](const std::vector<size_t>& positions) {
    std::vector<size_t> indices;
    indices.reserve(positions.size());
    for (size_t pos : positions) indices.push_back(candidates[pos]);
    return indices;
  };

  for (int stage = 0; stage < hp.epochs; ++stage) {
    TPS_RETURN_NOT_OK(CheckCancel(cancel, "fine selection rung"));
    TraceStage stage_trace;
    stage_trace.stage = stage;
    if (trace != nullptr) stage_trace.entrants = zoo_indices(remaining);
    stage_trace.epochs_charged = static_cast<double>(remaining.size());

    outcome.survivors_per_stage.push_back(remaining.size());
    outcome.training_epochs += static_cast<double>(remaining.size());
    if (budget != nullptr) {
      budget->ChargeTraining(static_cast<double>(remaining.size()));
    }
    metrics->counter("fine.stages").Increment();
    metrics->counter("fine.epoch_steps").Increment(remaining.size());
    if (remaining.size() <= 1) {
      if (trace != nullptr) {
        stage_trace.survivors = zoo_indices(remaining);
        trace->stages.push_back(std::move(stage_trace));
      }
      continue;
    }

    const auto val_at_stage = [&](size_t pos) {
      return runs[pos].val_accuracy[static_cast<size_t>(stage)];
    };

    // Predict each survivor's final accuracy from its convergence trends
    // (Eqs. 5-6). Trends are mined per model at the current stage; each
    // survivor is independent, so predictions fan out over the pool. The
    // fine-filter below reads the slots serially.
    std::vector<double> predictions(remaining.size());
    TPS_RETURN_NOT_OK(StatusParallelFor(
        pool, remaining.size(), [&](size_t r) -> Status {
          const size_t pos = remaining[r];
          TPS_ASSIGN_OR_RETURN(std::vector<ConvergenceTrend> trends,
                               miner_->MineTrends(candidates[pos], stage));
          if (trends.empty()) {
            return Status::Internal("trend mining produced no trends");
          }
          predictions[r] =
              ConvergenceTrendMiner::PredictFinal(trends, val_at_stage(pos));
          return Status::OK();
        }));

    // Fine-filter: examine survivors from worst validation upward; drop a
    // model when some better-validating survivor also predicts better by
    // the threshold margin.
    std::vector<size_t> order(remaining.size());  // Positions into remaining.
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return val_at_stage(remaining[a]) < val_at_stage(remaining[b]);
    });
    std::vector<bool> removed(remaining.size(), false);
    for (size_t oi = 0; oi < order.size(); ++oi) {
      const size_t j = order[oi];
      for (size_t ok = oi + 1; ok < order.size(); ++ok) {
        const size_t i = order[ok];
        if (removed[i]) continue;
        const bool better_val =
            val_at_stage(remaining[i]) > val_at_stage(remaining[j]);
        const bool better_pred =
            predictions[i] - predictions[j] >
            options_.threshold * predictions[j];
        if (better_val && better_pred) {
          removed[j] = true;
          if (trace != nullptr) {
            TracePrune prune;
            prune.model_index = candidates[remaining[j]];
            prune.pruned_by = candidates[remaining[i]];
            prune.val = val_at_stage(remaining[j]);
            prune.by_val = val_at_stage(remaining[i]);
            prune.predicted = predictions[j];
            prune.by_predicted = predictions[i];
            prune.margin = predictions[i] - predictions[j] -
                           options_.threshold * predictions[j];
            stage_trace.prunes.push_back(prune);
          }
          break;
        }
      }
    }
    std::vector<size_t> survivors;
    for (size_t r = 0; r < remaining.size(); ++r) {
      if (!removed[r]) survivors.push_back(remaining[r]);
    }
    TPS_CHECK(!survivors.empty());  // The best-val model is never removed.
    metrics->counter("fine.trend_prunes")
        .Increment(remaining.size() - survivors.size());

    // Halving backstop: ensure at least half the stage's pool is gone.
    const size_t keep = std::max<size_t>(1, remaining.size() / 2);
    if (survivors.size() > keep) {
      std::stable_sort(survivors.begin(), survivors.end(),
                       [&](size_t a, size_t b) {
                         return val_at_stage(a) > val_at_stage(b);
                       });
      if (trace != nullptr) {
        stage_trace.halving_drops = zoo_indices(std::vector<size_t>(
            survivors.begin() + static_cast<ptrdiff_t>(keep),
            survivors.end()));
      }
      metrics->counter("fine.halving_drops")
          .Increment(survivors.size() - keep);
      survivors.resize(keep);
    }
    remaining = std::move(survivors);
    if (trace != nullptr) {
      stage_trace.survivors = zoo_indices(remaining);
      trace->stages.push_back(std::move(stage_trace));
    }
  }

  size_t best = remaining[0];
  for (size_t pos : remaining) {
    if (runs[pos].val_accuracy.back() > runs[best].val_accuracy.back()) {
      best = pos;
    }
  }
  outcome.selected_model = candidates[best];
  outcome.selected_accuracy = runs[best].final_test();

  const double wall_ms = phase_timer.ElapsedMillis();
  metrics->counter("fine.runs").Increment();
  metrics->histogram("fine.wall_us").Record(wall_ms * 1e3);
  if (trace != nullptr) {
    trace->fine_wall_ms = wall_ms;
    trace->selected_model = outcome.selected_model;
    trace->selected_accuracy = outcome.selected_accuracy;
    trace->training_epochs = outcome.training_epochs;
  }
  return outcome;
}

}  // namespace tps
