#include "core/report.h"

#include <sstream>

#include "util/string_util.h"

namespace tps {

std::string RenderSelectionReport(const TwoPhaseReport& report,
                                  const ModelZoo& zoo, const Dataset& target,
                                  size_t recall_rows) {
  std::ostringstream os;
  os << "# Two-phase selection report\n\n";
  os << "**Target**: `" << target.name() << "` ("
     << ToString(target.spec().domain) << ", "
     << target.spec().num_labels << " labels, difficulty "
     << strings::FormatDouble(target.spec().difficulty, 2) << ")\n\n";

  os << "## Phase 1 — coarse recall\n\n";
  os << report.recall.proxies_computed
     << " proxy score(s) computed on cluster representatives ("
     << strings::FormatDouble(report.budget.inference_epochs(), 1)
     << " epoch-equivalents).\n\n";
  os << "| rank | model | recall score | prior acc | proxy | propagated |\n";
  os << "|---|---|---|---|---|---|\n";
  for (size_t r = 0; r < recall_rows && r < report.recall.ranked.size();
       ++r) {
    const RecallEntry& entry = report.recall.ranked[r];
    os << "| " << r << " | `" << zoo.model(entry.model_index).name()
       << "` | " << strings::FormatDouble(entry.recall_score, 4) << " | "
       << strings::FormatDouble(entry.prior_accuracy, 4) << " | "
       << strings::FormatDouble(entry.proxy_component, 4) << " | "
       << (entry.via_propagation ? "yes" : "no") << " |\n";
  }

  os << "\n## Phase 2 — fine selection\n\n";
  os << "Survivors per training epoch:";
  for (size_t n : report.selection.survivors_per_stage) os << " " << n;
  os << "\n\n**Selected**: `"
     << zoo.model(report.selection.selected_model).name()
     << "` with final test accuracy "
     << strings::FormatDouble(report.selection.selected_accuracy, 4)
     << ".\n\n";

  os << "## Cost ledger\n\n";
  os << "| component | epoch-equivalents |\n|---|---|\n";
  os << "| fine-tuning | "
     << strings::FormatDouble(report.budget.training_epochs(), 1) << " |\n";
  os << "| proxy inference | "
     << strings::FormatDouble(report.budget.inference_epochs(), 1) << " |\n";
  os << "| **total** | **"
     << strings::FormatDouble(report.budget.total_epochs(), 1) << "** |\n";
  return os.str();
}

}  // namespace tps
