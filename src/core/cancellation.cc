#include "core/cancellation.h"

#include <string>

namespace tps {

Status CancelToken::Check(const char* where) const {
  bool expired = cancelled();
  if (!expired && has_countdown_.load(std::memory_order_relaxed)) {
    // fetch_sub hands every concurrent checker a distinct pre-decrement
    // value, so exactly one observes the 0 -> -1 transition; <= 0 latches
    // for everyone after.
    if (checks_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      cancelled_.store(true, std::memory_order_relaxed);
      expired = true;
    }
  }
  if (!expired) return Status::OK();
  return Status::DeadlineExceeded(std::string("cancelled at ") + where);
}

}  // namespace tps
