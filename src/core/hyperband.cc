#include "core/hyperband.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tps {

HyperbandSelector::HyperbandSelector(const ModelZoo* zoo,
                                     const FineTuneSimulator* simulator,
                                     HyperbandOptions options)
    : zoo_(zoo), simulator_(simulator), options_(options) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(simulator_ != nullptr);
  TPS_CHECK(options_.eta >= 2);
}

StatusOr<HyperbandOutcome> HyperbandSelector::Select(
    const std::vector<size_t>& candidates, const Dataset& target,
    const Hyperparams& hp, EpochBudget* budget) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("hyperband needs >= 1 candidate");
  }

  // Deterministic full curves, fetched once per candidate.
  std::vector<TrainingRun> runs;
  runs.reserve(candidates.size());
  for (size_t index : candidates) {
    if (index >= zoo_->size()) {
      return Status::OutOfRange("candidate index out of range");
    }
    TPS_ASSIGN_OR_RETURN(TrainingRun run,
                         simulator_->Run(zoo_->model(index), target, hp));
    runs.push_back(std::move(run));
  }

  const double eta = static_cast<double>(options_.eta);
  const int max_resource = hp.epochs;
  const int s_max = static_cast<int>(
      std::floor(std::log(static_cast<double>(max_resource)) /
                 std::log(eta)));

  HyperbandOutcome outcome;
  double total_epochs = 0.0;
  // Epochs already trained per candidate position (shared across brackets:
  // a model resumed in a later bracket does not repay its earlier epochs).
  std::vector<int> trained(candidates.size(), 0);

  size_t best_position = 0;
  double best_val = -1.0;

  for (int s = s_max; s >= 0; --s) {
    HyperbandBracket bracket;
    bracket.s = s;
    // Hyperband sizing: n = ceil((s_max + 1) / (s + 1) * eta^s),
    // r = R * eta^-s (at least one epoch).
    const size_t n = std::min<size_t>(
        candidates.size(),
        static_cast<size_t>(std::ceil(
            static_cast<double>(s_max + 1) / static_cast<double>(s + 1) *
            std::pow(eta, s))));
    const int r =
        std::max(1, static_cast<int>(static_cast<double>(max_resource) *
                                     std::pow(eta, -s)));
    bracket.initial_candidates = n;
    bracket.initial_epochs = r;

    // Positions into candidates/runs; the broad brackets take the front of
    // the (recall-ranked) candidate list.
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;

    for (int i = 0; i <= s; ++i) {
      const int resource = std::min(
          max_resource,
          static_cast<int>(static_cast<double>(r) * std::pow(eta, i)));
      // Train every pool member up to `resource` epochs (incremental).
      for (size_t position : pool) {
        if (trained[position] < resource) {
          bracket.epochs += resource - trained[position];
          trained[position] = resource;
        }
      }
      const auto val_at = [&](size_t position) {
        return runs[position]
            .val_accuracy[static_cast<size_t>(resource - 1)];
      };
      if (i < s && pool.size() > 1) {
        const size_t keep = std::max<size_t>(
            1, pool.size() / static_cast<size_t>(options_.eta));
        std::stable_sort(pool.begin(), pool.end(),
                         [&](size_t a, size_t b) {
                           return val_at(a) > val_at(b);
                         });
        pool.resize(keep);
      }
      if (i == s) {
        size_t winner = pool[0];
        for (size_t position : pool) {
          if (val_at(position) > val_at(winner)) winner = position;
        }
        bracket.winner = candidates[winner];
        bracket.winner_val = val_at(winner);
        if (bracket.winner_val > best_val) {
          best_val = bracket.winner_val;
          best_position = winner;
        }
      }
    }
    total_epochs += bracket.epochs;
    outcome.brackets.push_back(bracket);
    outcome.selection.survivors_per_stage.push_back(n);
  }

  // Finish training the overall winner to the full budget so its accuracy
  // is comparable with the other strategies.
  if (trained[best_position] < max_resource) {
    total_epochs += max_resource - trained[best_position];
    trained[best_position] = max_resource;
  }

  outcome.selection.selected_model = candidates[best_position];
  outcome.selection.selected_accuracy = runs[best_position].final_test();
  outcome.selection.training_epochs = total_epochs;
  if (budget != nullptr) budget->ChargeTraining(total_epochs);
  return outcome;
}

}  // namespace tps
