#ifndef TPS_CORE_PERFORMANCE_MATRIX_H_
#define TPS_CORE_PERFORMANCE_MATRIX_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "matrix/matrix.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "sim/hyperparams.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace tps {

/// The offline performance matrix Matrix(D, M) of Section II plus the full
/// training curves behind it: every model in the zoo fine-tuned on every
/// benchmark dataset, with per-epoch validation accuracy and final test
/// accuracy recorded.
///
/// This is the expensive offline artifact the paper amortizes across
/// target tasks; it feeds (a) model clustering in the coarse-recall phase
/// and (b) convergence-trend mining in the fine-selection phase. It can be
/// saved to / loaded from a text file so the "offline once, online many"
/// workflow is reproducible.
class PerformanceMatrix {
 public:
  /// Fine-tunes every model on every benchmark dataset (domain-matched;
  /// fails if any pair's domains differ) with the given hyperparameters.
  static StatusOr<PerformanceMatrix> Build(
      const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
      const FineTuneSimulator& simulator, const Hyperparams& hp);

  /// As Build, fanning the |D| x |M| runs over a ThreadPool of
  /// `num_threads` workers (the offline phase is embarrassingly parallel).
  /// Bit-identical to the serial Build — each run is deterministic and
  /// independent, and every (dataset, model) cell is an index-addressed
  /// slot. The worker count is clamped to the number of |D| x |M| work
  /// items, so oversubscribed requests never spawn idle threads.
  /// num_threads < 1 is an error; 1 falls back to the serial path.
  static StatusOr<PerformanceMatrix> BuildParallel(
      const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
      const FineTuneSimulator& simulator, const Hyperparams& hp,
      int num_threads);

  /// As BuildParallel on a caller-owned pool shared with the rest of the
  /// pipeline. `pool` may be null for the serial path.
  static StatusOr<PerformanceMatrix> BuildOnPool(
      const ModelZoo& zoo, const std::vector<const Dataset*>& benchmarks,
      const FineTuneSimulator& simulator, const Hyperparams& hp,
      ThreadPool* pool);

  size_t num_models() const { return model_names_.size(); }
  size_t num_datasets() const { return dataset_names_.size(); }

  const std::vector<std::string>& model_names() const { return model_names_; }
  const std::vector<std::string>& dataset_names() const {
    return dataset_names_;
  }

  /// Final test accuracy matrix: num_datasets x num_models
  /// (accuracy()(i, j) = p(d_i | m_j)).
  const Matrix& accuracy() const { return accuracy_; }

  /// The model's performance vector vec(m_j) over all benchmark datasets
  /// (the clustering feature vector).
  std::vector<double> ModelVector(size_t model_index) const;

  /// acc(m_j): the model's average benchmark accuracy (the prior term of
  /// the recall score, Eq. 2).
  double ModelAverageAccuracy(size_t model_index) const;

  /// Every model's performance vector, model-major — the recall index's
  /// primary input (src/index/).
  std::vector<std::vector<double>> ModelVectors() const;

  /// acc(m_j) for every model, in zoo order.
  std::vector<double> ModelAverageAccuracies() const;

  /// The full training run for (dataset, model).
  const TrainingRun& run(size_t dataset_index, size_t model_index) const;

  /// Validation accuracy of (dataset, model) at a 0-based stage, clamped to
  /// the last recorded epoch (CV runs are shorter than NLP runs).
  double ValAtStage(size_t dataset_index, size_t model_index,
                    int stage) const;

  /// Serializes to the line-oriented text format (also used by the model
  /// store).
  std::string Serialize() const;

  /// Parses a matrix previously produced by Serialize.
  static StatusOr<PerformanceMatrix> Deserialize(const std::string& text);

  /// Serialize() to a file.
  Status SaveToFile(const std::string& path) const;

  /// Restores a matrix previously written by SaveToFile.
  static StatusOr<PerformanceMatrix> LoadFromFile(const std::string& path);

 private:
  PerformanceMatrix() = default;

  std::vector<std::string> model_names_;
  std::vector<std::string> dataset_names_;
  Matrix accuracy_;
  /// runs_[dataset_index * num_models + model_index].
  std::vector<TrainingRun> runs_;
};

}  // namespace tps

#endif  // TPS_CORE_PERFORMANCE_MATRIX_H_
