#include "core/evaluation.h"

#include "util/stats.h"

namespace tps {

StatusOr<std::vector<double>> TrueFinalAccuracies(
    const ModelZoo& zoo, const Dataset& target,
    const FineTuneSimulator& simulator, const Hyperparams& hp) {
  std::vector<double> accuracies;
  accuracies.reserve(zoo.size());
  for (const PretrainedModel& model : zoo.models()) {
    TPS_ASSIGN_OR_RETURN(TrainingRun run, simulator.Run(model, target, hp));
    accuracies.push_back(run.final_test());
  }
  return accuracies;
}

double MeanAt(const std::vector<double>& accuracies,
              const std::vector<size_t>& indices) {
  if (indices.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i : indices) sum += accuracies[i];
  return sum / static_cast<double>(indices.size());
}

size_t BestModel(const std::vector<double>& accuracies) {
  return stats::ArgMax(accuracies);
}

std::vector<size_t> TopKByAccuracy(const std::vector<double>& accuracies,
                                   size_t k) {
  std::vector<size_t> order = stats::ArgSortDescending(accuracies);
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace tps
