#ifndef TPS_CORE_COARSE_RECALL_H_
#define TPS_CORE_COARSE_RECALL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/cancellation.h"
#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "core/selection_trace.h"
#include "data/dataset.h"
#include "index/recall_index.h"
#include "model/zoo.h"
#include "sim/epoch_budget.h"
#include "transfer/kernels.h"
#include "transfer/proxy_flight.h"
#include "transfer/proxy_scorer.h"
#include "transfer/score_cache.h"
#include "util/metrics.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace tps {

namespace recall {
class RecallBackend;
}  // namespace recall

struct RecallOptions {
  /// How many models to hand to the fine-selection phase (the paper uses
  /// 10).
  size_t top_k_models = 10;
  /// Proxy scorer name ("leep", "nce", "logme", "knn").
  std::string proxy = "leep";
  /// Multi-proxy combination (the paper's first future-work item:
  /// "combine different light-weight tasks to return a high quality subset
  /// more robustly"). When non-empty, overrides `proxy`: each listed
  /// scorer is computed and min-max normalized across the scored
  /// representatives, and the per-model proxy component is their mean.
  /// Inference cost is still 0.5 epochs per representative — all proxies
  /// consume the same forward pass over the target dataset.
  std::vector<std::string> proxies;
  /// Ablation switch: when false, score every model directly instead of
  /// only cluster representatives (O(|M|) proxies instead of O(|MC|)).
  bool use_cluster_representatives = true;
  /// Ablation switch: when false, drop the acc(m) prior from Eq. 2 and use
  /// the proxy component alone.
  bool use_accuracy_prior = true;
  /// Optional LRU proxy-score cache ("Serving" in DESIGN.md). When
  /// non-null, every representative's (target, model, scorer) proxy score
  /// is looked up before computing and inserted after, so repeated and
  /// overlapping queries skip the forward pass. Scores are deterministic,
  /// so the ranking is bit-identical with the cache on or off; the epoch
  /// budget still charges every scored representative (the paper's cost
  /// model counts logical inferences, and keeping the ledger
  /// cache-independent is what lets the inertness tests compare runs).
  /// nullptr disables caching. The cache must be thread-safe when a pool
  /// is passed (ProxyScoreCache is).
  ProxyScoreCache* score_cache = nullptr;
  /// Optional cross-request proxy coalescing. When non-null, concurrent
  /// requests computing the same (target, model, scorer) proxy collapse
  /// into one flight: the first arrival computes (inserting into
  /// `score_cache` when set, before the flight retires), the rest share
  /// the result. Scores are pure functions of the key, so coalescing is
  /// bit-identical to computing independently — see
  /// tests/serve/coalescing_test.cc. nullptr disables coalescing.
  ProxyFlightGroup* flight_group = nullptr;
  /// Artifact version this request was admitted against ("Serving: hot
  /// artifact swap" in DESIGN.md). Tagged into every cache/flight key so
  /// scores computed under one artifact version are never observed by a
  /// request running against another, even mid-swap. 0 (the default) is
  /// the never-swapped epoch used by embedded callers.
  uint64_t artifact_epoch = 0;
  /// Optional sub-linear recall index ("Sub-linear recall index" in
  /// DESIGN.md). When non-null, recall proxy-scores only the
  /// representatives of the partitions the index probes and ranks only the
  /// probed posting lists plus the propagation-only long tail — the whole
  /// online phase runs off the index structure, never sweeping the zoo or
  /// the performance matrix. The index must cover exactly the zoo. With a
  /// BruteForceRecallIndex built over the serving clustering (or any
  /// backend probed exhaustively) the result is bit-identical to the
  /// legacy sweep — tests/index/index_equivalence_test.cc pins it. The
  /// caller owns the index; it must outlive the call.
  const RecallIndex* index = nullptr;
  /// Scored partitions to probe per query in index mode: 0 = the
  /// backend's default, larger values trade latency for recall, and
  /// nprobe >= the scored-partition count reproduces brute force exactly.
  /// Ignored when `index` is null.
  size_t nprobe = 0;
  /// Optional pluggable recall backend ("Recall backends" in DESIGN.md).
  /// When non-null, TwoPhaseSelector routes phase 1 through this backend
  /// instead of the built-in CoarseRecall path; when null (the default)
  /// the legacy path runs untouched — the representative backend is a
  /// pure delegation back to CoarseRecall, so routing through it is
  /// bit-identical (tests/recall/backend_equivalence_test.cc). Forward
  /// declared: core never links the recall library; the pointer is
  /// injected by the serving layer. The caller owns the backend; it must
  /// outlive the call.
  const recall::RecallBackend* backend = nullptr;
  /// Which kernel family the proxy scorers compute with. kBatched (the
  /// default) is the SoA vectorized hot path; kReference retains the
  /// original scalar loops. Both are bit-identical by contract (the
  /// differential kernel harness pins it), so this is a performance
  /// toggle, never a results toggle — the parallel-equivalence and
  /// metrics-inertness suites sweep it.
  kernels::KernelMode kernel_mode = kernels::KernelMode::kBatched;
};

/// One scored model in the recall ranking.
struct RecallEntry {
  size_t model_index = 0;
  /// Final recall score (Eq. 2 / 3 / 4).
  double recall_score = 0.0;
  /// acc(m): average benchmark accuracy prior.
  double prior_accuracy = 0.0;
  /// Normalized proxy component (direct for non-singleton members, Eq. 4
  /// propagation for singleton members).
  double proxy_component = 0.0;
  /// True if the proxy component was propagated via Eq. 4 rather than
  /// computed from the model's own cluster representative.
  bool via_propagation = false;
};

struct RecallResult {
  /// All models, sorted by descending recall score.
  std::vector<RecallEntry> ranked;
  /// Number of proxy scores actually computed (= scored representatives).
  size_t proxies_computed = 0;

  /// Zoo indices of the top `k` models (fewer if the zoo is smaller).
  std::vector<size_t> TopModels(size_t k) const;
  /// Rank position (0-based) of a model in the recall ordering; the zoo
  /// size if absent.
  size_t RankOf(size_t model_index) const;
};

/// Phase 1 of the framework: recalls the most promising K models by
/// combining the benchmark-accuracy prior with a proxy score computed only
/// for non-singleton cluster representatives (Eq. 3), propagated to
/// singleton clusters by performance similarity (Eq. 4).
class CoarseRecall {
 public:
  /// All pointers must outlive this object.
  CoarseRecall(const ModelZoo* zoo, const PerformanceMatrix* matrix,
               const ModelClustering* clustering);

  /// Scores every model against `target` and ranks them. Charges 0.5
  /// epoch-equivalents per computed proxy to `budget` (may be null).
  ///
  /// When `pool` is non-null, the per-representative proxy forward passes
  /// and the per-model Eq. 2-4 scoring run concurrently on the pool. Each
  /// task writes an index-addressed slot and the normalization/ranking
  /// reductions stay serial in model-index order, so the result (ranking,
  /// scores, tie order, budget) is bit-identical to the serial run.
  ///
  /// Observability (never affects the result — see
  /// tests/core/metrics_inertness_test.cc): `metrics` receives recall
  /// counters/latency (nullptr -> MetricsRegistry::Default()); when
  /// `trace` is non-null its recall phase is filled in.
  /// `cancel` (may be null) is polled at entry and inside the proxy
  /// fan-out; an expired token yields DeadlineExceeded, never a partial
  /// ranking.
  StatusOr<RecallResult> Recall(const Dataset& target,
                                const RecallOptions& options,
                                EpochBudget* budget,
                                ThreadPool* pool = nullptr,
                                MetricsRegistry* metrics = nullptr,
                                SelectionTrace* trace = nullptr,
                                const CancelToken* cancel = nullptr) const;

 private:
  const ModelZoo* zoo_;
  const PerformanceMatrix* matrix_;
  const ModelClustering* clustering_;
};

}  // namespace tps

#endif  // TPS_CORE_COARSE_RECALL_H_
