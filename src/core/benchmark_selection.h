#ifndef TPS_CORE_BENCHMARK_SELECTION_H_
#define TPS_CORE_BENCHMARK_SELECTION_H_

#include <cstddef>
#include <vector>

#include "core/performance_matrix.h"
#include "util/statusor.h"

namespace tps {

/// Result of compact-benchmark selection.
struct BenchmarkSelectionResult {
  /// Indices (into the performance matrix's dataset axis) of the selected
  /// benchmark subset, in selection order.
  std::vector<size_t> selected;
  /// Pearson correlation between pairwise model distances computed on the
  /// subset and on the full benchmark suite (the objective value reached).
  double distance_correlation = 0.0;
};

/// Data-driven benchmark compaction (the paper's second future-work item:
/// "make benchmark datasets more compact to maintain the performance
/// matrix more cheaply").
///
/// Greedy forward selection: starting empty, repeatedly add the benchmark
/// dataset that maximizes the Pearson correlation between the model
/// pairwise-distance structure (Eq. 1 top-k distance) computed on the
/// subset and the structure computed on all benchmarks. A subset that
/// preserves this structure preserves the model clustering — and hence the
/// coarse-recall behaviour — at a fraction of the offline fine-tuning
/// cost.
///
/// `subset_size` must be in [1, num_datasets]; `top_k` is the Eq. 1
/// parameter (clamped per subset size).
StatusOr<BenchmarkSelectionResult> SelectCompactBenchmarks(
    const PerformanceMatrix& matrix, size_t subset_size, size_t top_k = 5);

}  // namespace tps

#endif  // TPS_CORE_BENCHMARK_SELECTION_H_
