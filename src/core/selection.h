#ifndef TPS_CORE_SELECTION_H_
#define TPS_CORE_SELECTION_H_

#include <cstddef>
#include <vector>

namespace tps {

/// Result of a model-selection run on a target dataset (any strategy).
struct SelectionOutcome {
  /// Zoo index of the selected model.
  size_t selected_model = 0;
  /// Final test accuracy of the selected model after its full fine-tune on
  /// the target.
  double selected_accuracy = 0.0;
  /// Training epochs charged by the selection (proxy inference is tracked
  /// separately in the EpochBudget).
  double training_epochs = 0.0;
  /// Candidate-set size at the start of each training stage (stage =
  /// epoch), e.g. {10, 5, 2, 1, 1} for successive halving of 10 models
  /// over 5 epochs.
  std::vector<size_t> survivors_per_stage;
};

}  // namespace tps

#endif  // TPS_CORE_SELECTION_H_
