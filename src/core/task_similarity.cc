#include "core/task_similarity.h"

#include <cmath>

#include "matrix/vector_ops.h"
#include "util/logging.h"
#include "util/stats.h"

namespace tps {

TaskSimilaritySelector::TaskSimilaritySelector(
    const PretrainedModel* probe, const PerformanceMatrix* matrix,
    const std::vector<const Dataset*>& benchmarks)
    : probe_(probe), matrix_(matrix), benchmarks_(benchmarks) {
  TPS_CHECK(probe_ != nullptr);
  TPS_CHECK(matrix_ != nullptr);
  TPS_CHECK(!benchmarks_.empty());
  TPS_CHECK(benchmarks_.size() == matrix_->num_datasets());
}

StatusOr<std::vector<double>> TaskSimilaritySelector::EmbedTask(
    const Dataset& task) const {
  TPS_ASSIGN_OR_RETURN(Matrix features, probe_->ExtractFeatures(task));
  const size_t dims = features.cols();
  std::vector<double> embedding;
  embedding.reserve(2 * dims);
  // Feature means.
  const std::vector<double> means = features.ColMeans();
  embedding.insert(embedding.end(), means.begin(), means.end());
  // Per-dimension standard deviations (within-task feature dispersion, the
  // cheap Fisher-diagonal stand-in). Row-outer so the matrix streams once
  // in storage order; each dimension's accumulation still visits rows in
  // ascending order, so the sums are bit-identical to the column-strided
  // loop.
  std::vector<double> accum(dims, 0.0);
  const double* row_data = features.data().data();
  for (size_t i = 0; i < features.rows(); ++i, row_data += dims) {
    for (size_t d = 0; d < dims; ++d) {
      const double diff = row_data[d] - means[d];
      accum[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    embedding.push_back(
        std::sqrt(accum[d] / static_cast<double>(features.rows())));
  }
  return embedding;
}

StatusOr<TaskSimilaritySelector::NearestBenchmark>
TaskSimilaritySelector::FindNearestBenchmark(const Dataset& target) const {
  if (benchmark_embeddings_.empty()) {
    benchmark_embeddings_.reserve(benchmarks_.size());
    for (const Dataset* benchmark : benchmarks_) {
      TPS_ASSIGN_OR_RETURN(std::vector<double> embedding,
                           EmbedTask(*benchmark));
      benchmark_embeddings_.push_back(std::move(embedding));
    }
  }
  TPS_ASSIGN_OR_RETURN(std::vector<double> target_embedding,
                       EmbedTask(target));

  NearestBenchmark nearest;
  nearest.similarity = -2.0;
  for (size_t b = 0; b < benchmark_embeddings_.size(); ++b) {
    if (benchmark_embeddings_[b].size() != target_embedding.size()) {
      return Status::FailedPrecondition(
          "probe produced inconsistent embedding sizes");
    }
    const double sim = vec::CosineSimilarity(benchmark_embeddings_[b],
                                             target_embedding);
    if (sim > nearest.similarity) {
      nearest.similarity = sim;
      nearest.benchmark_index = b;
    }
  }
  return nearest;
}

StatusOr<std::vector<size_t>> TaskSimilaritySelector::RankModels(
    const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(NearestBenchmark nearest,
                       FindNearestBenchmark(target));
  const std::vector<double> row =
      matrix_->accuracy().Row(nearest.benchmark_index);
  return stats::ArgSortDescending(row);
}

}  // namespace tps
