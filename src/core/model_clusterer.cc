#include "core/model_clusterer.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/kmeans.h"
#include "embedding/text_embedder.h"
#include "model/model_card.h"
#include "util/logging.h"

namespace tps {

std::vector<int> ModelClustering::NonSingletonClusters() const {
  std::vector<int> out;
  const std::vector<size_t> sizes = clusters.Sizes();
  for (int c = 0; c < clusters.num_clusters; ++c) {
    if (sizes[static_cast<size_t>(c)] > 1) out.push_back(c);
  }
  return out;
}

std::vector<int> ModelClustering::SingletonClusters() const {
  std::vector<int> out;
  const std::vector<size_t> sizes = clusters.Sizes();
  for (int c = 0; c < clusters.num_clusters; ++c) {
    if (sizes[static_cast<size_t>(c)] == 1) out.push_back(c);
  }
  return out;
}

bool ModelClustering::IsSingletonModel(size_t model_index) const {
  TPS_CHECK(model_index < clusters.assignments.size());
  const int c = clusters.assignments[model_index];
  return clusters.Sizes()[static_cast<size_t>(c)] == 1;
}

int ModelClustering::ClusterOf(size_t model_index) const {
  TPS_CHECK(model_index < clusters.assignments.size());
  return clusters.assignments[model_index];
}

namespace {

StatusOr<Matrix> BuildDistances(const PerformanceMatrix& matrix,
                                const ModelZoo& zoo,
                                const ModelClusteringOptions& options) {
  const size_t n = zoo.size();
  if (options.similarity == ModelSimilarityKind::kPerformance) {
    std::vector<std::vector<double>> vectors;
    vectors.reserve(n);
    for (size_t m = 0; m < n; ++m) vectors.push_back(matrix.ModelVector(m));
    return PairwiseDistances(vectors, DistanceMetric::kTopKAbsDiff,
                             options.top_k);
  }
  // Text-card similarity baseline.
  HashedTextEmbedder embedder;
  std::vector<std::vector<double>> embeddings;
  embeddings.reserve(n);
  for (size_t m = 0; m < n; ++m) {
    embeddings.push_back(embedder.Embed(GenerateModelCard(
        zoo.model(m).spec())));
  }
  return PairwiseDistances(embeddings, DistanceMetric::kCosine);
}

}  // namespace

StatusOr<ModelClustering> ClusterModels(
    const PerformanceMatrix& matrix, const ModelZoo& zoo,
    const ModelClusteringOptions& options) {
  if (zoo.size() != matrix.num_models()) {
    return Status::InvalidArgument(
        "zoo / performance-matrix model count mismatch");
  }
  if (zoo.size() < 2) {
    return Status::InvalidArgument("clustering needs at least 2 models");
  }

  ModelClustering result;
  result.options = options;
  TPS_ASSIGN_OR_RETURN(result.distances,
                       BuildDistances(matrix, zoo, options));

  if (options.algorithm == ClusterAlgorithm::kHierarchical) {
    HierarchicalOptions hopts;
    hopts.linkage = Linkage::kAverage;
    hopts.num_clusters = options.num_clusters;
    hopts.distance_threshold = options.distance_threshold;
    TPS_ASSIGN_OR_RETURN(HierarchicalResult hr,
                         HierarchicalCluster(result.distances, hopts));
    result.clusters = std::move(hr.clustering);
  } else {
    if (options.num_clusters < 1) {
      return Status::InvalidArgument("k-means needs num_clusters >= 1");
    }
    // K-means runs in the raw feature space (performance vectors or card
    // embeddings), not on the distance matrix.
    std::vector<std::vector<double>> features;
    features.reserve(zoo.size());
    if (options.similarity == ModelSimilarityKind::kPerformance) {
      for (size_t m = 0; m < zoo.size(); ++m) {
        features.push_back(matrix.ModelVector(m));
      }
    } else {
      HashedTextEmbedder embedder;
      for (size_t m = 0; m < zoo.size(); ++m) {
        features.push_back(
            embedder.Embed(GenerateModelCard(zoo.model(m).spec())));
      }
    }
    TPS_ASSIGN_OR_RETURN(Matrix points, Matrix::FromRows(features));
    KMeansOptions kopts;
    kopts.num_clusters = options.num_clusters;
    kopts.seed = options.seed;
    TPS_ASSIGN_OR_RETURN(KMeansResult kr, KMeans(points, kopts));
    result.clusters = std::move(kr.clustering);
  }

  // Representative model per cluster: highest average benchmark accuracy.
  result.representatives.assign(
      static_cast<size_t>(result.clusters.num_clusters), 0);
  for (int c = 0; c < result.clusters.num_clusters; ++c) {
    const std::vector<size_t> members = result.clusters.Members(c);
    TPS_CHECK(!members.empty());
    size_t best = members[0];
    double best_acc = matrix.ModelAverageAccuracy(best);
    for (size_t m : members) {
      const double acc = matrix.ModelAverageAccuracy(m);
      if (acc > best_acc) {
        best_acc = acc;
        best = m;
      }
    }
    result.representatives[static_cast<size_t>(c)] = best;
  }
  return result;
}

StatusOr<BruteForceRecallIndex> IndexFromClustering(
    const PerformanceMatrix& matrix, const ModelClustering& clustering) {
  if (matrix.num_models() != clustering.clusters.assignments.size()) {
    return Status::InvalidArgument(
        "matrix / clustering model count mismatch");
  }
  // Vectors, priors, assignments and top-k all come straight from the
  // clustering artifact, and BruteForceRecallIndex re-derives the
  // representatives with the same highest-average-accuracy / first-wins
  // rule as ClusterModels above, so recall through the index reproduces
  // the legacy sweep bit-for-bit.
  return BruteForceRecallIndex::Create(
      matrix.ModelVectors(), matrix.ModelAverageAccuracies(),
      clustering.clusters.assignments,
      static_cast<size_t>(clustering.clusters.num_clusters),
      clustering.options.top_k);
}

StatusOr<ModelClustering> ClusteringFromIndexStructure(
    const IndexStructure& structure) {
  const size_t P = structure.num_partitions();
  if (structure.num_models() == 0 || P == 0) {
    return Status::InvalidArgument("empty index structure");
  }
  ModelClustering clustering;
  clustering.clusters.assignments = structure.assignments;
  clustering.clusters.num_clusters = static_cast<int>(P);
  clustering.representatives.reserve(P);
  for (size_t rep : structure.representatives) {
    if (rep == IndexStructure::kNoSlot) {
      return Status::FailedPrecondition(
          "index has an empty partition; cannot derive a clustering");
    }
    clustering.representatives.push_back(rep);
  }
  // The distance matrix stays empty on purpose: nothing in the recall
  // path reads it, and materializing O(n^2) distances is exactly what a
  // large generated zoo cannot afford.
  clustering.options.similarity = ModelSimilarityKind::kPerformance;
  clustering.options.algorithm = ClusterAlgorithm::kKMeans;
  clustering.options.top_k = structure.similarity_top_k;
  clustering.options.num_clusters = static_cast<int>(P);
  return clustering;
}

std::string FormatClusters(const ModelClustering& clustering,
                           const ModelZoo& zoo, bool include_singletons) {
  std::ostringstream os;
  const std::vector<size_t> sizes = clustering.clusters.Sizes();
  int printed = 0;
  for (int c = 0; c < clustering.clusters.num_clusters; ++c) {
    const size_t size = sizes[static_cast<size_t>(c)];
    if (size <= 1 && !include_singletons) continue;
    os << "C" << ++printed << " (size " << size << "): ";
    bool first = true;
    for (size_t m : clustering.clusters.Members(c)) {
      if (!first) os << ", ";
      os << zoo.model(m).name();
      first = false;
    }
    os << "\n";
  }
  if (!include_singletons) {
    size_t singles = 0;
    for (size_t s : sizes) {
      if (s == 1) ++singles;
    }
    os << "(+ " << singles << " singleton clusters)\n";
  }
  return os.str();
}

std::string SerializeClustering(const ModelClustering& clustering) {
  std::ostringstream out;
  out << "tps-model-clustering v1\n";
  out << clustering.clusters.assignments.size() << " "
      << clustering.clusters.num_clusters << "\n";
  out << static_cast<int>(clustering.options.similarity) << " "
      << static_cast<int>(clustering.options.algorithm) << " "
      << clustering.options.top_k << " " << clustering.options.num_clusters
      << " " << clustering.options.distance_threshold << " "
      << clustering.options.seed << "\n";
  for (int a : clustering.clusters.assignments) out << a << " ";
  out << "\n";
  for (size_t r : clustering.representatives) out << r << " ";
  out << "\n";
  out.precision(17);
  const size_t n = clustering.distances.rows();
  out << n << "\n";
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) out << clustering.distances.At(i, j)
                                       << " ";
    out << "\n";
  }
  return out.str();
}

Status SaveClustering(const ModelClustering& clustering,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << SerializeClustering(clustering);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<ModelClustering> DeserializeClustering(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-model-clustering v1") {
    return Status::InvalidArgument("bad clustering header");
  }
  size_t num_models = 0;
  int num_clusters = 0;
  in >> num_models >> num_clusters;
  if (!in || num_models == 0 || num_clusters <= 0 ||
      num_clusters > static_cast<int>(num_models)) {
    return Status::InvalidArgument("bad clustering dimensions");
  }

  ModelClustering clustering;
  int similarity = 0, algorithm = 0;
  in >> similarity >> algorithm >> clustering.options.top_k >>
      clustering.options.num_clusters >>
      clustering.options.distance_threshold >> clustering.options.seed;
  if (!in || similarity < 0 || similarity > 1 || algorithm < 0 ||
      algorithm > 1) {
    return Status::InvalidArgument("bad clustering options");
  }
  clustering.options.similarity =
      static_cast<ModelSimilarityKind>(similarity);
  clustering.options.algorithm = static_cast<ClusterAlgorithm>(algorithm);

  clustering.clusters.num_clusters = num_clusters;
  clustering.clusters.assignments.resize(num_models);
  for (int& a : clustering.clusters.assignments) {
    in >> a;
    if (!in || a < 0 || a >= num_clusters) {
      return Status::InvalidArgument("bad assignment");
    }
  }
  clustering.representatives.resize(static_cast<size_t>(num_clusters));
  for (size_t& r : clustering.representatives) {
    in >> r;
    if (!in || r >= num_models) {
      return Status::InvalidArgument("bad representative");
    }
  }
  size_t n = 0;
  in >> n;
  // n == 0 means the clustering carries no distance matrix (index-derived
  // clusterings over large generated zoos skip the O(n^2) artifact).
  if (!in || (n != num_models && n != 0)) {
    return Status::InvalidArgument("bad distance matrix size");
  }
  if (n > 0) {
    clustering.distances = Matrix(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) in >> clustering.distances.At(i, j);
    }
    if (!in) return Status::InvalidArgument("truncated distances");
  }
  return clustering;
}

StatusOr<ModelClustering> LoadClustering(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto result = DeserializeClustering(text);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " in " + path);
  }
  return result;
}

}  // namespace tps
