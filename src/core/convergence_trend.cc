#include "core/convergence_trend.h"

#include <algorithm>
#include <cmath>

#include "clustering/kmeans.h"
#include "util/logging.h"

namespace tps {

ConvergenceTrendMiner::ConvergenceTrendMiner(const PerformanceMatrix* matrix,
                                             TrendMinerOptions options)
    : matrix_(matrix), options_(options) {
  TPS_CHECK(matrix_ != nullptr);
  TPS_CHECK(options_.num_trends >= 1);
}

StatusOr<std::vector<ConvergenceTrend>> ConvergenceTrendMiner::MineTrends(
    size_t model_index, int stage) const {
  if (model_index >= matrix_->num_models()) {
    return Status::OutOfRange("model index out of range in MineTrends");
  }
  if (stage < 0) {
    return Status::InvalidArgument("stage must be >= 0");
  }
  const size_t num_datasets = matrix_->num_datasets();
  if (num_datasets == 0) {
    return Status::FailedPrecondition("performance matrix has no datasets");
  }

  std::vector<double> stage_vals(num_datasets);
  for (size_t d = 0; d < num_datasets; ++d) {
    stage_vals[d] = matrix_->ValAtStage(d, model_index, stage);
  }

  const int k =
      std::min<int>(options_.num_trends, static_cast<int>(num_datasets));
  KMeansOptions kopts;
  kopts.num_clusters = k;
  kopts.seed = options_.seed;
  TPS_ASSIGN_OR_RETURN(KMeansResult kr, KMeans1D(stage_vals, kopts));

  std::vector<ConvergenceTrend> trends(static_cast<size_t>(k));
  for (size_t d = 0; d < num_datasets; ++d) {
    const size_t c = static_cast<size_t>(kr.clustering.assignments[d]);
    trends[c].dataset_indices.push_back(d);
  }
  for (ConvergenceTrend& trend : trends) {
    double val_sum = 0.0;
    double test_sum = 0.0;
    for (size_t d : trend.dataset_indices) {
      val_sum += stage_vals[d];
      test_sum += matrix_->run(d, model_index).final_test();
    }
    const double count =
        std::max<double>(1.0, static_cast<double>(trend.dataset_indices.size()));
    trend.mean_val = val_sum / count;
    trend.mean_final_test = test_sum / count;
  }
  // Drop empty trends (k-means re-seeding makes them rare but possible),
  // then sort by ascending mean validation accuracy.
  trends.erase(std::remove_if(trends.begin(), trends.end(),
                              [](const ConvergenceTrend& t) {
                                return t.dataset_indices.empty();
                              }),
               trends.end());
  std::sort(trends.begin(), trends.end(),
            [](const ConvergenceTrend& a, const ConvergenceTrend& b) {
              return a.mean_val < b.mean_val;
            });
  return trends;
}

size_t ConvergenceTrendMiner::MatchTrend(
    const std::vector<ConvergenceTrend>& trends, double observed_val) {
  TPS_CHECK(!trends.empty());
  size_t best = 0;
  double best_gap = std::fabs(trends[0].mean_val - observed_val);
  for (size_t x = 1; x < trends.size(); ++x) {
    const double gap = std::fabs(trends[x].mean_val - observed_val);
    if (gap < best_gap) {
      best_gap = gap;
      best = x;
    }
  }
  return best;
}

double ConvergenceTrendMiner::PredictFinal(
    const std::vector<ConvergenceTrend>& trends, double observed_val) {
  return trends[MatchTrend(trends, observed_val)].mean_final_test;
}

}  // namespace tps
