#include "core/selection_trace.h"

#include <cmath>

#include "util/json.h"

namespace tps {

namespace {

json::Value IndexArray(const std::vector<size_t>& indices) {
  json::Value array = json::Value::Array();
  for (size_t index : indices) {
    array.Append(json::Value::Int(static_cast<int64_t>(index)));
  }
  return array;
}

StatusOr<std::vector<size_t>> ParseIndexArray(const json::Value& parent,
                                              const std::string& key) {
  TPS_ASSIGN_OR_RETURN(const json::Value* array, parent.GetArray(key));
  std::vector<size_t> indices;
  indices.reserve(array->items().size());
  for (const json::Value& item : array->items()) {
    if (!item.is_number() || item.number() < 0.0 ||
        item.number() != std::floor(item.number())) {
      return Status::InvalidArgument("non-index element in " + key);
    }
    indices.push_back(static_cast<size_t>(item.number()));
  }
  return indices;
}

StatusOr<size_t> ParseIndex(const json::Value& parent,
                            const std::string& key) {
  TPS_ASSIGN_OR_RETURN(double raw, parent.GetNumber(key));
  if (raw < 0.0 || raw != std::floor(raw)) {
    return Status::InvalidArgument("member is not an index: " + key);
  }
  return static_cast<size_t>(raw);
}

}  // namespace

std::string SelectionTrace::ToJson(int indent) const {
  json::Value root = json::Value::Object();
  root.Set("schema_version", json::Value::Int(kSchemaVersion));
  root.Set("target", json::Value::String(target));
  root.Set("domain", json::Value::String(domain));

  json::Value recall_v = json::Value::Object();
  json::Value scored = json::Value::Array();
  for (const TraceProxyScore& s : recall.scored) {
    json::Value entry = json::Value::Object();
    entry.Set("model", json::Value::Int(static_cast<int64_t>(s.model_index)));
    entry.Set("cluster", json::Value::Int(s.cluster));
    entry.Set("norm_score", json::Value::Number(s.norm_score));
    scored.Append(std::move(entry));
  }
  recall_v.Set("scored", std::move(scored));
  json::Value ranked = json::Value::Array();
  for (const TraceRecallEntry& e : recall.ranked) {
    json::Value entry = json::Value::Object();
    entry.Set("model", json::Value::Int(static_cast<int64_t>(e.model_index)));
    entry.Set("recall_score", json::Value::Number(e.recall_score));
    entry.Set("prior_accuracy", json::Value::Number(e.prior_accuracy));
    entry.Set("proxy_component", json::Value::Number(e.proxy_component));
    entry.Set("via_propagation", json::Value::Bool(e.via_propagation));
    ranked.Append(std::move(entry));
  }
  recall_v.Set("ranked", std::move(ranked));
  recall_v.Set("recalled", IndexArray(recall.recalled));
  recall_v.Set("proxies_computed",
               json::Value::Int(static_cast<int64_t>(recall.proxies_computed)));
  recall_v.Set("inference_epochs", json::Value::Number(recall.inference_epochs));
  recall_v.Set("wall_ms", json::Value::Number(recall.wall_ms));
  root.Set("recall", std::move(recall_v));

  json::Value stages_v = json::Value::Array();
  for (const TraceStage& stage : stages) {
    json::Value stage_v = json::Value::Object();
    stage_v.Set("stage", json::Value::Int(stage.stage));
    stage_v.Set("entrants", IndexArray(stage.entrants));
    stage_v.Set("epochs_charged", json::Value::Number(stage.epochs_charged));
    json::Value prunes = json::Value::Array();
    for (const TracePrune& prune : stage.prunes) {
      json::Value p = json::Value::Object();
      p.Set("model", json::Value::Int(static_cast<int64_t>(prune.model_index)));
      p.Set("pruned_by", json::Value::Int(static_cast<int64_t>(prune.pruned_by)));
      p.Set("val", json::Value::Number(prune.val));
      p.Set("by_val", json::Value::Number(prune.by_val));
      p.Set("predicted", json::Value::Number(prune.predicted));
      p.Set("by_predicted", json::Value::Number(prune.by_predicted));
      p.Set("margin", json::Value::Number(prune.margin));
      prunes.Append(std::move(p));
    }
    stage_v.Set("prunes", std::move(prunes));
    stage_v.Set("halving_drops", IndexArray(stage.halving_drops));
    stage_v.Set("survivors", IndexArray(stage.survivors));
    stages_v.Append(std::move(stage_v));
  }
  root.Set("stages", std::move(stages_v));
  root.Set("fine_wall_ms", json::Value::Number(fine_wall_ms));
  root.Set("selected_model",
           json::Value::Int(static_cast<int64_t>(selected_model)));
  root.Set("selected_accuracy", json::Value::Number(selected_accuracy));
  root.Set("training_epochs", json::Value::Number(training_epochs));
  root.Set("total_epochs", json::Value::Number(total_epochs));
  return root.Dump(indent);
}

StatusOr<SelectionTrace> SelectionTrace::FromJson(const std::string& text) {
  TPS_ASSIGN_OR_RETURN(json::Value root, json::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("trace JSON is not an object");
  }
  TPS_ASSIGN_OR_RETURN(double version, root.GetNumber("schema_version"));
  if (version != kSchemaVersion) {
    return Status::InvalidArgument("unsupported trace schema_version");
  }
  SelectionTrace trace;
  TPS_ASSIGN_OR_RETURN(trace.target, root.GetString("target"));
  TPS_ASSIGN_OR_RETURN(trace.domain, root.GetString("domain"));

  TPS_ASSIGN_OR_RETURN(const json::Value* recall_v, root.GetObject("recall"));
  TPS_ASSIGN_OR_RETURN(const json::Value* scored, recall_v->GetArray("scored"));
  for (const json::Value& entry : scored->items()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("scored entry is not an object");
    }
    TraceProxyScore s;
    TPS_ASSIGN_OR_RETURN(s.model_index, ParseIndex(entry, "model"));
    TPS_ASSIGN_OR_RETURN(double cluster, entry.GetNumber("cluster"));
    s.cluster = static_cast<int>(cluster);
    TPS_ASSIGN_OR_RETURN(s.norm_score, entry.GetNumber("norm_score"));
    trace.recall.scored.push_back(s);
  }
  TPS_ASSIGN_OR_RETURN(const json::Value* ranked, recall_v->GetArray("ranked"));
  for (const json::Value& entry : ranked->items()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("ranked entry is not an object");
    }
    TraceRecallEntry e;
    TPS_ASSIGN_OR_RETURN(e.model_index, ParseIndex(entry, "model"));
    TPS_ASSIGN_OR_RETURN(e.recall_score, entry.GetNumber("recall_score"));
    TPS_ASSIGN_OR_RETURN(e.prior_accuracy, entry.GetNumber("prior_accuracy"));
    TPS_ASSIGN_OR_RETURN(e.proxy_component,
                         entry.GetNumber("proxy_component"));
    TPS_ASSIGN_OR_RETURN(e.via_propagation, entry.GetBool("via_propagation"));
    trace.recall.ranked.push_back(e);
  }
  TPS_ASSIGN_OR_RETURN(trace.recall.recalled,
                       ParseIndexArray(*recall_v, "recalled"));
  TPS_ASSIGN_OR_RETURN(trace.recall.proxies_computed,
                       ParseIndex(*recall_v, "proxies_computed"));
  TPS_ASSIGN_OR_RETURN(trace.recall.inference_epochs,
                       recall_v->GetNumber("inference_epochs"));
  TPS_ASSIGN_OR_RETURN(trace.recall.wall_ms, recall_v->GetNumber("wall_ms"));

  TPS_ASSIGN_OR_RETURN(const json::Value* stages_v, root.GetArray("stages"));
  for (const json::Value& stage_v : stages_v->items()) {
    if (!stage_v.is_object()) {
      return Status::InvalidArgument("stage entry is not an object");
    }
    TraceStage stage;
    TPS_ASSIGN_OR_RETURN(double stage_num, stage_v.GetNumber("stage"));
    stage.stage = static_cast<int>(stage_num);
    TPS_ASSIGN_OR_RETURN(stage.entrants, ParseIndexArray(stage_v, "entrants"));
    TPS_ASSIGN_OR_RETURN(stage.epochs_charged,
                         stage_v.GetNumber("epochs_charged"));
    TPS_ASSIGN_OR_RETURN(const json::Value* prunes,
                         stage_v.GetArray("prunes"));
    for (const json::Value& prune_v : prunes->items()) {
      if (!prune_v.is_object()) {
        return Status::InvalidArgument("prune entry is not an object");
      }
      TracePrune prune;
      TPS_ASSIGN_OR_RETURN(prune.model_index, ParseIndex(prune_v, "model"));
      TPS_ASSIGN_OR_RETURN(prune.pruned_by, ParseIndex(prune_v, "pruned_by"));
      TPS_ASSIGN_OR_RETURN(prune.val, prune_v.GetNumber("val"));
      TPS_ASSIGN_OR_RETURN(prune.by_val, prune_v.GetNumber("by_val"));
      TPS_ASSIGN_OR_RETURN(prune.predicted, prune_v.GetNumber("predicted"));
      TPS_ASSIGN_OR_RETURN(prune.by_predicted,
                           prune_v.GetNumber("by_predicted"));
      TPS_ASSIGN_OR_RETURN(prune.margin, prune_v.GetNumber("margin"));
      stage.prunes.push_back(prune);
    }
    TPS_ASSIGN_OR_RETURN(stage.halving_drops,
                         ParseIndexArray(stage_v, "halving_drops"));
    TPS_ASSIGN_OR_RETURN(stage.survivors,
                         ParseIndexArray(stage_v, "survivors"));
    trace.stages.push_back(std::move(stage));
  }
  TPS_ASSIGN_OR_RETURN(trace.fine_wall_ms, root.GetNumber("fine_wall_ms"));
  TPS_ASSIGN_OR_RETURN(trace.selected_model,
                       ParseIndex(root, "selected_model"));
  TPS_ASSIGN_OR_RETURN(trace.selected_accuracy,
                       root.GetNumber("selected_accuracy"));
  TPS_ASSIGN_OR_RETURN(trace.training_epochs,
                       root.GetNumber("training_epochs"));
  TPS_ASSIGN_OR_RETURN(trace.total_epochs, root.GetNumber("total_epochs"));
  return trace;
}

}  // namespace tps
