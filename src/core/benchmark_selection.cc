#include "core/benchmark_selection.h"

#include <algorithm>

#include "clustering/distance.h"
#include "util/stats.h"

namespace tps {

namespace {

/// Flattens the upper triangle of the pairwise Eq. 1 distance matrix over
/// models, restricted to the benchmark rows in `subset`.
std::vector<double> DistanceVectorFor(const PerformanceMatrix& matrix,
                                      const std::vector<size_t>& subset,
                                      size_t top_k) {
  const size_t num_models = matrix.num_models();
  // Model vectors restricted to the subset rows.
  std::vector<std::vector<double>> vectors(num_models);
  for (size_t m = 0; m < num_models; ++m) {
    vectors[m].reserve(subset.size());
    for (size_t d : subset) {
      vectors[m].push_back(matrix.accuracy().At(d, m));
    }
  }
  const size_t k = std::clamp<size_t>(top_k, 1, subset.size());
  std::vector<double> flattened;
  flattened.reserve(num_models * (num_models - 1) / 2);
  for (size_t i = 0; i < num_models; ++i) {
    for (size_t j = i + 1; j < num_models; ++j) {
      flattened.push_back(
          Distance(vectors[i], vectors[j], DistanceMetric::kTopKAbsDiff, k));
    }
  }
  return flattened;
}

}  // namespace

StatusOr<BenchmarkSelectionResult> SelectCompactBenchmarks(
    const PerformanceMatrix& matrix, size_t subset_size, size_t top_k) {
  const size_t num_datasets = matrix.num_datasets();
  if (subset_size < 1 || subset_size > num_datasets) {
    return Status::InvalidArgument(
        "subset_size must be in [1, num_datasets]");
  }
  if (matrix.num_models() < 2) {
    return Status::InvalidArgument(
        "benchmark selection needs at least 2 models");
  }

  std::vector<size_t> all(num_datasets);
  for (size_t d = 0; d < num_datasets; ++d) all[d] = d;
  const std::vector<double> reference =
      DistanceVectorFor(matrix, all, top_k);

  BenchmarkSelectionResult result;
  std::vector<bool> used(num_datasets, false);
  for (size_t step = 0; step < subset_size; ++step) {
    double best_corr = -2.0;
    size_t best_dataset = num_datasets;
    for (size_t candidate = 0; candidate < num_datasets; ++candidate) {
      if (used[candidate]) continue;
      std::vector<size_t> trial = result.selected;
      trial.push_back(candidate);
      const std::vector<double> trial_distances =
          DistanceVectorFor(matrix, trial, top_k);
      const double corr =
          stats::PearsonCorrelation(trial_distances, reference);
      if (corr > best_corr) {
        best_corr = corr;
        best_dataset = candidate;
      }
    }
    used[best_dataset] = true;
    result.selected.push_back(best_dataset);
    result.distance_correlation = best_corr;
  }
  return result;
}

}  // namespace tps
