#include "core/baselines.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace tps {

namespace {

/// Materializes the deterministic full training curve of each candidate.
/// Selection strategies *read prefixes* of these curves and charge the
/// budget for exactly the epochs they consumed — equivalent to actually
/// pausing/resuming training, since the simulator is deterministic.
StatusOr<std::vector<TrainingRun>> RunAll(
    const ModelZoo& zoo, const FineTuneSimulator& simulator,
    const std::vector<size_t>& candidates, const Dataset& target,
    const Hyperparams& hp) {
  std::vector<TrainingRun> runs;
  runs.reserve(candidates.size());
  for (size_t index : candidates) {
    if (index >= zoo.size()) {
      return Status::OutOfRange("candidate index out of range");
    }
    TPS_ASSIGN_OR_RETURN(TrainingRun run,
                         simulator.Run(zoo.model(index), target, hp));
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace

BruteForceSelector::BruteForceSelector(const ModelZoo* zoo,
                                       const FineTuneSimulator* simulator)
    : zoo_(zoo), simulator_(simulator) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(simulator_ != nullptr);
}

StatusOr<SelectionOutcome> BruteForceSelector::Select(
    const std::vector<size_t>& candidates, const Dataset& target,
    const Hyperparams& hp, EpochBudget* budget) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("brute force needs >= 1 candidate");
  }
  TPS_ASSIGN_OR_RETURN(std::vector<TrainingRun> runs,
                       RunAll(*zoo_, *simulator_, candidates, target, hp));

  SelectionOutcome outcome;
  outcome.training_epochs =
      static_cast<double>(candidates.size()) * hp.epochs;
  if (budget != nullptr) budget->ChargeTraining(outcome.training_epochs);
  outcome.survivors_per_stage.assign(static_cast<size_t>(hp.epochs),
                                     candidates.size());

  size_t best = 0;
  double best_val = runs[0].val_accuracy.back();
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].val_accuracy.back() > best_val) {
      best_val = runs[i].val_accuracy.back();
      best = i;
    }
  }
  outcome.selected_model = candidates[best];
  outcome.selected_accuracy = runs[best].final_test();
  return outcome;
}

SuccessiveHalvingSelector::SuccessiveHalvingSelector(
    const ModelZoo* zoo, const FineTuneSimulator* simulator,
    SuccessiveHalvingOptions options)
    : zoo_(zoo), simulator_(simulator), options_(options) {
  TPS_CHECK(zoo_ != nullptr);
  TPS_CHECK(simulator_ != nullptr);
  TPS_CHECK(options_.eta >= 2);
}

StatusOr<SelectionOutcome> SuccessiveHalvingSelector::Select(
    const std::vector<size_t>& candidates, const Dataset& target,
    const Hyperparams& hp, EpochBudget* budget) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("successive halving needs >= 1 candidate");
  }
  TPS_ASSIGN_OR_RETURN(std::vector<TrainingRun> runs,
                       RunAll(*zoo_, *simulator_, candidates, target, hp));

  SelectionOutcome outcome;
  // `remaining` holds positions into `candidates`/`runs`.
  std::vector<size_t> remaining(candidates.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  for (int stage = 0; stage < hp.epochs; ++stage) {
    outcome.survivors_per_stage.push_back(remaining.size());
    outcome.training_epochs += static_cast<double>(remaining.size());
    if (budget != nullptr) {
      budget->ChargeTraining(static_cast<double>(remaining.size()));
    }
    if (remaining.size() <= 1) continue;
    // Keep the floor(n/eta) best by this stage's validation accuracy.
    const size_t keep = std::max<size_t>(
        1, remaining.size() / static_cast<size_t>(options_.eta));
    std::stable_sort(remaining.begin(), remaining.end(),
                     [&](size_t a, size_t b) {
                       return runs[a].val_accuracy[static_cast<size_t>(
                                  stage)] >
                              runs[b].val_accuracy[static_cast<size_t>(
                                  stage)];
                     });
    remaining.resize(keep);
  }

  // Winner: best final validation among survivors.
  size_t best = remaining[0];
  for (size_t pos : remaining) {
    if (runs[pos].val_accuracy.back() > runs[best].val_accuracy.back()) {
      best = pos;
    }
  }
  outcome.selected_model = candidates[best];
  outcome.selected_accuracy = runs[best].final_test();
  return outcome;
}

}  // namespace tps
