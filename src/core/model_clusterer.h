#ifndef TPS_CORE_MODEL_CLUSTERER_H_
#define TPS_CORE_MODEL_CLUSTERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/cluster_result.h"
#include "core/performance_matrix.h"
#include "index/recall_index.h"
#include "matrix/matrix.h"
#include "model/zoo.h"
#include "util/statusor.h"

namespace tps {

/// How model-to-model similarity is measured before clustering.
enum class ModelSimilarityKind {
  /// The paper's Eq. 1: 1 - mean of the top-k largest per-benchmark
  /// accuracy differences, computed from the performance matrix.
  kPerformance,
  /// Baseline of Table I: cosine similarity of embedded model-card text.
  kTextCard,
};

enum class ClusterAlgorithm {
  /// Agglomerative, average linkage — the paper's winning configuration.
  kHierarchical,
  kKMeans,
};

struct ModelClusteringOptions {
  ModelSimilarityKind similarity = ModelSimilarityKind::kPerformance;
  ClusterAlgorithm algorithm = ClusterAlgorithm::kHierarchical;
  /// Eq. 1 top-k (Appendix D fixes k = 5).
  size_t top_k = 5;
  /// Cluster count. For k-means this is k (must be > 0). For hierarchical,
  /// > 0 merges to exactly that many clusters; 0 cuts the dendrogram at
  /// `distance_threshold` instead (how the paper obtains a natural mix of
  /// singleton and non-singleton clusters).
  int num_clusters = 0;
  double distance_threshold = 0.085;
  uint64_t seed = 42;
};

/// A clustering of the model repository plus everything the recall phase
/// needs: per-cluster representatives and the singleton split.
struct ModelClustering {
  ClusteringResult clusters;
  /// Per cluster: index (into the zoo) of the representative model — the
  /// member with the highest average benchmark accuracy.
  std::vector<size_t> representatives;
  /// Pairwise model distance matrix the clustering ran on.
  Matrix distances;
  /// Options used (for reporting).
  ModelClusteringOptions options;

  /// Ids of clusters with more than one member, ascending.
  std::vector<int> NonSingletonClusters() const;
  /// Ids of clusters with exactly one member, ascending.
  std::vector<int> SingletonClusters() const;
  bool IsSingletonModel(size_t model_index) const;
  int ClusterOf(size_t model_index) const;
};

/// Clusters the model repository. The performance matrix provides Eq. 1
/// features and the average-accuracy representative rule; the zoo provides
/// model cards for the text baseline. Fails if sizes disagree or options
/// are invalid.
StatusOr<ModelClustering> ClusterModels(const PerformanceMatrix& matrix,
                                        const ModelZoo& zoo,
                                        const ModelClusteringOptions& options);

/// Bridges between the clustering artifact and the recall index subsystem
/// (src/index/), in both directions:
///
/// A brute-force oracle index over an existing clustering's partitions.
/// Vectors, priors, assignments, representatives and the Eq. 1 top-k all
/// come from the clustering + matrix pair, so recall through the returned
/// index is bit-identical to the legacy clustering sweep
/// (tests/index/index_equivalence_test.cc).
StatusOr<BruteForceRecallIndex> IndexFromClustering(
    const PerformanceMatrix& matrix, const ModelClustering& clustering);

/// A ModelClustering over a recall index's partitions (assignments +
/// representatives; no O(n^2) distance matrix — generated zoos are too
/// large for one). This is how large generated zoos get a serving
/// clustering: the index partitioning doubles as the cluster structure,
/// so the legacy recall path over it is exactly the brute-force oracle
/// the indexed path is measured against. Fails if any partition is empty.
StatusOr<ModelClustering> ClusteringFromIndexStructure(
    const IndexStructure& structure);

/// Renders cluster membership as text lines ("C1 (size 5): a, b, ...") for
/// the Table II / Table XI harnesses. Singleton clusters are summarized at
/// the end unless `include_singletons`.
std::string FormatClusters(const ModelClustering& clustering,
                           const ModelZoo& zoo, bool include_singletons);

/// Serializes a clustering (assignments, representatives, options,
/// distance matrix) to the line-oriented text format (also used by the
/// model store).
std::string SerializeClustering(const ModelClustering& clustering);

/// Parses a clustering produced by SerializeClustering.
StatusOr<ModelClustering> DeserializeClustering(const std::string& text);

/// SerializeClustering to a file, so the offline artifact can be reused
/// across processes (see the tps_cli tool).
Status SaveClustering(const ModelClustering& clustering,
                      const std::string& path);

/// Restores a clustering written by SaveClustering.
StatusOr<ModelClustering> LoadClustering(const std::string& path);

}  // namespace tps

#endif  // TPS_CORE_MODEL_CLUSTERER_H_
