#ifndef TPS_CORE_CONVERGENCE_TREND_H_
#define TPS_CORE_CONVERGENCE_TREND_H_

#include <cstdint>
#include <vector>

#include "core/performance_matrix.h"
#include "util/statusor.h"

namespace tps {

/// One convergence trend CT(m)_t[x] of a model: a cluster of benchmark
/// datasets on which the model's training curve looks alike at stage t,
/// summarized by the mean validation accuracy at that stage and the mean
/// final test accuracy.
struct ConvergenceTrend {
  double mean_val = 0.0;
  double mean_final_test = 0.0;
  /// Benchmark dataset indices belonging to this trend.
  std::vector<size_t> dataset_indices;
};

struct TrendMinerOptions {
  /// Number of trend clusters c (the paper groups BERT-base's curves into
  /// ~4 groups, Fig. 4).
  int num_trends = 4;
  uint64_t seed = 7;
};

/// Mines convergence trends from a model's benchmark training curves and
/// predicts final performance from an observed validation accuracy
/// (Section IV.C, Eqs. 5-6).
class ConvergenceTrendMiner {
 public:
  /// `matrix` must outlive this object.
  ConvergenceTrendMiner(const PerformanceMatrix* matrix,
                        TrendMinerOptions options = TrendMinerOptions());

  /// Clusters the benchmark datasets by the model's validation accuracy at
  /// 0-based stage `stage` (clamped per dataset to its last epoch) into
  /// min(num_trends, #datasets) trends, sorted by ascending mean_val.
  StatusOr<std::vector<ConvergenceTrend>> MineTrends(size_t model_index,
                                                     int stage) const;

  /// Eq. 5: index of the trend whose mean validation accuracy is closest
  /// to `observed_val`. Requires a non-empty trend list.
  static size_t MatchTrend(const std::vector<ConvergenceTrend>& trends,
                           double observed_val);

  /// Eq. 6: predicted final test accuracy = mean final test of the matched
  /// trend. Requires a non-empty trend list.
  static double PredictFinal(const std::vector<ConvergenceTrend>& trends,
                             double observed_val);

  const TrendMinerOptions& options() const { return options_; }

 private:
  const PerformanceMatrix* matrix_;
  TrendMinerOptions options_;
};

}  // namespace tps

#endif  // TPS_CORE_CONVERGENCE_TREND_H_
