#ifndef TPS_DATA_REGISTRY_H_
#define TPS_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/dataset_spec.h"
#include "util/statusor.h"

namespace tps {

/// Spec lists mirroring the paper's dataset inventory (Section V.A and
/// Appendix C). Benchmark datasets build the performance matrix; target
/// datasets evaluate the framework. The two sets are disjoint.
///
/// The paper reports "40 x 24 trains" for NLP and "30 x 10" for CV but only
/// names 21 NLP / 6 CV benchmark datasets explicitly; we fill the gap with
/// datasets from the paper's own Appendix C inventory (paws, stsb_multi_mt,
/// SetFit/qnli, snacks) plus, for CV, four standard image-classification
/// benchmarks (cifar100, fashion_mnist, svhn, eurosat) — documented as a
/// substitution in DESIGN.md.
std::vector<DatasetSpec> NlpBenchmarkSpecs();
std::vector<DatasetSpec> NlpTargetSpecs();
std::vector<DatasetSpec> CvBenchmarkSpecs();
std::vector<DatasetSpec> CvTargetSpecs();

/// Owns materialized datasets and provides lookup by name and by
/// (domain, role).
class DatasetRegistry {
 public:
  /// Materializes the full paper inventory: 24 NLP benchmarks + 4 NLP
  /// targets + 10 CV benchmarks + 4 CV targets.
  static StatusOr<DatasetRegistry> CreatePaperInventory();

  /// Materializes an arbitrary spec list. Fails on duplicate names or
  /// invalid specs.
  static StatusOr<DatasetRegistry> Create(
      const std::vector<DatasetSpec>& specs);

  /// Pointer lookup by dataset name; NotFound if absent. The pointer stays
  /// valid for the registry's lifetime.
  StatusOr<const Dataset*> Find(const std::string& name) const;

  /// All benchmark datasets of a domain, in registration order.
  std::vector<const Dataset*> Benchmarks(TaskDomain domain) const;

  /// All target datasets of a domain, in registration order.
  std::vector<const Dataset*> Targets(TaskDomain domain) const;

  const std::vector<Dataset>& datasets() const { return datasets_; }
  size_t size() const { return datasets_.size(); }

 private:
  DatasetRegistry() = default;

  std::vector<Dataset> datasets_;
};

}  // namespace tps

#endif  // TPS_DATA_REGISTRY_H_
