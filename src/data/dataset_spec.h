#ifndef TPS_DATA_DATASET_SPEC_H_
#define TPS_DATA_DATASET_SPEC_H_

#include <string>
#include <vector>

namespace tps {

/// Machine-learning application domain, matching the paper's two tracks.
enum class TaskDomain { kNLP, kCV };

/// Whether a dataset belongs to the offline benchmark suite (used to build
/// the performance matrix and mine convergence trends) or is a held-out
/// target task the framework is evaluated on. The two sets are disjoint,
/// as in the paper.
enum class DatasetRole { kBenchmark, kTarget };

std::string ToString(TaskDomain domain);
std::string ToString(DatasetRole role);

/// Static description of a (simulated) dataset.
///
/// `tags` name the domain concepts the dataset carries (e.g., {"nli",
/// "english", "crowdsourced"}); they determine the dataset's latent domain
/// vector, so datasets sharing tags are close in the latent space — the
/// analogue of "MNLI and XNLI have overlapping domains" in the real world.
struct DatasetSpec {
  std::string name;
  TaskDomain domain = TaskDomain::kNLP;
  DatasetRole role = DatasetRole::kBenchmark;

  /// Size of the classification label space (>= 2).
  int num_labels = 2;

  /// Intrinsic hardness in [0, 1]; raises the noise floor and lowers the
  /// reachable accuracy ceiling.
  double difficulty = 0.5;

  /// Domain concept tags; drive the latent domain vector.
  std::vector<std::string> tags;

  /// Number of generated examples for proxy-score computation (the paper
  /// computes LEEP on a few hundred target examples).
  int num_examples = 256;

  /// Accuracy of trivial majority-class prediction. Defaults to balanced
  /// chance (1 / num_labels) when <= 0.
  double chance_accuracy = -1.0;

  /// Maximum accuracy reachable by an ideal model. Defaults to a value
  /// derived from difficulty when <= 0.
  double ceiling_accuracy = -1.0;

  /// Balanced-chance floor or the explicit override.
  double EffectiveChance() const {
    if (chance_accuracy > 0.0) return chance_accuracy;
    return 1.0 / static_cast<double>(num_labels);
  }

  /// Difficulty-derived ceiling or the explicit override.
  double EffectiveCeiling() const {
    if (ceiling_accuracy > 0.0) return ceiling_accuracy;
    return 0.99 - 0.30 * difficulty;
  }
};

}  // namespace tps

#endif  // TPS_DATA_DATASET_SPEC_H_
