#include "data/latent.h"

#include "matrix/vector_ops.h"
#include "util/rng.h"

namespace tps {
namespace latent {

uint64_t HashString(std::string_view text) {
  // FNV-1a, 64-bit.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t CombineSeeds(uint64_t a, uint64_t b) {
  // Boost-style hash combine, widened to 64 bits.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

std::vector<double> TagVector(std::string_view tag) {
  Rng rng(CombineSeeds(HashString("tps-tag"), HashString(tag)));
  std::vector<double> v(kDims);
  for (double& x : v) x = rng.Normal();
  vec::NormalizeInPlace(v);
  return v;
}

std::vector<double> MixTags(const std::vector<std::string>& tags,
                            double noise_scale, uint64_t noise_seed) {
  std::vector<double> mix(kDims, 0.0);
  for (const std::string& tag : tags) {
    const std::vector<double> tv = TagVector(tag);
    for (size_t i = 0; i < kDims; ++i) mix[i] += tv[i];
  }
  vec::NormalizeInPlace(mix);  // Unit-norm tag direction (zero if no tags).

  Rng rng(CombineSeeds(HashString("tps-mix-noise"), noise_seed));
  std::vector<double> noise(kDims);
  for (double& x : noise) x = rng.Normal();
  vec::NormalizeInPlace(noise);

  // Empty tag lists degenerate to a pure seeded random direction.
  const double scale = tags.empty() ? 1.0 : noise_scale;
  for (size_t i = 0; i < kDims; ++i) mix[i] += scale * noise[i];
  vec::NormalizeInPlace(mix);
  return mix;
}

std::vector<double> LabelVector(uint64_t entity_seed, int label) {
  Rng rng(CombineSeeds(CombineSeeds(HashString("tps-label"), entity_seed),
                       static_cast<uint64_t>(label) * 0x9e3779b97f4a7c15ULL +
                           1));
  std::vector<double> v(kDims);
  for (double& x : v) x = rng.Normal();
  vec::NormalizeInPlace(v);
  return v;
}

double AffinityFromCosine(double cosine) { return 0.5 * (cosine + 1.0); }

}  // namespace latent
}  // namespace tps
