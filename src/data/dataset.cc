#include "data/dataset.h"

#include "data/latent.h"
#include "matrix/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tps {

namespace {
// Mixture weights for example generation. The label component dominates so
// that class structure is linearly salient, mirroring the embedding spaces
// real pre-trained encoders produce.
constexpr double kDomainWeight = 0.6;
constexpr double kLabelWeight = 0.8;
constexpr double kNoiseWeight = 0.3;
}  // namespace

StatusOr<Dataset> Dataset::Create(const DatasetSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (spec.num_labels < 2) {
    return Status::InvalidArgument("dataset " + spec.name +
                                   " needs at least 2 labels");
  }
  if (spec.num_examples <= 0) {
    return Status::InvalidArgument("dataset " + spec.name +
                                   " needs at least 1 example");
  }
  if (spec.difficulty < 0.0 || spec.difficulty > 1.0) {
    return Status::InvalidArgument("dataset " + spec.name +
                                   " difficulty must be in [0, 1]");
  }

  Dataset ds;
  ds.spec_ = spec;
  ds.seed_ = latent::HashString(spec.name);
  ds.domain_vector_ = latent::MixTags(spec.tags, /*noise_scale=*/0.15,
                                      /*noise_seed=*/ds.seed_);

  ds.label_prototypes_.reserve(static_cast<size_t>(spec.num_labels));
  for (int y = 0; y < spec.num_labels; ++y) {
    ds.label_prototypes_.push_back(latent::LabelVector(ds.seed_, y));
  }

  Rng rng(latent::CombineSeeds(ds.seed_, latent::HashString("examples")));
  ds.examples_.reserve(static_cast<size_t>(spec.num_examples));
  for (int i = 0; i < spec.num_examples; ++i) {
    // Round-robin labels so every class is populated even for small sample
    // counts; real proxy-score sampling is stratified the same way.
    const int label = i % spec.num_labels;
    Example ex;
    ex.label = label;
    ex.features.resize(latent::kDims);
    const std::vector<double>& proto =
        ds.label_prototypes_[static_cast<size_t>(label)];
    // Per-example idiosyncratic direction (unit norm, then scaled), so the
    // noise weight is relative to the unit-norm signal components. Harder
    // datasets have noisier examples.
    const double noise_scale = kNoiseWeight * (0.6 + 0.8 * spec.difficulty);
    std::vector<double> noise(latent::kDims);
    for (double& v : noise) v = rng.Normal();
    vec::NormalizeInPlace(noise);
    for (size_t d = 0; d < latent::kDims; ++d) {
      ex.features[d] = kDomainWeight * ds.domain_vector_[d] +
                       kLabelWeight * proto[d] + noise_scale * noise[d];
    }
    vec::NormalizeInPlace(ex.features);
    ds.examples_.push_back(std::move(ex));
  }
  return ds;
}

const std::vector<double>& Dataset::label_prototype(int label) const {
  TPS_CHECK(label >= 0 &&
            static_cast<size_t>(label) < label_prototypes_.size());
  return label_prototypes_[static_cast<size_t>(label)];
}

std::string ToString(TaskDomain domain) {
  return domain == TaskDomain::kNLP ? "NLP" : "CV";
}

std::string ToString(DatasetRole role) {
  return role == DatasetRole::kBenchmark ? "benchmark" : "target";
}

}  // namespace tps
