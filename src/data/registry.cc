#include "data/registry.h"

#include <algorithm>
#include <unordered_set>

namespace tps {

namespace {

/// Builds one spec. `chance` and `ceiling` <= 0 mean "use derived default".
DatasetSpec MakeSpec(std::string name, TaskDomain domain, DatasetRole role,
                     int num_labels, double difficulty,
                     std::vector<std::string> tags, double chance = -1.0,
                     double ceiling = -1.0) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.domain = domain;
  spec.role = role;
  spec.num_labels = num_labels;
  spec.difficulty = difficulty;
  spec.tags = std::move(tags);
  spec.chance_accuracy = chance;
  spec.ceiling_accuracy = ceiling;
  // Keep at least a few examples per class for proxy-score estimation.
  spec.num_examples = std::max(256, 4 * num_labels);
  return spec;
}

}  // namespace

std::vector<DatasetSpec> NlpBenchmarkSpecs() {
  const TaskDomain d = TaskDomain::kNLP;
  const DatasetRole r = DatasetRole::kBenchmark;
  return {
      // GLUE.
      MakeSpec("cola", d, r, 2, 0.55, {"english", "grammar", "acceptability"}),
      MakeSpec("mrpc", d, r, 2, 0.45, {"english", "paraphrase", "news"}),
      MakeSpec("qnli", d, r, 2, 0.40, {"english", "qa", "nli", "wikipedia"}),
      MakeSpec("qqp", d, r, 2, 0.35,
               {"english", "paraphrase", "questions", "web"}),
      MakeSpec("rte", d, r, 2, 0.60, {"english", "nli", "news"}),
      MakeSpec("sst2", d, r, 2, 0.30, {"english", "sentiment", "movies"}),
      MakeSpec("stsb", d, r, 6, 0.50, {"english", "similarity", "news"}),
      MakeSpec("wnli", d, r, 2, 0.70, {"english", "nli", "coreference"}),
      // SuperGLUE.
      MakeSpec("cb", d, r, 3, 0.60, {"english", "nli", "discourse"}),
      MakeSpec("copa", d, r, 2, 0.55, {"english", "commonsense", "causal"}),
      MakeSpec("wic", d, r, 2, 0.60, {"english", "word-sense", "lexical"}),
      // Domain-specific HuggingFace datasets named in Section V.A.
      MakeSpec("imdb", d, r, 2, 0.30,
               {"english", "sentiment", "movies", "reviews"}),
      MakeSpec("yelp_review_full", d, r, 5, 0.50,
               {"english", "sentiment", "reviews", "business"}),
      MakeSpec("yahoo_answers_topics", d, r, 10, 0.45,
               {"english", "topic", "qa", "web"}),
      MakeSpec("dbpedia_14", d, r, 14, 0.30,
               {"english", "topic", "encyclopedia"}),
      MakeSpec("xnli", d, r, 3, 0.55, {"multilingual", "nli", "crowdsourced"}),
      MakeSpec("anli", d, r, 3, 0.70, {"english", "nli", "adversarial"}),
      MakeSpec("app_reviews", d, r, 5, 0.50,
               {"english", "sentiment", "reviews", "apps"}),
      MakeSpec("trec", d, r, 6, 0.40, {"english", "questions", "topic"}),
      MakeSpec("sick", d, r, 3, 0.45, {"english", "nli", "similarity"}),
      MakeSpec("financial_phrasebank", d, r, 3, 0.50,
               {"english", "sentiment", "finance", "news"}),
      // Appendix C additions to reach the paper's 24 benchmark trains.
      MakeSpec("paws", d, r, 2, 0.55, {"english", "paraphrase", "wikipedia"}),
      MakeSpec("stsb_multi_mt", d, r, 6, 0.55,
               {"multilingual", "similarity", "news"}),
      MakeSpec("setfit_qnli", d, r, 2, 0.45,
               {"english", "qa", "nli", "wikipedia"}),
  };
}

std::vector<DatasetSpec> NlpTargetSpecs() {
  const TaskDomain d = TaskDomain::kNLP;
  const DatasetRole r = DatasetRole::kTarget;
  return {
      MakeSpec("tweet_eval", d, r, 3, 0.55,
               {"english", "sentiment", "twitter", "social-media"},
               /*chance=*/0.42, /*ceiling=*/0.67),
      MakeSpec("mnli", d, r, 3, 0.50,
               {"english", "nli", "crowdsourced", "multi-genre"},
               /*chance=*/0.35, /*ceiling=*/0.87),
      MakeSpec("multirc", d, r, 2, 0.65,
               {"english", "qa", "reading-comprehension", "multi-sentence"},
               /*chance=*/0.55, /*ceiling=*/0.65),
      MakeSpec("boolq", d, r, 2, 0.55,
               {"english", "qa", "yes-no", "wikipedia"},
               /*chance=*/0.62, /*ceiling=*/0.74),
  };
}

std::vector<DatasetSpec> CvBenchmarkSpecs() {
  const TaskDomain d = TaskDomain::kCV;
  const DatasetRole r = DatasetRole::kBenchmark;
  return {
      MakeSpec("food101", d, r, 101, 0.50,
               {"natural-images", "food", "fine-grained"}),
      MakeSpec("cub_birds", d, r, 200, 0.60,
               {"natural-images", "birds", "fine-grained"}),
      MakeSpec("cats_vs_dogs", d, r, 2, 0.20,
               {"natural-images", "animals", "pets"}),
      MakeSpec("cifar10", d, r, 10, 0.30,
               {"natural-images", "objects", "low-resolution"}),
      MakeSpec("mnist", d, r, 10, 0.10, {"digits", "grayscale",
                                         "handwriting"}),
      MakeSpec("snacks", d, r, 20, 0.45, {"natural-images", "food"}),
      // Standard fillers to reach the paper's 10 CV benchmark trains (the
      // paper names only six CV datasets; see DESIGN.md).
      MakeSpec("cifar100", d, r, 100, 0.55,
               {"natural-images", "objects", "low-resolution"}),
      MakeSpec("fashion_mnist", d, r, 10, 0.30,
               {"grayscale", "clothing", "icons"}),
      MakeSpec("svhn", d, r, 10, 0.35, {"digits", "street", "natural-images"}),
      MakeSpec("eurosat", d, r, 10, 0.40,
               {"satellite", "land-use", "remote-sensing"}),
  };
}

std::vector<DatasetSpec> CvTargetSpecs() {
  const TaskDomain d = TaskDomain::kCV;
  const DatasetRole r = DatasetRole::kTarget;
  return {
      MakeSpec("chest_xray", d, r, 2, 0.35,
               {"medical", "xray", "grayscale", "radiology"},
               /*chance=*/0.73, /*ceiling=*/0.975),
      MakeSpec("medmnist", d, r, 9, 0.60,
               {"medical", "biomedical", "low-resolution"},
               /*chance=*/0.18, /*ceiling=*/0.80),
      MakeSpec("oxford_flowers", d, r, 102, 0.45,
               {"natural-images", "flowers", "fine-grained"},
               /*chance=*/0.02, /*ceiling=*/0.99),
      MakeSpec("beans", d, r, 3, 0.30,
               {"natural-images", "plants", "leaves", "agriculture"},
               /*chance=*/0.34, /*ceiling=*/0.975),
  };
}

StatusOr<DatasetRegistry> DatasetRegistry::CreatePaperInventory() {
  std::vector<DatasetSpec> specs;
  for (auto* list : {&NlpBenchmarkSpecs, &NlpTargetSpecs, &CvBenchmarkSpecs,
                     &CvTargetSpecs}) {
    std::vector<DatasetSpec> part = (*list)();
    specs.insert(specs.end(), part.begin(), part.end());
  }
  return Create(specs);
}

StatusOr<DatasetRegistry> DatasetRegistry::Create(
    const std::vector<DatasetSpec>& specs) {
  DatasetRegistry registry;
  std::unordered_set<std::string> seen;
  registry.datasets_.reserve(specs.size());
  for (const DatasetSpec& spec : specs) {
    if (!seen.insert(spec.name).second) {
      return Status::AlreadyExists("duplicate dataset name: " + spec.name);
    }
    TPS_ASSIGN_OR_RETURN(Dataset ds, Dataset::Create(spec));
    registry.datasets_.push_back(std::move(ds));
  }
  return registry;
}

StatusOr<const Dataset*> DatasetRegistry::Find(const std::string& name) const {
  for (const Dataset& ds : datasets_) {
    if (ds.name() == name) return &ds;
  }
  return Status::NotFound("dataset not found: " + name);
}

std::vector<const Dataset*> DatasetRegistry::Benchmarks(
    TaskDomain domain) const {
  std::vector<const Dataset*> out;
  for (const Dataset& ds : datasets_) {
    if (ds.spec().domain == domain &&
        ds.spec().role == DatasetRole::kBenchmark) {
      out.push_back(&ds);
    }
  }
  return out;
}

std::vector<const Dataset*> DatasetRegistry::Targets(TaskDomain domain) const {
  std::vector<const Dataset*> out;
  for (const Dataset& ds : datasets_) {
    if (ds.spec().domain == domain && ds.spec().role == DatasetRole::kTarget) {
      out.push_back(&ds);
    }
  }
  return out;
}

}  // namespace tps
