#ifndef TPS_DATA_DATASET_H_
#define TPS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/dataset_spec.h"
#include "util/statusor.h"

namespace tps {

/// One labelled example: a feature vector in the latent space plus its
/// class label. Features stand in for the input embedding a real model
/// would see.
struct Example {
  std::vector<double> features;
  int label = 0;
};

/// A materialized (simulated) dataset: a spec, a latent domain vector, and
/// generated labelled examples.
///
/// Example generation: each label has a prototype direction; an example of
/// label y is normalize(w_domain * theta_d + w_label * proto_y + w_noise *
/// noise). The label component dominates (class structure is salient, as in
/// real embedding spaces); the domain component ties all examples of a
/// dataset together; the noise term creates intra-class spread.
class Dataset {
 public:
  /// Builds the dataset deterministically from its spec. Fails on invalid
  /// specs (fewer than 2 labels, no examples, empty name).
  static StatusOr<Dataset> Create(const DatasetSpec& spec);

  const DatasetSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  const std::vector<Example>& examples() const { return examples_; }
  size_t size() const { return examples_.size(); }

  /// The dataset's latent domain vector (unit norm).
  const std::vector<double>& domain_vector() const { return domain_vector_; }

  /// Prototype direction of label y (unit norm). y in [0, num_labels).
  const std::vector<double>& label_prototype(int label) const;

  /// Deterministic seed derived from the dataset name; used to key all of
  /// the dataset's internal randomness.
  uint64_t seed() const { return seed_; }

 private:
  Dataset() = default;

  DatasetSpec spec_;
  uint64_t seed_ = 0;
  std::vector<double> domain_vector_;
  std::vector<std::vector<double>> label_prototypes_;
  std::vector<Example> examples_;
};

}  // namespace tps

#endif  // TPS_DATA_DATASET_H_
