#ifndef TPS_DATA_LATENT_H_
#define TPS_DATA_LATENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tps {

/// The shared latent semantic space that the dataset and model simulators
/// live in.
///
/// The paper's experiments run over real HuggingFace models and datasets
/// whose transfer behaviour is driven by *domain overlap* (e.g., models
/// fine-tuned on QQP transfer well to paraphrase tasks). We reproduce that
/// driver with an explicit geometry: every domain concept ("nli",
/// "sentiment", "finance", "natural-images", ...) is a deterministic unit
/// vector, and datasets/models are (noisy) mixtures of the concepts they
/// carry. Cosine similarity in this space plays the role the latent "domain
/// distribution distance" plays in the real world.
namespace latent {

/// Dimensionality of the latent space. Large enough that unrelated concepts
/// are near-orthogonal (random-pair cosine stddev 1/sqrt(kDims) = 0.125),
/// small enough to keep simulation cheap.
inline constexpr size_t kDims = 64;

/// FNV-1a 64-bit hash; the deterministic seed source for all latent vectors.
uint64_t HashString(std::string_view text);

/// Combines two seeds into a new well-mixed seed.
uint64_t CombineSeeds(uint64_t a, uint64_t b);

/// Deterministic unit vector for a concept tag. The same tag always maps to
/// the same direction, across processes and platforms.
std::vector<double> TagVector(std::string_view tag);

/// Unit-normalized noisy mixture of tag vectors:
///   normalize(normalize(mean(TagVector(tag))) + noise_scale * u)
/// where u is a seeded random *unit* vector, so `noise_scale` is the
/// relative weight of idiosyncratic direction vs shared tag direction
/// (two mixes of the same tags have cosine ~ 1/(1+noise_scale^2)).
/// Empty tags yield a pure seeded random unit vector.
std::vector<double> MixTags(const std::vector<std::string>& tags,
                            double noise_scale, uint64_t noise_seed);

/// Deterministic unit vector for label `label` of the entity seeded by
/// `entity_seed` (dataset label prototypes, model source-label prototypes).
std::vector<double> LabelVector(uint64_t entity_seed, int label);

/// Cosine similarity mapped to [0, 1]: (cos + 1) / 2.
double AffinityFromCosine(double cosine);

}  // namespace latent
}  // namespace tps

#endif  // TPS_DATA_LATENT_H_
