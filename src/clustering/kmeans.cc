#include "clustering/kmeans.h"

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace tps {

namespace {

double SquaredDistance(const Matrix& points, size_t row,
                       const Matrix& centroids, size_t centroid) {
  double d2 = 0.0;
  for (size_t c = 0; c < points.cols(); ++c) {
    const double diff = points.At(row, c) - centroids.At(centroid, c);
    d2 += diff * diff;
  }
  return d2;
}

/// k-means++ seeding: first centroid uniform, subsequent ones with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
Matrix SeedCentroids(const Matrix& points, int k, Rng& rng) {
  const size_t n = points.rows();
  Matrix centroids(static_cast<size_t>(k), points.cols());
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());

  size_t first = static_cast<size_t>(rng.UniformInt(n));
  centroids.SetRow(0, points.Row(first));
  for (int c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      const double d2 =
          SquaredDistance(points, i, centroids, static_cast<size_t>(c - 1));
      if (d2 < min_d2[i]) min_d2[i] = d2;
    }
    const size_t chosen = rng.Categorical(min_d2);
    centroids.SetRow(static_cast<size_t>(c), points.Row(chosen));
  }
  return centroids;
}

KMeansResult RunOnce(const Matrix& points, const KMeansOptions& options,
                     Rng& rng) {
  const size_t n = points.rows();
  const size_t k = static_cast<size_t>(options.num_clusters);
  Matrix centroids = SeedCentroids(points, options.num_clusters, rng);

  KMeansResult result;
  result.clustering.assignments.assign(n, 0);
  result.clustering.num_clusters = options.num_clusters;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d2 = SquaredDistance(points, i, centroids, 0);
      for (size_t c = 1; c < k; ++c) {
        const double d2 = SquaredDistance(points, i, centroids, c);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.clustering.assignments[i] != static_cast<int>(best)) {
        result.clustering.assignments[i] = static_cast<int>(best);
        changed = true;
      }
    }
    // Update step.
    Matrix sums(k, points.cols(), 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c =
          static_cast<size_t>(result.clustering.assignments[i]);
      ++counts[c];
      for (size_t d = 0; d < points.cols(); ++d) {
        sums.At(c, d) += points.At(i, d);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its
        // current centroid.
        size_t farthest = 0;
        double farthest_d2 = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const size_t a =
              static_cast<size_t>(result.clustering.assignments[i]);
          const double d2 = SquaredDistance(points, i, centroids, a);
          if (d2 > farthest_d2) {
            farthest_d2 = d2;
            farthest = i;
          }
        }
        centroids.SetRow(c, points.Row(farthest));
        result.clustering.assignments[farthest] = static_cast<int>(c);
        changed = true;
        continue;
      }
      for (size_t d = 0; d < points.cols(); ++d) {
        centroids.At(c, d) = sums.At(c, d) / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points, i, centroids,
        static_cast<size_t>(result.clustering.assignments[i]));
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const Matrix& points,
                              const KMeansOptions& options) {
  if (options.num_clusters < 1) {
    return Status::InvalidArgument("KMeans needs num_clusters >= 1");
  }
  if (points.rows() < static_cast<size_t>(options.num_clusters)) {
    return Status::InvalidArgument("KMeans needs at least k points");
  }
  if (options.max_iterations < 1 || options.restarts < 1) {
    return Status::InvalidArgument(
        "KMeans needs positive max_iterations and restarts");
  }

  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < options.restarts; ++r) {
    Rng run_rng = rng.Fork();
    KMeansResult candidate = RunOnce(points, options, run_rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

StatusOr<KMeansResult> KMeans1D(const std::vector<double>& values,
                                const KMeansOptions& options) {
  Matrix points(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) points.At(i, 0) = values[i];
  return KMeans(points, options);
}

}  // namespace tps
