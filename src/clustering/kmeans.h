#ifndef TPS_CLUSTERING_KMEANS_H_
#define TPS_CLUSTERING_KMEANS_H_

#include <cstdint>

#include "clustering/cluster_result.h"
#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

struct KMeansOptions {
  int num_clusters = 8;
  int max_iterations = 100;
  /// Independent k-means++ restarts; the lowest-inertia run wins.
  int restarts = 8;
  uint64_t seed = 42;
};

struct KMeansResult {
  ClusteringResult clustering;
  /// Final cluster centroids (num_clusters x dims).
  Matrix centroids;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding and multiple restarts over the
/// rows of `points`. Empty clusters are re-seeded with the point farthest
/// from its centroid. Fails if there are fewer points than clusters or
/// options are invalid.
StatusOr<KMeansResult> KMeans(const Matrix& points,
                              const KMeansOptions& options);

/// One-dimensional convenience overload (used by convergence-trend mining,
/// which clusters scalar validation accuracies).
StatusOr<KMeansResult> KMeans1D(const std::vector<double>& values,
                                const KMeansOptions& options);

}  // namespace tps

#endif  // TPS_CLUSTERING_KMEANS_H_
