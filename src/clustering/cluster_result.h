#ifndef TPS_CLUSTERING_CLUSTER_RESULT_H_
#define TPS_CLUSTERING_CLUSTER_RESULT_H_

#include <cstddef>
#include <vector>

namespace tps {

/// A flat clustering of n items into labelled clusters 0..num_clusters-1.
struct ClusteringResult {
  /// assignments[i] is item i's cluster id, in [0, num_clusters).
  std::vector<int> assignments;
  int num_clusters = 0;

  size_t num_items() const { return assignments.size(); }

  /// Item indices belonging to cluster `c`, in item order.
  std::vector<size_t> Members(int c) const {
    std::vector<size_t> members;
    for (size_t i = 0; i < assignments.size(); ++i) {
      if (assignments[i] == c) members.push_back(i);
    }
    return members;
  }

  /// Per-cluster sizes, indexed by cluster id.
  std::vector<size_t> Sizes() const {
    std::vector<size_t> sizes(static_cast<size_t>(num_clusters), 0);
    for (int a : assignments) {
      if (a >= 0 && a < num_clusters) ++sizes[static_cast<size_t>(a)];
    }
    return sizes;
  }

  /// Number of clusters with exactly one member.
  size_t NumSingletons() const {
    size_t singletons = 0;
    for (size_t s : Sizes()) {
      if (s == 1) ++singletons;
    }
    return singletons;
  }
};

}  // namespace tps

#endif  // TPS_CLUSTERING_CLUSTER_RESULT_H_
