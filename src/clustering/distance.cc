#include "clustering/distance.h"

#include "matrix/vector_ops.h"

namespace tps {

double PerformanceSimilarity(const std::vector<double>& a,
                             const std::vector<double>& b, size_t top_k) {
  return 1.0 - vec::MeanOfTopK(vec::AbsDiff(a, b), top_k);
}

double PerformanceSimilarity(const double* a, const double* b, size_t dims,
                             size_t top_k, std::vector<double>& scratch) {
  scratch.resize(dims);
  vec::AbsDiffInto(a, b, dims, scratch.data());
  return 1.0 - vec::MeanOfTopKInPlace(scratch.data(), dims, top_k);
}

double Distance(const std::vector<double>& a, const std::vector<double>& b,
                DistanceMetric metric, size_t top_k) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return vec::EuclideanDistance(a, b);
    case DistanceMetric::kCosine:
      return 1.0 - vec::CosineSimilarity(a, b);
    case DistanceMetric::kTopKAbsDiff:
      return 1.0 - PerformanceSimilarity(a, b, top_k);
  }
  return 0.0;
}

StatusOr<Matrix> PairwiseDistances(const Matrix& rows, DistanceMetric metric,
                                   size_t top_k) {
  std::vector<std::vector<double>> vectors;
  vectors.reserve(rows.rows());
  for (size_t i = 0; i < rows.rows(); ++i) vectors.push_back(rows.Row(i));
  return PairwiseDistances(vectors, metric, top_k);
}

StatusOr<Matrix> PairwiseDistances(
    const std::vector<std::vector<double>>& vectors, DistanceMetric metric,
    size_t top_k) {
  if (vectors.empty()) {
    return Status::InvalidArgument("PairwiseDistances needs >= 1 vector");
  }
  const size_t dims = vectors[0].size();
  for (const auto& v : vectors) {
    if (v.size() != dims) {
      return Status::InvalidArgument("PairwiseDistances got ragged vectors");
    }
  }
  const size_t n = vectors.size();
  Matrix distances(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = Distance(vectors[i], vectors[j], metric, top_k);
      distances.At(i, j) = d;
      distances.At(j, i) = d;
    }
  }
  return distances;
}

}  // namespace tps
