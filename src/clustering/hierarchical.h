#ifndef TPS_CLUSTERING_HIERARCHICAL_H_
#define TPS_CLUSTERING_HIERARCHICAL_H_

#include <vector>

#include "clustering/cluster_result.h"
#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

enum class Linkage {
  kSingle,
  kComplete,
  /// Unweighted average linkage (UPGMA) — the configuration used for the
  /// paper's Table II clustering.
  kAverage,
};

struct HierarchicalOptions {
  Linkage linkage = Linkage::kAverage;
  /// Stop merging when this many clusters remain. <= 0 means "ignore"; then
  /// distance_threshold governs.
  int num_clusters = 0;
  /// Stop merging when the next merge's linkage distance would exceed this.
  /// Ignored (merge to num_clusters) when num_clusters > 0.
  double distance_threshold = 0.0;
};

/// One agglomeration step of the dendrogram.
struct MergeStep {
  /// Cluster ids merged (dendrogram numbering: leaves are 0..n-1, the i-th
  /// merge creates cluster n+i).
  int left = 0;
  int right = 0;
  /// Linkage distance at which the merge happened.
  double distance = 0.0;
};

struct HierarchicalResult {
  ClusteringResult clustering;
  /// The full merge history up to (but excluding) the first merge that the
  /// stopping rule rejected.
  std::vector<MergeStep> merges;
};

/// Agglomerative clustering over a precomputed symmetric distance matrix
/// (Lance-Williams updates). Fails if the matrix is not square/symmetric
/// or the options are inconsistent.
StatusOr<HierarchicalResult> HierarchicalCluster(
    const Matrix& distances, const HierarchicalOptions& options);

}  // namespace tps

#endif  // TPS_CLUSTERING_HIERARCHICAL_H_
