#include "clustering/rand_index.h"

namespace tps {

namespace {

Status ValidatePair(const ClusteringResult& a, const ClusteringResult& b) {
  if (a.assignments.size() != b.assignments.size()) {
    return Status::InvalidArgument("clusterings cover different item counts");
  }
  if (a.assignments.size() < 2) {
    return Status::InvalidArgument("Rand index needs at least 2 items");
  }
  return Status::OK();
}

double PairsOf(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

StatusOr<double> RandIndex(const ClusteringResult& a,
                           const ClusteringResult& b) {
  TPS_RETURN_NOT_OK(ValidatePair(a, b));
  const size_t n = a.assignments.size();
  double agree = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool same_a = a.assignments[i] == a.assignments[j];
      const bool same_b = b.assignments[i] == b.assignments[j];
      if (same_a == same_b) agree += 1.0;
    }
  }
  return agree / PairsOf(static_cast<double>(n));
}

StatusOr<double> AdjustedRandIndex(const ClusteringResult& a,
                                   const ClusteringResult& b) {
  TPS_RETURN_NOT_OK(ValidatePair(a, b));
  const size_t n = a.assignments.size();
  const size_t ka = static_cast<size_t>(a.num_clusters);
  const size_t kb = static_cast<size_t>(b.num_clusters);

  // Contingency table.
  std::vector<std::vector<double>> table(ka, std::vector<double>(kb, 0.0));
  std::vector<double> row_sums(ka, 0.0);
  std::vector<double> col_sums(kb, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t ra = static_cast<size_t>(a.assignments[i]);
    const size_t cb = static_cast<size_t>(b.assignments[i]);
    if (ra >= ka || cb >= kb) {
      return Status::OutOfRange("cluster assignment out of range");
    }
    table[ra][cb] += 1.0;
    row_sums[ra] += 1.0;
    col_sums[cb] += 1.0;
  }

  double index = 0.0;
  for (const auto& row : table) {
    for (double cell : row) index += PairsOf(cell);
  }
  double row_pairs = 0.0;
  for (double s : row_sums) row_pairs += PairsOf(s);
  double col_pairs = 0.0;
  for (double s : col_sums) col_pairs += PairsOf(s);
  const double total_pairs = PairsOf(static_cast<double>(n));
  const double expected = row_pairs * col_pairs / total_pairs;
  const double max_index = 0.5 * (row_pairs + col_pairs);
  if (max_index == expected) {
    // Both partitions are all-singletons or one cluster: define as 1 when
    // identical structure, else 0.
    return index == expected ? 1.0 : 0.0;
  }
  return (index - expected) / (max_index - expected);
}

}  // namespace tps
