#ifndef TPS_CLUSTERING_DISTANCE_H_
#define TPS_CLUSTERING_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

/// Distance metrics over row vectors.
enum class DistanceMetric {
  kEuclidean,
  /// 1 - cosine similarity (in [0, 2]).
  kCosine,
  /// The paper's Eq. 1 distance: mean of the top-k largest absolute
  /// per-coordinate differences (so similarity = 1 - distance).
  kTopKAbsDiff,
};

/// The paper's Eq. 1 model similarity:
///   sim(m1, m2) = 1 - avg(top_k |vec(m1) - vec(m2)|).
/// `top_k` is clamped to [1, dims]. Both vectors must have equal size.
double PerformanceSimilarity(const std::vector<double>& a,
                             const std::vector<double>& b, size_t top_k);

/// Batch form of PerformanceSimilarity for hot loops that compare one
/// vector against many: callers pass raw equal-length rows plus a reusable
/// scratch buffer, so the per-pair |a-b| temporary is allocated once per
/// sweep instead of once per pair. Bit-identical to the vector overload
/// (same AbsDiff then mean-of-top-k arithmetic; the differential kernel
/// harness pins it).
double PerformanceSimilarity(const double* a, const double* b, size_t dims,
                             size_t top_k, std::vector<double>& scratch);

/// Distance between two vectors under `metric` (`top_k` applies only to
/// kTopKAbsDiff).
double Distance(const std::vector<double>& a, const std::vector<double>& b,
                DistanceMetric metric, size_t top_k = 5);

/// Symmetric pairwise-distance matrix over the rows of `rows`.
StatusOr<Matrix> PairwiseDistances(const Matrix& rows, DistanceMetric metric,
                                   size_t top_k = 5);

/// Symmetric pairwise-distance matrix from explicit vectors (one per item).
/// Fails if vectors are ragged or empty.
StatusOr<Matrix> PairwiseDistances(
    const std::vector<std::vector<double>>& vectors, DistanceMetric metric,
    size_t top_k = 5);

}  // namespace tps

#endif  // TPS_CLUSTERING_DISTANCE_H_
