#include "clustering/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tps {

namespace {

/// Lance-Williams linkage update when clusters a (size na) and b (size nb)
/// merge: distance from the merged cluster to cluster c.
double MergedDistance(Linkage linkage, double dac, double dbc, size_t na,
                      size_t nb) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dac, dbc);
    case Linkage::kComplete:
      return std::max(dac, dbc);
    case Linkage::kAverage: {
      const double wa = static_cast<double>(na);
      const double wb = static_cast<double>(nb);
      return (wa * dac + wb * dbc) / (wa + wb);
    }
  }
  return dac;
}

}  // namespace

StatusOr<HierarchicalResult> HierarchicalCluster(
    const Matrix& distances, const HierarchicalOptions& options) {
  const size_t n = distances.rows();
  if (n == 0 || distances.cols() != n) {
    return Status::InvalidArgument(
        "HierarchicalCluster needs a non-empty square distance matrix");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(distances.At(i, j) - distances.At(j, i)) > 1e-9) {
        return Status::InvalidArgument(
            "HierarchicalCluster needs a symmetric distance matrix");
      }
    }
  }
  if (options.num_clusters > static_cast<int>(n)) {
    return Status::InvalidArgument(
        "num_clusters exceeds the number of items");
  }
  if (options.num_clusters <= 0 && options.distance_threshold <= 0.0) {
    return Status::InvalidArgument(
        "set num_clusters > 0 or distance_threshold > 0");
  }

  // Active-cluster bookkeeping. `group[i]` is item i's current flat group;
  // `dendro_id` tracks the dendrogram numbering for merge records.
  Matrix d = distances;
  std::vector<bool> active(n, true);
  std::vector<size_t> sizes(n, 1);
  std::vector<int> group(n);
  std::vector<int> dendro_id(n);
  for (size_t i = 0; i < n; ++i) {
    group[i] = static_cast<int>(i);
    dendro_id[i] = static_cast<int>(i);
  }

  HierarchicalResult result;
  size_t num_active = n;
  const size_t target =
      options.num_clusters > 0 ? static_cast<size_t>(options.num_clusters)
                               : 1;

  int next_dendro = static_cast<int>(n);
  while (num_active > target) {
    // Find the closest active pair.
    size_t best_a = 0, best_b = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!active[b]) continue;
        if (d.At(a, b) < best_d) {
          best_d = d.At(a, b);
          best_a = a;
          best_b = b;
        }
      }
    }
    if (options.num_clusters <= 0 && best_d > options.distance_threshold) {
      break;  // Threshold stopping rule.
    }

    // Record the merge in dendrogram numbering.
    result.merges.push_back(
        MergeStep{dendro_id[best_a], dendro_id[best_b], best_d});
    dendro_id[best_a] = next_dendro++;

    // Fold best_b into best_a.
    for (size_t c = 0; c < n; ++c) {
      if (!active[c] || c == best_a || c == best_b) continue;
      const double merged = MergedDistance(options.linkage, d.At(best_a, c),
                                           d.At(best_b, c), sizes[best_a],
                                           sizes[best_b]);
      d.At(best_a, c) = merged;
      d.At(c, best_a) = merged;
    }
    sizes[best_a] += sizes[best_b];
    active[best_b] = false;
    const int from = group[best_b];
    const int to = group[best_a];
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == from) group[i] = to;
    }
    --num_active;
  }

  // Compact group labels to 0..num_active-1 in first-appearance order.
  std::vector<int> remap(n, -1);
  int next_label = 0;
  result.clustering.assignments.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = group[i];
    if (remap[static_cast<size_t>(g)] < 0) {
      remap[static_cast<size_t>(g)] = next_label++;
    }
    result.clustering.assignments[i] = remap[static_cast<size_t>(g)];
  }
  result.clustering.num_clusters = next_label;
  return result;
}

}  // namespace tps
