#ifndef TPS_CLUSTERING_RAND_INDEX_H_
#define TPS_CLUSTERING_RAND_INDEX_H_

#include "clustering/cluster_result.h"
#include "util/statusor.h"

namespace tps {

/// Rand index between two clusterings of the same items: the fraction of
/// item pairs on which the clusterings agree (both together or both apart).
/// In [0, 1]; 1 means identical partitions. Fails on size mismatch or
/// fewer than 2 items.
StatusOr<double> RandIndex(const ClusteringResult& a,
                           const ClusteringResult& b);

/// Adjusted Rand index (Hubert & Arabie): Rand index corrected for chance
/// agreement. 1 for identical partitions, ~0 for independent ones; can be
/// negative. Fails on size mismatch or fewer than 2 items.
StatusOr<double> AdjustedRandIndex(const ClusteringResult& a,
                                   const ClusteringResult& b);

}  // namespace tps

#endif  // TPS_CLUSTERING_RAND_INDEX_H_
