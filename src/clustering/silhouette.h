#ifndef TPS_CLUSTERING_SILHOUETTE_H_
#define TPS_CLUSTERING_SILHOUETTE_H_

#include "clustering/cluster_result.h"
#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {

/// Mean silhouette coefficient (Rousseeuw 1987) of a clustering over a
/// precomputed symmetric distance matrix — the clustering-quality metric of
/// the paper's Table I and Fig. 6.
///
/// For item i: a(i) = mean distance to its own cluster's other members,
/// b(i) = min over other clusters of the mean distance to that cluster,
/// s(i) = (b - a) / max(a, b). Members of singleton clusters contribute
/// s(i) = 0 (scikit-learn convention). Fails if the matrix is not square,
/// sizes mismatch, or fewer than 2 clusters are populated.
StatusOr<double> SilhouetteScore(const Matrix& distances,
                                 const ClusteringResult& clustering);

}  // namespace tps

#endif  // TPS_CLUSTERING_SILHOUETTE_H_
