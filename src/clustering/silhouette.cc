#include "clustering/silhouette.h"

#include <algorithm>
#include <limits>

namespace tps {

StatusOr<double> SilhouetteScore(const Matrix& distances,
                                 const ClusteringResult& clustering) {
  const size_t n = distances.rows();
  if (n == 0 || distances.cols() != n) {
    return Status::InvalidArgument(
        "SilhouetteScore needs a square distance matrix");
  }
  if (clustering.assignments.size() != n) {
    return Status::InvalidArgument(
        "SilhouetteScore assignments/matrix size mismatch");
  }
  const int k = clustering.num_clusters;
  if (k < 2) {
    return Status::InvalidArgument(
        "SilhouetteScore needs at least 2 clusters");
  }
  for (int a : clustering.assignments) {
    if (a < 0 || a >= k) {
      return Status::OutOfRange("cluster assignment out of range");
    }
  }
  const std::vector<size_t> sizes = clustering.Sizes();
  size_t populated = 0;
  for (size_t s : sizes) {
    if (s > 0) ++populated;
  }
  if (populated < 2) {
    return Status::InvalidArgument(
        "SilhouetteScore needs at least 2 populated clusters");
  }

  double total = 0.0;
  std::vector<double> sum_to_cluster(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    const size_t own = static_cast<size_t>(clustering.assignments[i]);
    if (sizes[own] <= 1) continue;  // Singleton: s(i) = 0.

    std::fill(sum_to_cluster.begin(), sum_to_cluster.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum_to_cluster[static_cast<size_t>(clustering.assignments[j])] +=
          distances.At(i, j);
    }
    const double a =
        sum_to_cluster[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, sum_to_cluster[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace tps
