#ifndef TPS_STORE_KV_STORE_H_
#define TPS_STORE_KV_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/record_log.h"
#include "util/statusor.h"

namespace tps {

/// Log-structured key-value store: the persistence layer of the model
/// store (the paper's future-work item 3 — an OLML-style system that
/// "stores and maintains the pre-trained models and datasets").
///
/// Design (a deliberately small cousin of the RocksDB WAL+memtable pair):
///  - every mutation is appended to a checksummed record log;
///  - the full key space lives in an in-memory ordered map;
///  - Open() rebuilds the map by replaying the log, stopping cleanly at a
///    torn tail (crash recovery);
///  - Compact() rewrites the log with only live entries and atomically
///    swaps it in, reclaiming space from overwrites and deletes.
///
/// Keys and values are arbitrary byte strings (values may contain \0).
/// Single-threaded by design; callers serialize access.
class KvStore {
 public:
  /// Opens (or creates) the store at `path`, replaying the existing log.
  static StatusOr<KvStore> Open(const std::string& path);

  KvStore(KvStore&&) = default;
  KvStore& operator=(KvStore&&) = default;
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Inserts or overwrites. Keys must be non-empty.
  Status Put(const std::string& key, const std::string& value);

  /// Value for `key`, or NotFound.
  StatusOr<std::string> Get(const std::string& key) const;

  /// Removes `key`; idempotent (deleting an absent key is OK).
  Status Delete(const std::string& key);

  bool Contains(const std::string& key) const;

  /// All keys with the given prefix, in lexicographic order.
  std::vector<std::string> ScanPrefix(const std::string& prefix) const;

  /// Number of live keys.
  size_t size() const { return table_.size(); }

  /// Log records written since Open (live + dead); drives compaction
  /// policy.
  size_t log_records() const { return log_records_; }

  /// Rewrites the log with only live entries (atomic rename swap).
  Status Compact();

  const std::string& path() const { return path_; }

 private:
  explicit KvStore(std::string path) : path_(std::move(path)) {}

  Status AppendMutation(char op, const std::string& key,
                        const std::string& value);

  std::string path_;
  std::map<std::string, std::string> table_;
  std::unique_ptr<RecordLogWriter> log_;
  size_t log_records_ = 0;
};

}  // namespace tps

#endif  // TPS_STORE_KV_STORE_H_
