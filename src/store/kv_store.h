#ifndef TPS_STORE_KV_STORE_H_
#define TPS_STORE_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/record_log.h"
#include "util/env.h"
#include "util/statusor.h"

namespace tps {

/// What Open() found and did while replaying the log — surfaced so
/// operators (and the crash-point tests) can observe recovery instead of
/// having it happen silently.
struct RecoveryStats {
  /// Mutation records replayed into the table.
  uint64_t records_replayed = 0;
  /// Byte offset of the end of the last valid record (the log's size
  /// after recovery).
  uint64_t valid_prefix_bytes = 0;
  /// Torn/corrupt tail bytes dropped by truncation (0 on a clean open).
  uint64_t bytes_truncated = 0;
  /// True when the log ended in a torn or corrupt record.
  bool tail_was_torn = false;

  /// One-line human-readable summary, e.g.
  /// "replayed 12 records (96 valid bytes), torn tail: truncated 5 bytes".
  std::string ToString() const;
};

/// Log-structured key-value store: the persistence layer of the model
/// store (the paper's future-work item 3 — an OLML-style system that
/// "stores and maintains the pre-trained models and datasets").
///
/// Design (a deliberately small cousin of the RocksDB WAL+memtable pair):
///  - every mutation is appended to a checksummed record log;
///  - the full key space lives in an in-memory ordered map;
///  - Open() rebuilds the map by replaying the log, truncates any torn
///    tail to the last valid record, and only then reopens the log for
///    append — so post-recovery writes land on a clean boundary and
///    survive the next replay (crash safety);
///  - Compact() rewrites the log with only live entries and atomically
///    swaps it in, reclaiming space from overwrites and deletes.
///
/// Keys and values are arbitrary byte strings (values may contain \0).
/// Single-threaded by design; callers serialize access. All file access
/// goes through `Env`, so tests can inject faults at any byte.
class KvStore {
 public:
  /// Opens (or creates) the store at `path`, replaying the existing log.
  /// `env` must outlive the store.
  static StatusOr<KvStore> Open(const std::string& path,
                                Env* env = Env::Default());

  KvStore(KvStore&&) = default;
  KvStore& operator=(KvStore&&) = default;
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Inserts or overwrites. Keys must be non-empty.
  Status Put(const std::string& key, const std::string& value);

  /// Value for `key`, or NotFound.
  StatusOr<std::string> Get(const std::string& key) const;

  /// Removes `key`; idempotent (deleting an absent key is OK).
  Status Delete(const std::string& key);

  bool Contains(const std::string& key) const;

  /// All keys with the given prefix, in lexicographic order.
  std::vector<std::string> ScanPrefix(const std::string& prefix) const;

  /// Number of live keys.
  size_t size() const { return table_.size(); }

  /// Log records written since Open (live + dead); drives compaction
  /// policy.
  size_t log_records() const { return log_records_; }

  /// What the last Open() replayed and truncated.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Rewrites the log with only live entries (atomic rename swap).
  Status Compact();

  const std::string& path() const { return path_; }

 private:
  KvStore(std::string path, Env* env)
      : path_(std::move(path)), env_(env) {}

  Status AppendMutation(char op, const std::string& key,
                        const std::string& value);

  std::string path_;
  Env* env_ = nullptr;
  std::map<std::string, std::string> table_;
  std::unique_ptr<RecordLogWriter> log_;
  size_t log_records_ = 0;
  RecoveryStats recovery_stats_;
};

}  // namespace tps

#endif  // TPS_STORE_KV_STORE_H_
