#include "store/record_log.h"

#include <cstring>

#include "util/crc32.h"

namespace tps {

namespace {

void PutU32(char* buffer, uint32_t value) {
  buffer[0] = static_cast<char>(value & 0xFF);
  buffer[1] = static_cast<char>((value >> 8) & 0xFF);
  buffer[2] = static_cast<char>((value >> 16) & 0xFF);
  buffer[3] = static_cast<char>((value >> 24) & 0xFF);
}

uint32_t GetU32(const char* buffer) {
  return static_cast<uint32_t>(static_cast<uint8_t>(buffer[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[3])) << 24);
}

}  // namespace

StatusOr<RecordLogWriter> RecordLogWriter::Open(const std::string& path) {
  RecordLogWriter writer(path);
  writer.out_.open(path, std::ios::binary | std::ios::app);
  if (!writer.out_) {
    return Status::IOError("cannot open record log for append: " + path);
  }
  return writer;
}

Status RecordLogWriter::Append(std::string_view payload) {
  if (payload.size() > 0x7FFFFFFFu) {
    return Status::InvalidArgument("record payload too large");
  }
  char header[8];
  PutU32(header + 4, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, header + 4, 4);
  crc = Crc32Update(crc, payload.data(), payload.size());
  PutU32(header, Crc32Finish(crc));

  out_.write(header, sizeof(header));
  out_.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) return Status::IOError("append failed: " + path_);
  return Status::OK();
}

Status RecordLogWriter::Flush() {
  out_.flush();
  if (!out_) return Status::IOError("flush failed: " + path_);
  return Status::OK();
}

StatusOr<RecordLogContents> ReadRecordLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open record log: " + path);

  RecordLogContents contents;
  while (true) {
    char header[8];
    in.read(header, sizeof(header));
    if (in.gcount() == 0 && in.eof()) break;  // Clean end of log.
    if (in.gcount() < static_cast<std::streamsize>(sizeof(header))) {
      contents.truncated_tail = true;  // Torn header.
      break;
    }
    const uint32_t expected_crc = GetU32(header);
    const uint32_t length = GetU32(header + 4);
    if (length > 0x7FFFFFFFu) {
      contents.truncated_tail = true;  // Corrupt length.
      break;
    }
    std::string payload(length, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(length));
    if (in.gcount() < static_cast<std::streamsize>(length)) {
      contents.truncated_tail = true;  // Torn payload.
      break;
    }
    uint32_t crc = Crc32Init();
    crc = Crc32Update(crc, header + 4, 4);
    crc = Crc32Update(crc, payload.data(), payload.size());
    if (Crc32Finish(crc) != expected_crc) {
      contents.truncated_tail = true;  // Bit rot.
      break;
    }
    contents.records.push_back(std::move(payload));
  }
  return contents;
}

}  // namespace tps
