#include "store/record_log.h"

#include <cstring>

#include "util/crc32.h"

namespace tps {

namespace {

constexpr size_t kHeaderSize = 8;  // [u32 crc][u32 length].
constexpr uint32_t kMaxRecordLength = 0x7FFFFFFFu;

void PutU32(char* buffer, uint32_t value) {
  buffer[0] = static_cast<char>(value & 0xFF);
  buffer[1] = static_cast<char>((value >> 8) & 0xFF);
  buffer[2] = static_cast<char>((value >> 16) & 0xFF);
  buffer[3] = static_cast<char>((value >> 24) & 0xFF);
}

uint32_t GetU32(const char* buffer) {
  return static_cast<uint32_t>(static_cast<uint8_t>(buffer[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buffer[3])) << 24);
}

}  // namespace

StatusOr<RecordLogWriter> RecordLogWriter::Open(const std::string& path,
                                                Env* env) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewAppendableFile(path));
  return RecordLogWriter(path, std::move(file));
}

StatusOr<RecordLogWriter> RecordLogWriter::Create(const std::string& path,
                                                  Env* env) {
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewTruncatedFile(path));
  return RecordLogWriter(path, std::move(file));
}

Status RecordLogWriter::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordLength) {
    return Status::InvalidArgument("record payload too large");
  }
  std::string record(kHeaderSize + payload.size(), '\0');
  PutU32(record.data() + 4, static_cast<uint32_t>(payload.size()));
  std::memcpy(record.data() + kHeaderSize, payload.data(), payload.size());
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, record.data() + 4, 4 + payload.size());
  PutU32(record.data(), Crc32Finish(crc));

  TPS_RETURN_NOT_OK(file_->Append(record));
  return file_->Flush();
}

Status RecordLogWriter::Flush() { return file_->Flush(); }

StatusOr<RecordLogContents> ReadRecordLog(const std::string& path,
                                          Env* env) {
  TPS_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
  TPS_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                       env->NewSequentialFile(path));

  RecordLogContents contents;
  uint64_t offset = 0;
  while (offset < file_size) {
    char header[kHeaderSize];
    if (file_size - offset < kHeaderSize) {
      contents.truncated_tail = true;  // Torn header.
      break;
    }
    TPS_ASSIGN_OR_RETURN(size_t got,
                         ReadFully(file.get(), kHeaderSize, header));
    if (got < kHeaderSize) {
      contents.truncated_tail = true;  // File shrank under us.
      break;
    }
    const uint32_t expected_crc = GetU32(header);
    const uint32_t length = GetU32(header + 4);
    // Cap the declared length by what the file can actually hold BEFORE
    // allocating: a single corrupt length byte must read as a truncated
    // tail, not a multi-GiB allocation.
    if (length > kMaxRecordLength ||
        static_cast<uint64_t>(length) > file_size - offset - kHeaderSize) {
      contents.truncated_tail = true;  // Corrupt or overrunning length.
      break;
    }
    std::string payload(length, '\0');
    TPS_ASSIGN_OR_RETURN(got, ReadFully(file.get(), length, payload.data()));
    if (got < length) {
      contents.truncated_tail = true;  // Torn payload.
      break;
    }
    uint32_t crc = Crc32Init();
    crc = Crc32Update(crc, header + 4, 4);
    crc = Crc32Update(crc, payload.data(), payload.size());
    if (Crc32Finish(crc) != expected_crc) {
      contents.truncated_tail = true;  // Bit rot.
      break;
    }
    offset += kHeaderSize + length;
    contents.valid_prefix_bytes = offset;
    contents.records.push_back(std::move(payload));
  }
  return contents;
}

}  // namespace tps
