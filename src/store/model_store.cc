#include "store/model_store.h"

#include "store/spec_serialization.h"

namespace tps {

namespace {
constexpr char kModelPrefix[] = "model/";
constexpr char kDatasetPrefix[] = "dataset/";
constexpr char kMatrixPrefix[] = "matrix/";
constexpr char kClusteringPrefix[] = "clustering/";
constexpr char kIndexPrefix[] = "index/";
constexpr char kEmbedPrefix[] = "embed/";

std::vector<std::string> StripPrefix(std::vector<std::string> keys,
                                     size_t prefix_length) {
  for (std::string& key : keys) key = key.substr(prefix_length);
  return keys;
}
}  // namespace

StatusOr<ModelStore> ModelStore::Open(const std::string& path, Env* env) {
  TPS_ASSIGN_OR_RETURN(KvStore kv, KvStore::Open(path, env));
  return ModelStore(std::move(kv));
}

Status ModelStore::PutModelSpec(const ModelSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("model spec needs a name");
  }
  TPS_ASSIGN_OR_RETURN(std::string payload, SerializeModelSpec(spec));
  return kv_.Put(kModelPrefix + spec.name, payload);
}

StatusOr<ModelSpec> ModelStore::GetModelSpec(const std::string& name) const {
  TPS_ASSIGN_OR_RETURN(std::string payload, kv_.Get(kModelPrefix + name));
  return DeserializeModelSpec(payload);
}

Status ModelStore::DeleteModelSpec(const std::string& name) {
  return kv_.Delete(kModelPrefix + name);
}

std::vector<std::string> ModelStore::ListModels() const {
  return StripPrefix(kv_.ScanPrefix(kModelPrefix),
                     sizeof(kModelPrefix) - 1);
}

Status ModelStore::PutDatasetSpec(const DatasetSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dataset spec needs a name");
  }
  TPS_ASSIGN_OR_RETURN(std::string payload, SerializeDatasetSpec(spec));
  return kv_.Put(kDatasetPrefix + spec.name, payload);
}

StatusOr<DatasetSpec> ModelStore::GetDatasetSpec(
    const std::string& name) const {
  TPS_ASSIGN_OR_RETURN(std::string payload,
                       kv_.Get(kDatasetPrefix + name));
  return DeserializeDatasetSpec(payload);
}

Status ModelStore::DeleteDatasetSpec(const std::string& name) {
  return kv_.Delete(kDatasetPrefix + name);
}

std::vector<std::string> ModelStore::ListDatasets() const {
  return StripPrefix(kv_.ScanPrefix(kDatasetPrefix),
                     sizeof(kDatasetPrefix) - 1);
}

Status ModelStore::PutPerformanceMatrix(const std::string& id,
                                        const PerformanceMatrix& matrix) {
  if (id.empty()) return Status::InvalidArgument("matrix id must be set");
  return kv_.Put(kMatrixPrefix + id, matrix.Serialize());
}

StatusOr<PerformanceMatrix> ModelStore::GetPerformanceMatrix(
    const std::string& id) const {
  TPS_ASSIGN_OR_RETURN(std::string payload, kv_.Get(kMatrixPrefix + id));
  return PerformanceMatrix::Deserialize(payload);
}

Status ModelStore::PutClustering(const std::string& id,
                                 const ModelClustering& clustering) {
  if (id.empty()) {
    return Status::InvalidArgument("clustering id must be set");
  }
  return kv_.Put(kClusteringPrefix + id, SerializeClustering(clustering));
}

StatusOr<ModelClustering> ModelStore::GetClustering(
    const std::string& id) const {
  TPS_ASSIGN_OR_RETURN(std::string payload,
                       kv_.Get(kClusteringPrefix + id));
  return DeserializeClustering(payload);
}

Status ModelStore::PutRecallIndex(const std::string& id,
                                  const IvfIndex& index) {
  if (id.empty()) return Status::InvalidArgument("index id must be set");
  return kv_.Put(kIndexPrefix + id, index.Serialize());
}

StatusOr<IvfIndex> ModelStore::GetRecallIndex(const std::string& id) const {
  TPS_ASSIGN_OR_RETURN(std::string payload, kv_.Get(kIndexPrefix + id));
  return IvfIndex::Deserialize(payload);
}

Status ModelStore::PutRecallEmbeddings(
    const std::string& id, const recall::RecallEmbeddings& embeddings) {
  if (id.empty()) {
    return Status::InvalidArgument("embeddings id must be set");
  }
  return kv_.Put(kEmbedPrefix + id, embeddings.Serialize());
}

StatusOr<recall::RecallEmbeddings> ModelStore::GetRecallEmbeddings(
    const std::string& id) const {
  TPS_ASSIGN_OR_RETURN(std::string payload, kv_.Get(kEmbedPrefix + id));
  return recall::RecallEmbeddings::Deserialize(payload);
}

std::vector<std::string> ModelStore::ListMatrices() const {
  return StripPrefix(kv_.ScanPrefix(kMatrixPrefix),
                     sizeof(kMatrixPrefix) - 1);
}

std::vector<std::string> ModelStore::ListClusterings() const {
  return StripPrefix(kv_.ScanPrefix(kClusteringPrefix),
                     sizeof(kClusteringPrefix) - 1);
}

std::vector<std::string> ModelStore::ListIndexes() const {
  return StripPrefix(kv_.ScanPrefix(kIndexPrefix),
                     sizeof(kIndexPrefix) - 1);
}

std::vector<std::string> ModelStore::ListEmbeddings() const {
  return StripPrefix(kv_.ScanPrefix(kEmbedPrefix),
                     sizeof(kEmbedPrefix) - 1);
}

Status ModelStore::Compact() { return kv_.Compact(); }

}  // namespace tps
