#ifndef TPS_STORE_RECORD_LOG_H_
#define TPS_STORE_RECORD_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/statusor.h"

namespace tps {

/// Append-only record log: the durability primitive under the key-value
/// store, in the spirit of RocksDB's WAL format.
///
/// On-disk record layout (little-endian):
///   [u32 crc] [u32 length] [length bytes payload]
/// where crc covers the length field and the payload. Torn or corrupt
/// tails are detected on read and reported (the reader returns the records
/// up to the corruption plus the byte offset where the valid prefix ends,
/// so recovery can truncate the tail before appending again).
///
/// All file access goes through an `Env` (default: POSIX), so tests can
/// inject torn writes, short reads and rename failures deterministically.
class RecordLogWriter {
 public:
  /// Opens `path` for appending, creating it if absent. `env` must
  /// outlive the writer.
  static StatusOr<RecordLogWriter> Open(const std::string& path,
                                        Env* env = Env::Default());

  /// Opens `path` truncated to empty (compaction rewrites).
  static StatusOr<RecordLogWriter> Create(const std::string& path,
                                          Env* env = Env::Default());

  RecordLogWriter(RecordLogWriter&&) = default;
  RecordLogWriter& operator=(RecordLogWriter&&) = default;
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  /// Appends one record and flushes it to the OS. The header and payload
  /// go down in a single write so a torn write tears one record, never
  /// two.
  Status Append(std::string_view payload);

  /// Flushes buffered writes.
  Status Flush();

  const std::string& path() const { return path_; }

 private:
  RecordLogWriter(std::string path, std::unique_ptr<WritableFile> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  std::string path_;
  std::unique_ptr<WritableFile> file_;
};

/// Result of reading a log file.
struct RecordLogContents {
  std::vector<std::string> records;
  /// True when the file ended in a torn or corrupt record; `records` holds
  /// everything before it (standard crash-recovery semantics).
  bool truncated_tail = false;
  /// Byte offset just past the last valid record: the length recovery
  /// should truncate the file to before reopening it for append.
  uint64_t valid_prefix_bytes = 0;
};

/// Reads all records of a log file. A missing file is an IOError; an empty
/// file yields zero records. Declared record lengths are capped by the
/// bytes actually remaining in the file before any allocation, so a
/// corrupt length byte is a truncated tail, not a giant allocation.
StatusOr<RecordLogContents> ReadRecordLog(const std::string& path,
                                          Env* env = Env::Default());

}  // namespace tps

#endif  // TPS_STORE_RECORD_LOG_H_
