#ifndef TPS_STORE_RECORD_LOG_H_
#define TPS_STORE_RECORD_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace tps {

/// Append-only record log: the durability primitive under the key-value
/// store, in the spirit of RocksDB's WAL format.
///
/// On-disk record layout (little-endian):
///   [u32 crc] [u32 length] [length bytes payload]
/// where crc covers the length field and the payload. Torn or corrupt
/// tails are detected on read and reported (the reader returns the records
/// up to the corruption plus a flag).
class RecordLogWriter {
 public:
  /// Opens `path` for appending, creating it if absent.
  static StatusOr<RecordLogWriter> Open(const std::string& path);

  RecordLogWriter(RecordLogWriter&&) = default;
  RecordLogWriter& operator=(RecordLogWriter&&) = default;
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  /// Appends one record and flushes it to the OS.
  Status Append(std::string_view payload);

  /// Flushes buffered writes.
  Status Flush();

  const std::string& path() const { return path_; }

 private:
  explicit RecordLogWriter(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::ofstream out_;
};

/// Result of reading a log file.
struct RecordLogContents {
  std::vector<std::string> records;
  /// True when the file ended in a torn or corrupt record; `records` holds
  /// everything before it (standard crash-recovery semantics).
  bool truncated_tail = false;
};

/// Reads all records of a log file. A missing file is an IOError; an empty
/// file yields zero records.
StatusOr<RecordLogContents> ReadRecordLog(const std::string& path);

}  // namespace tps

#endif  // TPS_STORE_RECORD_LOG_H_
