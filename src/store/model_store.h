#ifndef TPS_STORE_MODEL_STORE_H_
#define TPS_STORE_MODEL_STORE_H_

#include <string>
#include <vector>

#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "index/ivf_index.h"
#include "data/dataset_spec.h"
#include "recall/recall_embeddings.h"
#include "model/model_spec.h"
#include "store/kv_store.h"
#include "util/env.h"
#include "util/statusor.h"

namespace tps {

/// The model-management layer the paper sketches as future work ("a data
/// management system which stores and maintains the pre-trained models and
/// datasets, then supports automatically selecting models"): a typed
/// catalog of model specs, dataset specs and offline selection artifacts
/// (performance matrices, clusterings), persisted in one crash-safe
/// KvStore log.
///
/// Key layout (prefix scans give the listings):
///   model/<name>      -> serialized ModelSpec
///   dataset/<name>    -> serialized DatasetSpec
///   matrix/<id>       -> serialized PerformanceMatrix
///   clustering/<id>   -> serialized ModelClustering
///   index/<id>        -> serialized IvfIndex (sub-linear recall index)
///   embed/<id>        -> serialized RecallEmbeddings (two-tower recall)
class ModelStore {
 public:
  /// Opens (or creates) the store backed by the log file at `path`,
  /// recovering from a torn tail if the last writer crashed mid-append.
  /// `env` must outlive the store.
  static StatusOr<ModelStore> Open(const std::string& path,
                                   Env* env = Env::Default());

  ModelStore(ModelStore&&) = default;
  ModelStore& operator=(ModelStore&&) = default;

  // --- Model specs. ---
  Status PutModelSpec(const ModelSpec& spec);
  StatusOr<ModelSpec> GetModelSpec(const std::string& name) const;
  Status DeleteModelSpec(const std::string& name);
  /// Registered model names, sorted.
  std::vector<std::string> ListModels() const;

  // --- Dataset specs. ---
  Status PutDatasetSpec(const DatasetSpec& spec);
  StatusOr<DatasetSpec> GetDatasetSpec(const std::string& name) const;
  Status DeleteDatasetSpec(const std::string& name);
  std::vector<std::string> ListDatasets() const;

  // --- Offline selection artifacts. ---
  Status PutPerformanceMatrix(const std::string& id,
                              const PerformanceMatrix& matrix);
  StatusOr<PerformanceMatrix> GetPerformanceMatrix(
      const std::string& id) const;
  Status PutClustering(const std::string& id,
                       const ModelClustering& clustering);
  StatusOr<ModelClustering> GetClustering(const std::string& id) const;
  Status PutRecallIndex(const std::string& id, const IvfIndex& index);
  StatusOr<IvfIndex> GetRecallIndex(const std::string& id) const;
  Status PutRecallEmbeddings(const std::string& id,
                             const recall::RecallEmbeddings& embeddings);
  StatusOr<recall::RecallEmbeddings> GetRecallEmbeddings(
      const std::string& id) const;
  /// Stored artifact ids, sorted.
  std::vector<std::string> ListMatrices() const;
  std::vector<std::string> ListClusterings() const;
  std::vector<std::string> ListIndexes() const;
  std::vector<std::string> ListEmbeddings() const;

  /// Reclaims space from overwrites/deletes.
  Status Compact();

  /// Total live entries across all namespaces.
  size_t size() const { return kv_.size(); }

  /// Log records written since Open (live + dead).
  size_t log_records() const { return kv_.log_records(); }

  /// What the last Open() replayed and truncated (torn-tail recovery).
  const RecoveryStats& recovery_stats() const {
    return kv_.recovery_stats();
  }

 private:
  explicit ModelStore(KvStore kv) : kv_(std::move(kv)) {}

  KvStore kv_;
};

}  // namespace tps

#endif  // TPS_STORE_MODEL_STORE_H_
