#ifndef TPS_STORE_SPEC_SERIALIZATION_H_
#define TPS_STORE_SPEC_SERIALIZATION_H_

#include <string>

#include "data/dataset_spec.h"
#include "model/model_spec.h"
#include "util/statusor.h"

namespace tps {

/// Line-oriented `field<TAB>value` serialization for the registry specs
/// the model store keeps. Tags are tab-joined on one line. Field names and
/// values must not contain tabs or newlines (validated on write).

StatusOr<std::string> SerializeModelSpec(const ModelSpec& spec);
StatusOr<ModelSpec> DeserializeModelSpec(const std::string& text);

StatusOr<std::string> SerializeDatasetSpec(const DatasetSpec& spec);
StatusOr<DatasetSpec> DeserializeDatasetSpec(const std::string& text);

}  // namespace tps

#endif  // TPS_STORE_SPEC_SERIALIZATION_H_
