#include "store/spec_serialization.h"

#include <map>
#include <sstream>

#include "util/string_util.h"

namespace tps {

namespace {

Status CheckClean(const std::string& value, const std::string& what) {
  if (value.find('\t') != std::string::npos ||
      value.find('\n') != std::string::npos) {
    return Status::InvalidArgument(what + " must not contain tabs/newlines");
  }
  return Status::OK();
}

Status AppendField(std::ostringstream& out, const std::string& name,
                   const std::string& value) {
  TPS_RETURN_NOT_OK(CheckClean(value, "field " + name));
  out << name << "\t" << value << "\n";
  return Status::OK();
}

Status AppendTags(std::ostringstream& out, const std::string& name,
                  const std::vector<std::string>& tags) {
  for (const std::string& tag : tags) {
    TPS_RETURN_NOT_OK(CheckClean(tag, "tag in " + name));
  }
  out << name;
  for (const std::string& tag : tags) out << "\t" << tag;
  out << "\n";
  return Status::OK();
}

/// Parses the line-oriented format into field -> token-list.
StatusOr<std::map<std::string, std::vector<std::string>>> ParseFields(
    const std::string& text) {
  std::map<std::string, std::vector<std::string>> fields;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> parts = strings::Split(line, '\t');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("malformed spec line: " + line);
    }
    const std::string name = parts[0];
    parts.erase(parts.begin());
    fields[name] = std::move(parts);
  }
  return fields;
}

StatusOr<std::string> SingleValue(
    const std::map<std::string, std::vector<std::string>>& fields,
    const std::string& name) {
  auto it = fields.find(name);
  if (it == fields.end() || it->second.size() != 1) {
    return Status::InvalidArgument("missing or malformed field: " + name);
  }
  return it->second[0];
}

StatusOr<double> DoubleValue(
    const std::map<std::string, std::vector<std::string>>& fields,
    const std::string& name) {
  TPS_ASSIGN_OR_RETURN(std::string raw, SingleValue(fields, name));
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    return Status::InvalidArgument("field " + name + " is not a number");
  }
  return value;
}

StatusOr<TaskDomain> DomainValue(
    const std::map<std::string, std::vector<std::string>>& fields) {
  TPS_ASSIGN_OR_RETURN(std::string raw, SingleValue(fields, "domain"));
  if (raw == "NLP") return TaskDomain::kNLP;
  if (raw == "CV") return TaskDomain::kCV;
  return Status::InvalidArgument("unknown domain: " + raw);
}

std::vector<std::string> TagsValue(
    const std::map<std::string, std::vector<std::string>>& fields,
    const std::string& name) {
  auto it = fields.find(name);
  if (it == fields.end()) return {};
  std::vector<std::string> tags = it->second;
  // A lone empty token means "no tags".
  if (tags.size() == 1 && tags[0].empty()) tags.clear();
  return tags;
}

}  // namespace

StatusOr<std::string> SerializeModelSpec(const ModelSpec& spec) {
  std::ostringstream out;
  out << "tps-model-spec v1\n";
  TPS_RETURN_NOT_OK(AppendField(out, "name", spec.name));
  TPS_RETURN_NOT_OK(AppendField(out, "domain", ToString(spec.domain)));
  TPS_RETURN_NOT_OK(AppendField(out, "family", spec.family));
  TPS_RETURN_NOT_OK(AppendField(
      out, "scale_millions", strings::Format("%.17g", spec.scale_millions)));
  TPS_RETURN_NOT_OK(AppendField(
      out, "capability", strings::Format("%.17g", spec.capability)));
  TPS_RETURN_NOT_OK(AppendTags(out, "pretrain_tags", spec.pretrain_tags));
  TPS_RETURN_NOT_OK(AppendTags(out, "finetune_tags", spec.finetune_tags));
  TPS_RETURN_NOT_OK(AppendField(
      out, "finetune_strength",
      strings::Format("%.17g", spec.finetune_strength)));
  TPS_RETURN_NOT_OK(AppendField(out, "num_source_labels",
                                std::to_string(spec.num_source_labels)));
  TPS_RETURN_NOT_OK(AppendField(out, "description", spec.description));
  return out.str();
}

StatusOr<ModelSpec> DeserializeModelSpec(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-model-spec v1") {
    return Status::InvalidArgument("bad model-spec header");
  }
  TPS_ASSIGN_OR_RETURN(auto fields,
                       ParseFields(text.substr(header.size() + 1)));
  ModelSpec spec;
  TPS_ASSIGN_OR_RETURN(spec.name, SingleValue(fields, "name"));
  TPS_ASSIGN_OR_RETURN(spec.domain, DomainValue(fields));
  TPS_ASSIGN_OR_RETURN(spec.family, SingleValue(fields, "family"));
  TPS_ASSIGN_OR_RETURN(spec.scale_millions,
                       DoubleValue(fields, "scale_millions"));
  TPS_ASSIGN_OR_RETURN(spec.capability, DoubleValue(fields, "capability"));
  spec.pretrain_tags = TagsValue(fields, "pretrain_tags");
  spec.finetune_tags = TagsValue(fields, "finetune_tags");
  TPS_ASSIGN_OR_RETURN(spec.finetune_strength,
                       DoubleValue(fields, "finetune_strength"));
  TPS_ASSIGN_OR_RETURN(double labels,
                       DoubleValue(fields, "num_source_labels"));
  spec.num_source_labels = static_cast<int>(labels);
  // description may legitimately be empty; SingleValue rejects that, so
  // read it leniently.
  auto it = fields.find("description");
  spec.description = (it != fields.end() && !it->second.empty())
                         ? it->second[0]
                         : "";
  return spec;
}

StatusOr<std::string> SerializeDatasetSpec(const DatasetSpec& spec) {
  std::ostringstream out;
  out << "tps-dataset-spec v1\n";
  TPS_RETURN_NOT_OK(AppendField(out, "name", spec.name));
  TPS_RETURN_NOT_OK(AppendField(out, "domain", ToString(spec.domain)));
  TPS_RETURN_NOT_OK(AppendField(out, "role", ToString(spec.role)));
  TPS_RETURN_NOT_OK(
      AppendField(out, "num_labels", std::to_string(spec.num_labels)));
  TPS_RETURN_NOT_OK(AppendField(
      out, "difficulty", strings::Format("%.17g", spec.difficulty)));
  TPS_RETURN_NOT_OK(AppendTags(out, "tags", spec.tags));
  TPS_RETURN_NOT_OK(AppendField(out, "num_examples",
                                std::to_string(spec.num_examples)));
  TPS_RETURN_NOT_OK(AppendField(
      out, "chance_accuracy",
      strings::Format("%.17g", spec.chance_accuracy)));
  TPS_RETURN_NOT_OK(AppendField(
      out, "ceiling_accuracy",
      strings::Format("%.17g", spec.ceiling_accuracy)));
  return out.str();
}

StatusOr<DatasetSpec> DeserializeDatasetSpec(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "tps-dataset-spec v1") {
    return Status::InvalidArgument("bad dataset-spec header");
  }
  TPS_ASSIGN_OR_RETURN(auto fields,
                       ParseFields(text.substr(header.size() + 1)));
  DatasetSpec spec;
  TPS_ASSIGN_OR_RETURN(spec.name, SingleValue(fields, "name"));
  TPS_ASSIGN_OR_RETURN(spec.domain, DomainValue(fields));
  TPS_ASSIGN_OR_RETURN(std::string role, SingleValue(fields, "role"));
  if (role == "benchmark") {
    spec.role = DatasetRole::kBenchmark;
  } else if (role == "target") {
    spec.role = DatasetRole::kTarget;
  } else {
    return Status::InvalidArgument("unknown role: " + role);
  }
  TPS_ASSIGN_OR_RETURN(double labels, DoubleValue(fields, "num_labels"));
  spec.num_labels = static_cast<int>(labels);
  TPS_ASSIGN_OR_RETURN(spec.difficulty, DoubleValue(fields, "difficulty"));
  spec.tags = TagsValue(fields, "tags");
  TPS_ASSIGN_OR_RETURN(double examples,
                       DoubleValue(fields, "num_examples"));
  spec.num_examples = static_cast<int>(examples);
  TPS_ASSIGN_OR_RETURN(spec.chance_accuracy,
                       DoubleValue(fields, "chance_accuracy"));
  TPS_ASSIGN_OR_RETURN(spec.ceiling_accuracy,
                       DoubleValue(fields, "ceiling_accuracy"));
  return spec;
}

}  // namespace tps
