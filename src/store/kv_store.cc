#include "store/kv_store.h"

#include "util/metrics.h"

namespace tps {

namespace {

constexpr char kOpPut = 'P';
constexpr char kOpDelete = 'D';

/// Mutation payload: [op][u32 key length LE][key][value...].
std::string EncodeMutation(char op, const std::string& key,
                           const std::string& value) {
  std::string payload;
  payload.reserve(5 + key.size() + value.size());
  payload.push_back(op);
  const uint32_t key_length = static_cast<uint32_t>(key.size());
  payload.push_back(static_cast<char>(key_length & 0xFF));
  payload.push_back(static_cast<char>((key_length >> 8) & 0xFF));
  payload.push_back(static_cast<char>((key_length >> 16) & 0xFF));
  payload.push_back(static_cast<char>((key_length >> 24) & 0xFF));
  payload += key;
  payload += value;
  return payload;
}

Status DecodeMutation(const std::string& payload, char* op,
                      std::string* key, std::string* value) {
  if (payload.size() < 5) {
    return Status::Internal("mutation record too short");
  }
  *op = payload[0];
  const uint32_t key_length =
      static_cast<uint32_t>(static_cast<uint8_t>(payload[1])) |
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[2])) << 8) |
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[3])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[4])) << 24);
  // 64-bit arithmetic: `5 + key_length` wraps for key_length near
  // UINT32_MAX on 32-bit size_t, letting a corrupt record overrun the
  // payload and throw from substr.
  if (static_cast<uint64_t>(payload.size()) <
      uint64_t{5} + static_cast<uint64_t>(key_length)) {
    return Status::Internal("mutation record key overruns payload");
  }
  *key = payload.substr(5, key_length);
  *value = payload.substr(5 + static_cast<size_t>(key_length));
  return Status::OK();
}

}  // namespace

std::string RecoveryStats::ToString() const {
  std::string out = "replayed " + std::to_string(records_replayed) +
                    " records (" + std::to_string(valid_prefix_bytes) +
                    " valid bytes)";
  if (tail_was_torn) {
    out += ", torn tail: truncated " + std::to_string(bytes_truncated) +
           " bytes";
  } else {
    out += ", clean tail";
  }
  return out;
}

StatusOr<KvStore> KvStore::Open(const std::string& path, Env* env) {
  KvStore store(path, env);

  // Replay an existing log; a missing file just means a fresh store.
  if (env->FileExists(path)) {
    TPS_ASSIGN_OR_RETURN(RecordLogContents contents,
                         ReadRecordLog(path, env));
    for (const std::string& record : contents.records) {
      char op = 0;
      std::string key, value;
      TPS_RETURN_NOT_OK(DecodeMutation(record, &op, &key, &value));
      if (op == kOpPut) {
        store.table_[key] = std::move(value);
      } else if (op == kOpDelete) {
        store.table_.erase(key);
      } else {
        return Status::Internal("unknown mutation op in log");
      }
      ++store.log_records_;
    }
    store.recovery_stats_.records_replayed = contents.records.size();
    store.recovery_stats_.valid_prefix_bytes = contents.valid_prefix_bytes;
    store.recovery_stats_.tail_was_torn = contents.truncated_tail;
    if (contents.truncated_tail) {
      // Drop the torn tail before reopening for append. Without this,
      // records appended after recovery sit behind the corrupt bytes and
      // are silently discarded by the next replay.
      TPS_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
      store.recovery_stats_.bytes_truncated =
          file_size - contents.valid_prefix_bytes;
      TPS_RETURN_NOT_OK(
          env->TruncateFile(path, contents.valid_prefix_bytes));
    }
  }

  TPS_ASSIGN_OR_RETURN(RecordLogWriter writer,
                       RecordLogWriter::Open(path, env));
  store.log_ = std::make_unique<RecordLogWriter>(std::move(writer));
  MetricsRegistry& metrics = *MetricsRegistry::Default();
  metrics.counter("store.opens").Increment();
  metrics.counter("store.records_replayed")
      .Increment(store.recovery_stats_.records_replayed);
  if (store.recovery_stats_.tail_was_torn) {
    metrics.counter("store.torn_tails_recovered").Increment();
    metrics.counter("store.bytes_truncated")
        .Increment(store.recovery_stats_.bytes_truncated);
  }
  return store;
}

Status KvStore::AppendMutation(char op, const std::string& key,
                               const std::string& value) {
  TPS_RETURN_NOT_OK(log_->Append(EncodeMutation(op, key, value)));
  ++log_records_;
  return Status::OK();
}

Status KvStore::Put(const std::string& key, const std::string& value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  TPS_RETURN_NOT_OK(AppendMutation(kOpPut, key, value));
  table_[key] = value;
  return Status::OK();
}

StatusOr<std::string> KvStore::Get(const std::string& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return Status::NotFound("key not found: " + key);
  return it->second;
}

Status KvStore::Delete(const std::string& key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (table_.find(key) == table_.end()) return Status::OK();
  TPS_RETURN_NOT_OK(AppendMutation(kOpDelete, key, ""));
  table_.erase(key);
  return Status::OK();
}

bool KvStore::Contains(const std::string& key) const {
  return table_.find(key) != table_.end();
}

std::vector<std::string> KvStore::ScanPrefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = table_.lower_bound(prefix); it != table_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

Status KvStore::Compact() {
  const std::string temp_path = path_ + ".compact";
  {
    // Write all live entries into a fresh temp log (truncating any stale
    // temp file from an earlier failed compaction).
    TPS_ASSIGN_OR_RETURN(RecordLogWriter writer,
                         RecordLogWriter::Create(temp_path, env_));
    for (const auto& [key, value] : table_) {
      Status append = writer.Append(EncodeMutation(kOpPut, key, value));
      if (!append.ok()) {
        // The live log is untouched; drop the partial temp file.
        env_->RemoveFile(temp_path);
        return append;
      }
    }
    TPS_RETURN_NOT_OK(writer.Flush());
  }

  // Atomic swap, then reopen the append handle on the new file.
  log_.reset();
  Status renamed = env_->RenameFile(temp_path, path_);
  if (!renamed.ok()) {
    // Keep the store usable on the old log rather than leaving a null
    // append handle behind. The old log fully describes the table, so
    // nothing is lost — compaction just didn't happen.
    env_->RemoveFile(temp_path);
    auto reopened_old = RecordLogWriter::Open(path_, env_);
    if (reopened_old.ok()) {
      log_ = std::make_unique<RecordLogWriter>(
          std::move(reopened_old).value());
    }
    return renamed;
  }
  TPS_ASSIGN_OR_RETURN(RecordLogWriter reopened,
                       RecordLogWriter::Open(path_, env_));
  log_ = std::make_unique<RecordLogWriter>(std::move(reopened));
  log_records_ = table_.size();
  MetricsRegistry::Default()->counter("store.compactions").Increment();
  return Status::OK();
}

}  // namespace tps
