#ifndef TPS_TRANSFER_NCE_H_
#define TPS_TRANSFER_NCE_H_

#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "transfer/kernels.h"
#include "transfer/proxy_scorer.h"
#include "util/statusor.h"

namespace tps {

/// Negative Conditional Entropy (Tran et al., ICCV 2019): uses hard source
/// predictions z_i = argmax_z theta_z(x_i) and scores transferability as
/// -H(Y | Z) under the empirical joint of (y_i, z_i). In [-log|Y|, 0];
/// higher is better. `mode` picks the kernel family (bit-identical; see
/// kernels.h).
StatusOr<double> NceFromPredictions(
    const Matrix& predictions, const std::vector<int>& labels,
    int num_target_labels,
    kernels::KernelMode mode = kernels::KernelMode::kBatched);

/// ProxyScorer adapter for NCE over the simulated predictive head.
class NceScorer : public ProxyScorer {
 public:
  explicit NceScorer(kernels::KernelMode mode = kernels::KernelMode::kBatched)
      : mode_(mode) {}
  std::string name() const override { return "nce"; }
  StatusOr<double> Score(const PretrainedModel& model,
                         const Dataset& target) const override;
  StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<const PretrainedModel*>& models,
      const Dataset& target) const override;

 private:
  kernels::KernelMode mode_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_NCE_H_
