#ifndef TPS_TRANSFER_KNN_PROXY_H_
#define TPS_TRANSFER_KNN_PROXY_H_

#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "transfer/kernels.h"
#include "transfer/proxy_scorer.h"
#include "util/statusor.h"

namespace tps {

/// kNN proxy (Renggli et al., CVPR 2022): leave-one-out k-nearest-neighbour
/// classification accuracy over the model's features on the target dataset.
/// Approximates post-fine-tuning accuracy directly; in [0, 1], higher is
/// better. More faithful than LEEP but needs the pairwise distance pass the
/// paper calls out as "extra training". `mode` picks the kernel family
/// (bit-identical; see kernels.h).
StatusOr<double> KnnLeaveOneOutAccuracy(
    const Matrix& features, const std::vector<int>& labels, int k,
    kernels::KernelMode mode = kernels::KernelMode::kBatched);

/// ProxyScorer adapter over the simulated penultimate-layer features.
class KnnScorer : public ProxyScorer {
 public:
  explicit KnnScorer(
      int k = 5, kernels::KernelMode mode = kernels::KernelMode::kBatched)
      : k_(k), mode_(mode) {}
  std::string name() const override { return "knn"; }
  StatusOr<double> Score(const PretrainedModel& model,
                         const Dataset& target) const override;
  StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<const PretrainedModel*>& models,
      const Dataset& target) const override;

 private:
  int k_;
  kernels::KernelMode mode_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_KNN_PROXY_H_
