#ifndef TPS_TRANSFER_LEEP_H_
#define TPS_TRANSFER_LEEP_H_

#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "transfer/kernels.h"
#include "transfer/proxy_scorer.h"
#include "util/statusor.h"

namespace tps {

/// Log Expected Empirical Prediction (Nguyen et al., ICML 2020), computed
/// exactly from source-model predictions:
///
///   P(y, z) = (1/n) sum_i theta_z(x_i) * 1[y_i = y]     (empirical joint)
///   P(y | z) = P(y, z) / P(z)
///   LEEP    = (1/n) sum_i log( sum_z P(y_i | z) * theta_z(x_i) )
///
/// `predictions` is row-stochastic (n examples x Z source labels); `labels`
/// holds target labels in [0, num_target_labels). Returns a value in
/// (-inf, 0]; higher means better transferability. `mode` picks the kernel
/// family (bit-identical; see kernels.h).
StatusOr<double> LeepFromPredictions(
    const Matrix& predictions, const std::vector<int>& labels,
    int num_target_labels,
    kernels::KernelMode mode = kernels::KernelMode::kBatched);

/// ProxyScorer adapter: obtains the model's predictive distributions on the
/// target via the simulated head and applies LEEP.
class LeepScorer : public ProxyScorer {
 public:
  explicit LeepScorer(
      kernels::KernelMode mode = kernels::KernelMode::kBatched)
      : mode_(mode) {}
  std::string name() const override { return "leep"; }
  StatusOr<double> Score(const PretrainedModel& model,
                         const Dataset& target) const override;
  StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<const PretrainedModel*>& models,
      const Dataset& target) const override;

 private:
  kernels::KernelMode mode_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_LEEP_H_
