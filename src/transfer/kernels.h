#ifndef TPS_TRANSFER_KERNELS_H_
#define TPS_TRANSFER_KERNELS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "util/statusor.h"

namespace tps {
namespace kernels {

/// Which implementation family the proxy scorers dispatch to.
///
/// kBatched (the default everywhere) are the SoA, auto-vectorization
/// friendly kernels; kReference retains the straightforward scalar loops
/// the batched kernels were derived from. The two families are
/// BIT-identical by contract — every batched kernel preserves the exact
/// per-output floating-point accumulation order of its reference (loop
/// interchange only moves *independent* outputs into the inner loop) —
/// and tests/transfer/kernel_equivalence_test.cc pins this with == over
/// randomized shapes, serial and parallel. kReference exists so the
/// contract stays checkable forever, not as a supported production path.
enum class KernelMode {
  kReference,
  kBatched,
};

const char* ToString(KernelMode mode);

// Every kernel below assumes the wrapper in leep.cc / nce.cc / logme.cc /
// knn_proxy.cc already validated shapes and label ranges; kernels are pure
// functions of their arguments (thread-safe by construction).

/// LEEP (Nguyen et al., ICML 2020) from row-stochastic predictions
/// (n x Z) and target labels in [0, num_target).
double LeepReference(const Matrix& predictions,
                     const std::vector<int>& labels, size_t num_target);
double LeepBatched(const Matrix& predictions, const std::vector<int>& labels,
                   size_t num_target);

/// NCE (Tran et al., ICCV 2019): -H(Y | argmax-Z) from predictions.
double NceReference(const Matrix& predictions,
                    const std::vector<int>& labels, size_t num_target);
double NceBatched(const Matrix& predictions, const std::vector<int>& labels,
                  size_t num_target);

/// LogME (You et al., ICML 2021) from features (n x D). StatusOr because
/// the shared Gram eigendecomposition can fail on pathological input.
StatusOr<double> LogMeReference(const Matrix& features,
                                const std::vector<int>& labels,
                                size_t num_target);
StatusOr<double> LogMeBatched(const Matrix& features,
                              const std::vector<int>& labels,
                              size_t num_target);

/// Leave-one-out kNN accuracy from features. `kk` is the already-clamped
/// neighbour count in [1, n - 1].
double KnnReference(const Matrix& features, const std::vector<int>& labels,
                    size_t kk);
double KnnBatched(const Matrix& features, const std::vector<int>& labels,
                  size_t kk);

}  // namespace kernels
}  // namespace tps

#endif  // TPS_TRANSFER_KERNELS_H_
