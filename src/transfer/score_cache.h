#ifndef TPS_TRANSFER_SCORE_CACHE_H_
#define TPS_TRANSFER_SCORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "model/pretrained_model.h"
#include "transfer/proxy_scorer.h"
#include "util/metrics.h"
#include "util/statusor.h"

namespace tps {

/// Stable identity of a (simulated) dataset for cache keying. Mixes every
/// spec field that feeds example generation (name-derived seed, domain,
/// label space, example count, difficulty, chance/ceiling overrides, tags)
/// so two datasets produce the same fingerprint iff they generate the same
/// examples. Deterministic across processes and platforms (FNV-1a over a
/// canonical serialization; no pointers, no ASLR).
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Cache key: which proxy number is this? One entry per (artifact epoch,
/// target dataset, model, scorer kind) tuple. `artifact_epoch` is the
/// serving layer's artifact version ("Serving: hot artifact swap" in
/// DESIGN.md): proxy scores depend on the loaded model zoo, so scores
/// computed under version V must never answer a request admitted against
/// version V+1. Epoch-tagging the key (instead of flushing the cache on
/// swap) keeps in-flight old-version requests correct too — they keep
/// hitting their own epoch's entries while new requests warm the next
/// epoch, and retired epochs age out through normal LRU eviction.
/// Embedded callers that never swap artifacts leave it 0.
struct ProxyCacheKey {
  uint64_t dataset_fingerprint = 0;
  std::string model;   // PretrainedModel name (unique within a zoo).
  std::string scorer;  // ProxyScorer::name(): "leep", "nce", ...
  uint64_t artifact_epoch = 0;

  bool operator==(const ProxyCacheKey& other) const {
    return dataset_fingerprint == other.dataset_fingerprint &&
           artifact_epoch == other.artifact_epoch &&
           model == other.model && scorer == other.scorer;
  }
};

struct ProxyCacheKeyHash {
  size_t operator()(const ProxyCacheKey& key) const;
};

/// Thread-safe LRU cache of proxy scores ("Serving" in DESIGN.md).
///
/// Inertness contract: proxy scores are pure functions of (dataset, model,
/// scorer), so serving a cached double is bit-identical to recomputing it —
/// tests/serve/cache_inertness_test.cc proves cache-on == cache-off for
/// whole selection reports, serial and parallel. Only successful scores
/// are cached; Status errors always propagate live.
///
/// Eviction is strict LRU over a doubly-linked list guarded by one mutex,
/// so the eviction order is a deterministic function of the access
/// sequence (tests/serve/score_cache_test.cc pins it).
///
/// Observability: hit/miss/eviction counters and an entry gauge are
/// reported both to the MetricsRegistry passed at construction
/// (`proxy_cache.hits` / `.misses` / `.evictions` / `.entries`) and to
/// local atomics exposed as accessors, so tests and the serve stats
/// endpoint read exact values without scraping the global registry.
class ProxyScoreCache {
 public:
  /// `capacity` is the maximum number of entries; 0 disables caching
  /// entirely (every lookup misses, nothing is stored). `metrics` defaults
  /// to MetricsRegistry::Default().
  explicit ProxyScoreCache(size_t capacity,
                           MetricsRegistry* metrics = nullptr);

  ProxyScoreCache(const ProxyScoreCache&) = delete;
  ProxyScoreCache& operator=(const ProxyScoreCache&) = delete;

  /// Returns the cached score and refreshes recency, or nullopt on miss.
  std::optional<double> Lookup(const ProxyCacheKey& key);

  /// Inserts (or refreshes) a score, evicting the least-recently-used
  /// entry when at capacity. No-op when capacity is 0.
  void Insert(const ProxyCacheKey& key, double score);

  /// The seam used by coarse recall: cache hit, or compute via
  /// `scorer.Score(model, target)` and cache the successful result.
  /// `artifact_epoch` tags the key (see ProxyCacheKey).
  StatusOr<double> GetOrCompute(const ProxyScorer& scorer,
                                const PretrainedModel& model,
                                const Dataset& target,
                                uint64_t artifact_epoch = 0);

  /// Drops every entry (counters are retained).
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Keys in most- to least-recently-used order (for eviction-order
  /// tests and the serve stats endpoint).
  std::vector<ProxyCacheKey> KeysByRecency() const;

 private:
  using Entry = std::pair<ProxyCacheKey, double>;

  const size_t capacity_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<ProxyCacheKey, std::list<Entry>::iterator,
                     ProxyCacheKeyHash>
      index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};

  // Registry instruments, resolved once at construction.
  Counter& hit_counter_;
  Counter& miss_counter_;
  Counter& eviction_counter_;
  Gauge& entries_gauge_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_SCORE_CACHE_H_
