#include "transfer/knn_proxy.h"

#include <algorithm>

#include "transfer/kernels.h"

namespace tps {

StatusOr<double> KnnLeaveOneOutAccuracy(const Matrix& features,
                                        const std::vector<int>& labels,
                                        int k, kernels::KernelMode mode) {
  const size_t n = features.rows();
  if (n < 2) {
    return Status::InvalidArgument("kNN needs at least 2 examples");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("kNN labels/features size mismatch");
  }
  if (k < 1) {
    return Status::InvalidArgument("kNN needs k >= 1");
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n - 1);
  return mode == kernels::KernelMode::kBatched
             ? kernels::KnnBatched(features, labels, kk)
             : kernels::KnnReference(features, labels, kk);
}

StatusOr<double> KnnScorer::Score(const PretrainedModel& model,
                                  const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix features, model.ExtractFeatures(target));
  return KnnLeaveOneOutAccuracy(features, TargetLabels(target), k_, mode_);
}

StatusOr<std::vector<double>> KnnScorer::ScoreBatch(
    const std::vector<const PretrainedModel*>& models,
    const Dataset& target) const {
  const std::vector<int> labels = TargetLabels(target);
  std::vector<double> scores;
  scores.reserve(models.size());
  for (const PretrainedModel* model : models) {
    TPS_ASSIGN_OR_RETURN(Matrix features, model->ExtractFeatures(target));
    TPS_ASSIGN_OR_RETURN(double score,
                         KnnLeaveOneOutAccuracy(features, labels, k_, mode_));
    scores.push_back(score);
  }
  return scores;
}

}  // namespace tps
