#include "transfer/knn_proxy.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tps {

StatusOr<double> KnnLeaveOneOutAccuracy(const Matrix& features,
                                        const std::vector<int>& labels,
                                        int k) {
  const size_t n = features.rows();
  if (n < 2) {
    return Status::InvalidArgument("kNN needs at least 2 examples");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("kNN labels/features size mismatch");
  }
  if (k < 1) {
    return Status::InvalidArgument("kNN needs k >= 1");
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n - 1);

  size_t correct = 0;
  std::vector<std::pair<double, size_t>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        distances[j] = {std::numeric_limits<double>::infinity(), j};
        continue;
      }
      double d2 = 0.0;
      for (size_t c = 0; c < features.cols(); ++c) {
        const double diff = features.At(i, c) - features.At(j, c);
        d2 += diff * diff;
      }
      distances[j] = {d2, j};
    }
    std::partial_sort(distances.begin(),
                      distances.begin() + static_cast<ptrdiff_t>(kk),
                      distances.end());
    std::map<int, size_t> votes;
    for (size_t r = 0; r < kk; ++r) {
      ++votes[labels[distances[r].second]];
    }
    int best_label = -1;
    size_t best_votes = 0;
    for (const auto& [label, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_label = label;
      }
    }
    if (best_label == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

StatusOr<double> KnnScorer::Score(const PretrainedModel& model,
                                  const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix features, model.ExtractFeatures(target));
  std::vector<int> labels(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    labels[i] = target.examples()[i].label;
  }
  return KnnLeaveOneOutAccuracy(features, labels, k_);
}

}  // namespace tps
