#ifndef TPS_TRANSFER_PROXY_SCORER_H_
#define TPS_TRANSFER_PROXY_SCORER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "model/pretrained_model.h"
#include "transfer/kernels.h"
#include "util/statusor.h"

namespace tps {

/// A light-weight transferability proxy: predicts how well `model` would
/// perform after fine-tuning on `target`, *without* fine-tuning. Scores of
/// different models on the same target are comparable (higher is better);
/// scores across targets are not.
///
/// The paper uses LEEP in the coarse-recall phase and cites NCE, kNN and
/// LogME as interchangeable alternates; all four are implemented.
class ProxyScorer {
 public:
  virtual ~ProxyScorer() = default;

  /// Stable scorer identifier ("leep", "nce", "logme", "knn").
  virtual std::string name() const = 0;

  /// Computes the proxy score. Fails if the model and dataset domains
  /// differ.
  virtual StatusOr<double> Score(const PretrainedModel& model,
                                 const Dataset& target) const = 0;

  /// Batched entry point: scores every model against the same target,
  /// sharing per-target setup (label extraction, scratch) across models.
  /// Result order matches `models`. Bit-identical to calling Score() in a
  /// loop — the parallel-equivalence suite compares the two paths with ==.
  /// The base implementation is that loop; the concrete scorers override
  /// it with the shared-setup version.
  virtual StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<const PretrainedModel*>& models,
      const Dataset& target) const;
};

/// Constructs a scorer by name; InvalidArgument for unknown names. `mode`
/// selects the kernel family every score is computed with (bit-identical
/// by contract; kReference retains the scalar loops for the differential
/// harness).
StatusOr<std::unique_ptr<ProxyScorer>> MakeProxyScorer(
    const std::string& name,
    kernels::KernelMode mode = kernels::KernelMode::kBatched);

/// Min-max normalizes scores to [0, 1] (the paper normalizes LEEP before
/// combining it with the prior accuracy in the recall score). A constant
/// vector maps to all 0.5.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores);

/// The per-example labels of `target`, in example order — the shared
/// second input of every proxy kernel.
std::vector<int> TargetLabels(const Dataset& target);

}  // namespace tps

#endif  // TPS_TRANSFER_PROXY_SCORER_H_
