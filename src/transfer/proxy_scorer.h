#ifndef TPS_TRANSFER_PROXY_SCORER_H_
#define TPS_TRANSFER_PROXY_SCORER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "model/pretrained_model.h"
#include "util/statusor.h"

namespace tps {

/// A light-weight transferability proxy: predicts how well `model` would
/// perform after fine-tuning on `target`, *without* fine-tuning. Scores of
/// different models on the same target are comparable (higher is better);
/// scores across targets are not.
///
/// The paper uses LEEP in the coarse-recall phase and cites NCE, kNN and
/// LogME as interchangeable alternates; all four are implemented.
class ProxyScorer {
 public:
  virtual ~ProxyScorer() = default;

  /// Stable scorer identifier ("leep", "nce", "logme", "knn").
  virtual std::string name() const = 0;

  /// Computes the proxy score. Fails if the model and dataset domains
  /// differ.
  virtual StatusOr<double> Score(const PretrainedModel& model,
                                 const Dataset& target) const = 0;
};

/// Constructs a scorer by name; InvalidArgument for unknown names.
StatusOr<std::unique_ptr<ProxyScorer>> MakeProxyScorer(
    const std::string& name);

/// Min-max normalizes scores to [0, 1] (the paper normalizes LEEP before
/// combining it with the prior accuracy in the recall score). A constant
/// vector maps to all 0.5.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores);

}  // namespace tps

#endif  // TPS_TRANSFER_PROXY_SCORER_H_
