#ifndef TPS_TRANSFER_LOGME_H_
#define TPS_TRANSFER_LOGME_H_

#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "transfer/kernels.h"
#include "transfer/proxy_scorer.h"
#include "util/statusor.h"

namespace tps {

/// LogME (You et al., ICML 2021): the log marginal evidence of a Bayesian
/// linear regression from model features to (one-hot) target labels,
/// maximized over the prior/noise precisions (alpha, beta) by fixed-point
/// iteration, averaged over classes and normalized by the sample count.
/// Higher is better.
///
/// `features` is n examples x D dimensions; `labels` in
/// [0, num_target_labels). `mode` picks the kernel family (bit-identical;
/// see kernels.h).
StatusOr<double> LogMeFromFeatures(
    const Matrix& features, const std::vector<int>& labels,
    int num_target_labels,
    kernels::KernelMode mode = kernels::KernelMode::kBatched);

/// ProxyScorer adapter over the simulated penultimate-layer features.
class LogMeScorer : public ProxyScorer {
 public:
  explicit LogMeScorer(
      kernels::KernelMode mode = kernels::KernelMode::kBatched)
      : mode_(mode) {}
  std::string name() const override { return "logme"; }
  StatusOr<double> Score(const PretrainedModel& model,
                         const Dataset& target) const override;
  StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<const PretrainedModel*>& models,
      const Dataset& target) const override;

 private:
  kernels::KernelMode mode_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_LOGME_H_
