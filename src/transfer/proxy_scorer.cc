#include "transfer/proxy_scorer.h"

#include <algorithm>

#include "transfer/knn_proxy.h"
#include "transfer/leep.h"
#include "transfer/logme.h"
#include "transfer/nce.h"

namespace tps {

StatusOr<std::unique_ptr<ProxyScorer>> MakeProxyScorer(
    const std::string& name) {
  if (name == "leep") return std::unique_ptr<ProxyScorer>(new LeepScorer());
  if (name == "nce") return std::unique_ptr<ProxyScorer>(new NceScorer());
  if (name == "logme") return std::unique_ptr<ProxyScorer>(new LogMeScorer());
  if (name == "knn") return std::unique_ptr<ProxyScorer>(new KnnScorer());
  return Status::InvalidArgument("unknown proxy scorer: " + name);
}

std::vector<double> MinMaxNormalize(const std::vector<double>& scores) {
  if (scores.empty()) return {};
  const double lo = *std::min_element(scores.begin(), scores.end());
  const double hi = *std::max_element(scores.begin(), scores.end());
  std::vector<double> out(scores.size());
  if (hi <= lo) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - lo) / (hi - lo);
  }
  return out;
}

}  // namespace tps
