#include "transfer/proxy_scorer.h"

#include <algorithm>

#include "transfer/knn_proxy.h"
#include "transfer/leep.h"
#include "transfer/logme.h"
#include "transfer/nce.h"

namespace tps {

StatusOr<std::vector<double>> ProxyScorer::ScoreBatch(
    const std::vector<const PretrainedModel*>& models,
    const Dataset& target) const {
  std::vector<double> scores;
  scores.reserve(models.size());
  for (const PretrainedModel* model : models) {
    TPS_ASSIGN_OR_RETURN(double score, Score(*model, target));
    scores.push_back(score);
  }
  return scores;
}

StatusOr<std::unique_ptr<ProxyScorer>> MakeProxyScorer(
    const std::string& name, kernels::KernelMode mode) {
  if (name == "leep") {
    return std::unique_ptr<ProxyScorer>(new LeepScorer(mode));
  }
  if (name == "nce") {
    return std::unique_ptr<ProxyScorer>(new NceScorer(mode));
  }
  if (name == "logme") {
    return std::unique_ptr<ProxyScorer>(new LogMeScorer(mode));
  }
  if (name == "knn") {
    return std::unique_ptr<ProxyScorer>(new KnnScorer(/*k=*/5, mode));
  }
  return Status::InvalidArgument("unknown proxy scorer: " + name);
}

std::vector<double> MinMaxNormalize(const std::vector<double>& scores) {
  if (scores.empty()) return {};
  const double lo = *std::min_element(scores.begin(), scores.end());
  const double hi = *std::max_element(scores.begin(), scores.end());
  std::vector<double> out(scores.size());
  if (hi <= lo) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - lo) / (hi - lo);
  }
  return out;
}

std::vector<int> TargetLabels(const Dataset& target) {
  std::vector<int> labels(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    labels[i] = target.examples()[i].label;
  }
  return labels;
}

}  // namespace tps
