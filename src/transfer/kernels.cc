// Proxy-scoring kernels, in two bit-identical families (see kernels.h).
//
// The batched family restructures the reference loops for contiguous SoA
// access and auto-vectorization without ever reassociating a sum: each
// output element accumulates its contributions in exactly the reference
// order, and only *independent* outputs move into the inner loop (loop
// interchange), so results match the reference bit for bit. Transcendental
// calls (exp/log) stay scalar libm — vector polynomials would change bits.

#include "transfer/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numbers>

#include "matrix/eigen.h"

namespace tps {
namespace kernels {

const char* ToString(KernelMode mode) {
  return mode == KernelMode::kReference ? "reference" : "batched";
}

// ---------------------------------------------------------------------------
// LEEP
// ---------------------------------------------------------------------------

double LeepReference(const Matrix& predictions,
                     const std::vector<int>& labels, size_t num_target) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  // Empirical joint P(y, z).
  Matrix joint(num_target, num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t y = static_cast<size_t>(labels[i]);
    for (size_t z = 0; z < num_source; ++z) {
      joint.At(y, z) += predictions.At(i, z);
    }
  }
  for (size_t y = 0; y < num_target; ++y) {
    for (size_t z = 0; z < num_source; ++z) {
      joint.At(y, z) /= static_cast<double>(n);
    }
  }
  // Marginal P(z) and conditional P(y | z).
  std::vector<double> marginal(num_source, 0.0);
  for (size_t z = 0; z < num_source; ++z) {
    for (size_t y = 0; y < num_target; ++y) marginal[z] += joint.At(y, z);
  }
  Matrix conditional(num_target, num_source, 0.0);
  for (size_t z = 0; z < num_source; ++z) {
    if (marginal[z] <= 0.0) continue;  // Unused source label.
    for (size_t y = 0; y < num_target; ++y) {
      conditional.At(y, z) = joint.At(y, z) / marginal[z];
    }
  }
  // Mean log-likelihood of the expected empirical predictor.
  double total_log_likelihood = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t y = static_cast<size_t>(labels[i]);
    double eep = 0.0;
    for (size_t z = 0; z < num_source; ++z) {
      eep += conditional.At(y, z) * predictions.At(i, z);
    }
    // Guard log(0): an EEP of exactly zero means the label never co-occurs
    // with any predicted source label, which only happens on degenerate
    // inputs; floor it far below any realistic likelihood.
    total_log_likelihood += std::log(std::max(eep, 1e-12));
  }
  return total_log_likelihood / static_cast<double>(n);
}

double LeepBatched(const Matrix& predictions, const std::vector<int>& labels,
                   size_t num_target) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  const double* pred = predictions.data().data();

  // Joint P(y, z) by row-axpy in original example order. Per (y, z) only
  // examples with label y contribute, in ascending i — the same
  // accumulation order as the reference i-outer loop.
  std::vector<double> joint(num_target * num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double* jrow = joint.data() + static_cast<size_t>(labels[i]) * num_source;
    const double* prow = pred + i * num_source;
    for (size_t z = 0; z < num_source; ++z) jrow[z] += prow[z];
  }
  for (size_t e = 0; e < joint.size(); ++e) {
    joint[e] /= static_cast<double>(n);
  }
  // Marginal, interchanged y-outer / z-inner: per z the sum still runs
  // over y ascending.
  std::vector<double> marginal(num_source, 0.0);
  for (size_t y = 0; y < num_target; ++y) {
    const double* jrow = joint.data() + y * num_source;
    for (size_t z = 0; z < num_source; ++z) marginal[z] += jrow[z];
  }
  std::vector<double> conditional(num_target * num_source, 0.0);
  for (size_t y = 0; y < num_target; ++y) {
    const double* jrow = joint.data() + y * num_source;
    double* crow = conditional.data() + y * num_source;
    for (size_t z = 0; z < num_source; ++z) {
      if (marginal[z] > 0.0) crow[z] = jrow[z] / marginal[z];
    }
  }

  // Group examples by label (stable counting sort) and gather predictions
  // into label-grouped columns: gcols[z * n + gi] = pred(grouped[gi], z).
  std::vector<size_t> group_begin(num_target + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    ++group_begin[static_cast<size_t>(labels[i]) + 1];
  }
  for (size_t y = 0; y < num_target; ++y) group_begin[y + 1] += group_begin[y];
  std::vector<size_t> grouped(n);
  {
    std::vector<size_t> cursor(group_begin.begin(), group_begin.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      grouped[cursor[static_cast<size_t>(labels[i])]++] = i;
    }
  }
  std::vector<double> gcols(n * num_source);
  for (size_t gi = 0; gi < n; ++gi) {
    const double* prow = pred + grouped[gi] * num_source;
    for (size_t z = 0; z < num_source; ++z) gcols[z * n + gi] = prow[z];
  }

  // EEP as broadcast-scalar axpy over each label group: per grouped
  // position the sum over z runs in ascending z, exactly the reference
  // per-example dot order, but the inner loop is a contiguous independent
  // stream the compiler vectorizes.
  std::vector<double> eep(n, 0.0);
  for (size_t y = 0; y < num_target; ++y) {
    const double* crow = conditional.data() + y * num_source;
    const size_t begin = group_begin[y];
    const size_t end = group_begin[y + 1];
    for (size_t z = 0; z < num_source; ++z) {
      const double cond_yz = crow[z];
      const double* col = gcols.data() + z * n;
      for (size_t gi = begin; gi < end; ++gi) eep[gi] += cond_yz * col[gi];
    }
  }
  // Log-likelihood reduction in ORIGINAL example order (the reference sums
  // over i ascending; grouped order would reassociate).
  std::vector<size_t> position(n);
  for (size_t gi = 0; gi < n; ++gi) position[grouped[gi]] = gi;
  double total_log_likelihood = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_log_likelihood += std::log(std::max(eep[position[i]], 1e-12));
  }
  return total_log_likelihood / static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// NCE
// ---------------------------------------------------------------------------

double NceReference(const Matrix& predictions,
                    const std::vector<int>& labels, size_t num_target) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  // Empirical joint of (y, argmax-z) counts.
  Matrix counts(num_target, num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    size_t best_z = 0;
    for (size_t z = 1; z < num_source; ++z) {
      if (predictions.At(i, z) > predictions.At(i, best_z)) best_z = z;
    }
    counts.At(static_cast<size_t>(y), best_z) += 1.0;
  }

  // H(Y | Z) = sum_z P(z) * H(Y | Z = z).
  double conditional_entropy = 0.0;
  for (size_t z = 0; z < num_source; ++z) {
    double nz = 0.0;
    for (size_t y = 0; y < num_target; ++y) nz += counts.At(y, z);
    if (nz <= 0.0) continue;
    double h = 0.0;
    for (size_t y = 0; y < num_target; ++y) {
      const double p = counts.At(y, z) / nz;
      if (p > 0.0) h -= p * std::log(p);
    }
    conditional_entropy += (nz / static_cast<double>(n)) * h;
  }
  return -conditional_entropy;
}

double NceBatched(const Matrix& predictions, const std::vector<int>& labels,
                  size_t num_target) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  const double* pred = predictions.data().data();

  // Transpose to SoA columns, then argmax as a column sweep: per example
  // the strict > over ascending z is exactly the reference first-max tie
  // rule, but each sweep touches a contiguous column over all examples.
  std::vector<double> cols(n * num_source);
  for (size_t i = 0; i < n; ++i) {
    const double* prow = pred + i * num_source;
    for (size_t z = 0; z < num_source; ++z) cols[z * n + i] = prow[z];
  }
  std::vector<double> best(cols.begin(), cols.begin() + static_cast<ptrdiff_t>(n));
  std::vector<size_t> best_z(n, 0);
  for (size_t z = 1; z < num_source; ++z) {
    const double* col = cols.data() + z * n;
    for (size_t i = 0; i < n; ++i) {
      if (col[i] > best[i]) {
        best[i] = col[i];
        best_z[i] = z;
      }
    }
  }
  std::vector<double> counts(num_target * num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    counts[static_cast<size_t>(labels[i]) * num_source + best_z[i]] += 1.0;
  }

  // Column sums nz for all z at once (per z: y ascending, as reference).
  std::vector<double> nz(num_source, 0.0);
  for (size_t y = 0; y < num_target; ++y) {
    const double* crow = counts.data() + y * num_source;
    for (size_t z = 0; z < num_source; ++z) nz[z] += crow[z];
  }
  double conditional_entropy = 0.0;
  for (size_t z = 0; z < num_source; ++z) {
    if (nz[z] <= 0.0) continue;
    double h = 0.0;
    for (size_t y = 0; y < num_target; ++y) {
      const double p = counts[y * num_source + z] / nz[z];
      if (p > 0.0) h -= p * std::log(p);
    }
    conditional_entropy += (nz[z] / static_cast<double>(n)) * h;
  }
  return -conditional_entropy;
}

// ---------------------------------------------------------------------------
// LogME
// ---------------------------------------------------------------------------

namespace {

/// The LogME fixed-point iteration over (alpha, beta) given the Gram
/// spectrum and the projection of F^T y onto the eigenbasis. Shared by both
/// kernel families — the families differ only in how `projected` and the
/// Gram matrix are accumulated.
double EvidenceGivenProjection(size_t n, size_t dims,
                               const std::vector<double>& lambda,
                               const std::vector<double>& projected,
                               double yty) {
  double alpha = 1.0;
  double beta = 1.0;
  double m_squared = 0.0;
  double residual = yty;
  for (int iteration = 0; iteration < 100; ++iteration) {
    // In the eigenbasis, m_j = beta * p_j / (alpha + beta * lambda_j).
    double gamma = 0.0;
    m_squared = 0.0;
    double mt_gram_m = 0.0;  // m^T (F^T F) m
    double mt_fty = 0.0;     // m^T F^T y
    for (size_t j = 0; j < dims; ++j) {
      const double lj = std::max(lambda[j], 0.0);
      const double denom = alpha + beta * lj;
      const double mj = beta * projected[j] / denom;
      gamma += beta * lj / denom;
      m_squared += mj * mj;
      mt_gram_m += mj * mj * lj;
      mt_fty += mj * projected[j];
    }
    residual = std::max(yty - 2.0 * mt_fty + mt_gram_m, 1e-12);
    const double new_alpha = gamma / std::max(m_squared, 1e-12);
    const double new_beta =
        (static_cast<double>(n) - gamma) / residual;
    const bool converged = std::fabs(new_alpha - alpha) <=
                               1e-4 * std::fabs(alpha) &&
                           std::fabs(new_beta - beta) <=
                               1e-4 * std::fabs(beta);
    alpha = std::max(new_alpha, 1e-10);
    beta = std::max(new_beta, 1e-10);
    if (converged) break;
  }

  // log|A| with A = alpha I + beta F^T F.
  double log_det = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    log_det += std::log(alpha + beta * std::max(lambda[j], 0.0));
  }
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(dims);
  const double evidence =
      0.5 * (nd * std::log(beta) + dd * std::log(alpha) - log_det -
             beta * residual - alpha * m_squared -
             nd * std::log(2.0 * std::numbers::pi));
  return evidence / nd;
}

}  // namespace

StatusOr<double> LogMeReference(const Matrix& features,
                                const std::vector<int>& labels,
                                size_t num_target) {
  const size_t n = features.rows();
  const size_t dims = features.cols();

  // Gram matrix F^T F (D x D) and its spectrum, shared by all classes.
  Matrix gram(dims, dims, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < dims; ++a) {
      const double fa = features.At(i, a);
      if (fa == 0.0) continue;
      for (size_t b = a; b < dims; ++b) {
        gram.At(a, b) += fa * features.At(i, b);
      }
    }
  }
  for (size_t a = 0; a < dims; ++a) {
    for (size_t b = 0; b < a; ++b) gram.At(a, b) = gram.At(b, a);
  }
  TPS_ASSIGN_OR_RETURN(SymmetricEigenResult gram_eigen,
                       SymmetricEigen(gram, /*symmetry_tolerance=*/1e-6));

  double total_evidence = 0.0;
  for (size_t c = 0; c < num_target; ++c) {
    // One-vs-rest target vector.
    std::vector<double> y(n, 0.0);
    double yty = 0.0;
    for (size_t i = 0; i < n; ++i) {
      y[i] = static_cast<size_t>(labels[i]) == c ? 1.0 : 0.0;
      yty += y[i];
    }
    // F^T y.
    std::vector<double> fty(dims, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (y[i] == 0.0) continue;
      for (size_t a = 0; a < dims; ++a) fty[a] += features.At(i, a);
    }
    // Project F^T y onto the Gram eigenbasis: p_j = v_j . (F^T y),
    // column-access dot products.
    std::vector<double> projected(dims, 0.0);
    for (size_t j = 0; j < dims; ++j) {
      double dot = 0.0;
      for (size_t i = 0; i < dims; ++i) {
        dot += gram_eigen.vectors.At(i, j) * fty[i];
      }
      projected[j] = dot;
    }
    total_evidence +=
        EvidenceGivenProjection(n, dims, gram_eigen.values, projected, yty);
  }
  return total_evidence / static_cast<double>(num_target);
}

StatusOr<double> LogMeBatched(const Matrix& features,
                              const std::vector<int>& labels,
                              size_t num_target) {
  const size_t n = features.rows();
  const size_t dims = features.cols();
  const double* feat = features.data().data();

  // Gram upper triangle by row-axpy: per (a, b) the accumulation runs over
  // i ascending with the reference's exact fa == 0.0 skip (skipping vs
  // adding a signed zero can differ bitwise), inner loop contiguous over b.
  Matrix gram(dims, dims, 0.0);
  double* gram_data = gram.data().data();
  for (size_t i = 0; i < n; ++i) {
    const double* frow = feat + i * dims;
    for (size_t a = 0; a < dims; ++a) {
      const double fa = frow[a];
      if (fa == 0.0) continue;
      double* grow = gram_data + a * dims;
      for (size_t b = a; b < dims; ++b) grow[b] += fa * frow[b];
    }
  }
  for (size_t a = 0; a < dims; ++a) {
    for (size_t b = 0; b < a; ++b) gram_data[a * dims + b] = gram_data[b * dims + a];
  }
  TPS_ASSIGN_OR_RETURN(SymmetricEigenResult gram_eigen,
                       SymmetricEigen(gram, /*symmetry_tolerance=*/1e-6));
  const double* eigvec = gram_eigen.vectors.data().data();

  std::vector<double> fty(dims);
  std::vector<double> projected(dims);
  double total_evidence = 0.0;
  for (size_t c = 0; c < num_target; ++c) {
    // yty = |{i : labels[i] == c}|, accumulated over all i in ascending
    // order exactly as the reference's sum of the one-vs-rest vector.
    double yty = 0.0;
    for (size_t i = 0; i < n; ++i) {
      yty += static_cast<size_t>(labels[i]) == c ? 1.0 : 0.0;
    }
    // F^T y: contiguous row-axpy over the class members only.
    std::fill(fty.begin(), fty.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<size_t>(labels[i]) != c) continue;
      const double* frow = feat + i * dims;
      for (size_t a = 0; a < dims; ++a) fty[a] += frow[a];
    }
    // Projection with the loops interchanged: p_j accumulates over i
    // ascending (reference order) but the inner loop streams eigenvector
    // ROWS contiguously instead of striding down columns.
    std::fill(projected.begin(), projected.end(), 0.0);
    for (size_t i = 0; i < dims; ++i) {
      const double* vrow = eigvec + i * dims;
      const double fi = fty[i];
      for (size_t j = 0; j < dims; ++j) projected[j] += vrow[j] * fi;
    }
    total_evidence +=
        EvidenceGivenProjection(n, dims, gram_eigen.values, projected, yty);
  }
  return total_evidence / static_cast<double>(num_target);
}

// ---------------------------------------------------------------------------
// kNN
// ---------------------------------------------------------------------------

namespace {

/// The voting rule shared verbatim by both kNN families: k nearest by
/// (distance, index) pair order, majority vote, smallest label wins ties.
bool KnnVoteCorrect(std::vector<std::pair<double, size_t>>& distances,
                    const std::vector<int>& labels, size_t kk, size_t i) {
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<ptrdiff_t>(kk),
                    distances.end());
  std::map<int, size_t> votes;
  for (size_t r = 0; r < kk; ++r) {
    ++votes[labels[distances[r].second]];
  }
  int best_label = -1;
  size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label == labels[i];
}

}  // namespace

double KnnReference(const Matrix& features, const std::vector<int>& labels,
                    size_t kk) {
  const size_t n = features.rows();
  size_t correct = 0;
  std::vector<std::pair<double, size_t>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        distances[j] = {std::numeric_limits<double>::infinity(), j};
        continue;
      }
      double d2 = 0.0;
      for (size_t c = 0; c < features.cols(); ++c) {
        const double diff = features.At(i, c) - features.At(j, c);
        d2 += diff * diff;
      }
      distances[j] = {d2, j};
    }
    if (KnnVoteCorrect(distances, labels, kk, i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double KnnBatched(const Matrix& features, const std::vector<int>& labels,
                  size_t kk) {
  const size_t n = features.rows();
  const size_t dims = features.cols();
  const double* feat = features.data().data();

  // Transpose once to dimension-major columns so the per-query distance
  // pass streams contiguous memory.
  std::vector<double> cols(n * dims);
  for (size_t j = 0; j < n; ++j) {
    const double* frow = feat + j * dims;
    for (size_t c = 0; c < dims; ++c) cols[c * n + j] = frow[c];
  }

  // Blocked accumulation: d2 for a block of candidates stays hot in cache
  // while the dimension loop streams over it. Per (i, j) the sum over c
  // still runs in ascending c — identical bits to the reference.
  constexpr size_t kBlock = 512;
  size_t correct = 0;
  std::vector<double> d2(n);
  std::vector<std::pair<double, size_t>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    const double* frow = feat + i * dims;
    std::fill(d2.begin(), d2.end(), 0.0);
    for (size_t jb = 0; jb < n; jb += kBlock) {
      const size_t je = std::min(jb + kBlock, n);
      double* block = d2.data();
      for (size_t c = 0; c < dims; ++c) {
        const double fic = frow[c];
        const double* col = cols.data() + c * n;
        for (size_t j = jb; j < je; ++j) {
          const double diff = fic - col[j];
          block[j] += diff * diff;
        }
      }
    }
    for (size_t j = 0; j < n; ++j) {
      distances[j] = {j == i ? std::numeric_limits<double>::infinity() : d2[j],
                      j};
    }
    if (KnnVoteCorrect(distances, labels, kk, i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace kernels
}  // namespace tps
