#ifndef TPS_TRANSFER_PROXY_FLIGHT_H_
#define TPS_TRANSFER_PROXY_FLIGHT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "transfer/score_cache.h"
#include "util/metrics.h"
#include "util/statusor.h"

namespace tps {

/// Cross-request proxy coalescing ("single-flight"): identical in-flight
/// (dataset, model, scorer) computations — keyed by the same ProxyCacheKey
/// the LRU cache uses — collapse so ONE pass over the target's predictions
/// answers every queued query. The first arrival becomes the flight's
/// leader and computes; later arrivals wait on the flight and share the
/// leader's result. First step of the ROADMAP's fleet-grade coalescing.
///
/// Inertness: proxy scores are pure functions of the key, so a waiter
/// receiving the leader's double is bit-identical to computing it — the
/// coalescing suite (tests/serve/coalescing_test.cc) pins responses with
/// == and the exactly-once compute count via the metrics counters.
///
/// Cancellation-safe waiter handoff: a leader whose own request is
/// cancelled (compute returns DeadlineExceeded) ABDICATES instead of
/// failing the flight — one live waiter is promoted to leader and runs its
/// own compute closure; only the cancelled caller sees DeadlineExceeded.
/// Genuine (deterministic) compute errors are shared with all waiters, the
/// same answer every member would have computed alone. Waiters poll their
/// own cancellation between waits, so a waiter with an expired deadline
/// leaves the flight without disturbing it.
///
/// Observability (MetricsRegistry + local atomics, like ProxyScoreCache):
///   proxy_flight.leaders   — flights led (first arrival or promotion)
///   proxy_flight.waiters   — arrivals that joined an existing flight
///   proxy_flight.computes  — compute closures that ran to success
///   proxy_flight.handoffs  — waiter promotions after leader abdication
class ProxyFlightGroup {
 public:
  explicit ProxyFlightGroup(MetricsRegistry* metrics = nullptr);

  ProxyFlightGroup(const ProxyFlightGroup&) = delete;
  ProxyFlightGroup& operator=(const ProxyFlightGroup&) = delete;

  /// The serving seam: cache lookup (when `cache` is non-null), then
  /// coalesced compute; the leader inserts a successful score into the
  /// cache BEFORE the flight is retired, so any request arriving after the
  /// flight hits the cache — compute runs exactly once per key.
  /// `poll_cancel` (may be null) is this caller's own cancellation check,
  /// polled while waiting; `compute` runs without any flight lock held.
  StatusOr<double> GetOrCompute(
      ProxyScoreCache* cache, const ProxyCacheKey& key,
      const std::function<Status()>& poll_cancel,
      const std::function<StatusOr<double>()>& compute);

  /// The raw coalescing primitive (no cache semantics): joins or creates
  /// the flight for `key`. A (possibly promoted) leader first consults
  /// `lookup` (may be null) and only computes on nullopt. Each caller
  /// passes its own closures; whichever member ends up leading runs its
  /// own `compute`.
  StatusOr<double> ComputeShared(
      const ProxyCacheKey& key, const std::function<Status()>& poll_cancel,
      const std::function<std::optional<double>()>& lookup,
      const std::function<StatusOr<double>()>& compute);

  uint64_t leaders() const { return leaders_.load(std::memory_order_relaxed); }
  uint64_t waiters() const { return waiters_.load(std::memory_order_relaxed); }
  uint64_t computes() const {
    return computes_.load(std::memory_order_relaxed);
  }
  uint64_t handoffs() const {
    return handoffs_.load(std::memory_order_relaxed);
  }

  /// In-flight key count (0 when idle; for tests and stats).
  size_t InFlight() const;

 private:
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    bool leader_active = false;
    size_t members = 0;
    StatusOr<double> result{0.0};
  };

  /// Drops one membership; erases the flight when the last member leaves
  /// an unfinished flight. Caller holds mu_.
  void Depart(const ProxyCacheKey& key,
              const std::shared_ptr<Flight>& flight);

  MetricsRegistry* const metrics_;

  mutable std::mutex mu_;
  std::unordered_map<ProxyCacheKey, std::shared_ptr<Flight>,
                     ProxyCacheKeyHash>
      flights_;

  std::atomic<uint64_t> leaders_{0};
  std::atomic<uint64_t> waiters_{0};
  std::atomic<uint64_t> computes_{0};
  std::atomic<uint64_t> handoffs_{0};

  Counter& leader_counter_;
  Counter& waiter_counter_;
  Counter& compute_counter_;
  Counter& handoff_counter_;
};

}  // namespace tps

#endif  // TPS_TRANSFER_PROXY_FLIGHT_H_
