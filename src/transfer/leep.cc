#include "transfer/leep.h"

#include <cmath>

namespace tps {

StatusOr<double> LeepFromPredictions(const Matrix& predictions,
                                     const std::vector<int>& labels,
                                     int num_target_labels) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  if (n == 0 || num_source == 0) {
    return Status::InvalidArgument("LEEP needs a non-empty prediction matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("LEEP labels/predictions size mismatch");
  }
  if (num_target_labels < 2) {
    return Status::InvalidArgument("LEEP needs at least 2 target labels");
  }
  for (int y : labels) {
    if (y < 0 || y >= num_target_labels) {
      return Status::OutOfRange("LEEP label out of range");
    }
  }

  const size_t num_target = static_cast<size_t>(num_target_labels);
  // Empirical joint P(y, z).
  Matrix joint(num_target, num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t y = static_cast<size_t>(labels[i]);
    for (size_t z = 0; z < num_source; ++z) {
      joint.At(y, z) += predictions.At(i, z);
    }
  }
  for (size_t y = 0; y < num_target; ++y) {
    for (size_t z = 0; z < num_source; ++z) {
      joint.At(y, z) /= static_cast<double>(n);
    }
  }
  // Marginal P(z) and conditional P(y | z).
  std::vector<double> marginal(num_source, 0.0);
  for (size_t z = 0; z < num_source; ++z) {
    for (size_t y = 0; y < num_target; ++y) marginal[z] += joint.At(y, z);
  }
  Matrix conditional(num_target, num_source, 0.0);
  for (size_t z = 0; z < num_source; ++z) {
    if (marginal[z] <= 0.0) continue;  // Unused source label.
    for (size_t y = 0; y < num_target; ++y) {
      conditional.At(y, z) = joint.At(y, z) / marginal[z];
    }
  }
  // Mean log-likelihood of the expected empirical predictor.
  double total_log_likelihood = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t y = static_cast<size_t>(labels[i]);
    double eep = 0.0;
    for (size_t z = 0; z < num_source; ++z) {
      eep += conditional.At(y, z) * predictions.At(i, z);
    }
    // Guard log(0): an EEP of exactly zero means the label never co-occurs
    // with any predicted source label, which only happens on degenerate
    // inputs; floor it far below any realistic likelihood.
    total_log_likelihood += std::log(std::max(eep, 1e-12));
  }
  return total_log_likelihood / static_cast<double>(n);
}

StatusOr<double> LeepScorer::Score(const PretrainedModel& model,
                                   const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix predictions,
                       model.PredictDistributions(target));
  std::vector<int> labels(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    labels[i] = target.examples()[i].label;
  }
  return LeepFromPredictions(predictions, labels,
                             target.spec().num_labels);
}

}  // namespace tps
