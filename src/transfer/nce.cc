#include "transfer/nce.h"

#include "transfer/kernels.h"

namespace tps {

StatusOr<double> NceFromPredictions(const Matrix& predictions,
                                    const std::vector<int>& labels,
                                    int num_target_labels,
                                    kernels::KernelMode mode) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  if (n == 0 || num_source == 0) {
    return Status::InvalidArgument("NCE needs a non-empty prediction matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("NCE labels/predictions size mismatch");
  }
  if (num_target_labels < 2) {
    return Status::InvalidArgument("NCE needs at least 2 target labels");
  }
  for (int y : labels) {
    if (y < 0 || y >= num_target_labels) {
      return Status::OutOfRange("NCE label out of range");
    }
  }
  const size_t num_target = static_cast<size_t>(num_target_labels);
  return mode == kernels::KernelMode::kBatched
             ? kernels::NceBatched(predictions, labels, num_target)
             : kernels::NceReference(predictions, labels, num_target);
}

StatusOr<double> NceScorer::Score(const PretrainedModel& model,
                                  const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix predictions,
                       model.PredictDistributions(target));
  return NceFromPredictions(predictions, TargetLabels(target),
                            target.spec().num_labels, mode_);
}

StatusOr<std::vector<double>> NceScorer::ScoreBatch(
    const std::vector<const PretrainedModel*>& models,
    const Dataset& target) const {
  const std::vector<int> labels = TargetLabels(target);
  std::vector<double> scores;
  scores.reserve(models.size());
  for (const PretrainedModel* model : models) {
    TPS_ASSIGN_OR_RETURN(Matrix predictions,
                         model->PredictDistributions(target));
    TPS_ASSIGN_OR_RETURN(
        double score,
        NceFromPredictions(predictions, labels, target.spec().num_labels,
                           mode_));
    scores.push_back(score);
  }
  return scores;
}

}  // namespace tps
