#include "transfer/nce.h"

#include <cmath>

namespace tps {

StatusOr<double> NceFromPredictions(const Matrix& predictions,
                                    const std::vector<int>& labels,
                                    int num_target_labels) {
  const size_t n = predictions.rows();
  const size_t num_source = predictions.cols();
  if (n == 0 || num_source == 0) {
    return Status::InvalidArgument("NCE needs a non-empty prediction matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("NCE labels/predictions size mismatch");
  }
  if (num_target_labels < 2) {
    return Status::InvalidArgument("NCE needs at least 2 target labels");
  }

  const size_t num_target = static_cast<size_t>(num_target_labels);
  // Empirical joint of (y, argmax-z) counts.
  Matrix counts(num_target, num_source, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    if (y < 0 || y >= num_target_labels) {
      return Status::OutOfRange("NCE label out of range");
    }
    size_t best_z = 0;
    for (size_t z = 1; z < num_source; ++z) {
      if (predictions.At(i, z) > predictions.At(i, best_z)) best_z = z;
    }
    counts.At(static_cast<size_t>(y), best_z) += 1.0;
  }

  // H(Y | Z) = sum_z P(z) * H(Y | Z = z).
  double conditional_entropy = 0.0;
  for (size_t z = 0; z < num_source; ++z) {
    double nz = 0.0;
    for (size_t y = 0; y < num_target; ++y) nz += counts.At(y, z);
    if (nz <= 0.0) continue;
    double h = 0.0;
    for (size_t y = 0; y < num_target; ++y) {
      const double p = counts.At(y, z) / nz;
      if (p > 0.0) h -= p * std::log(p);
    }
    conditional_entropy += (nz / static_cast<double>(n)) * h;
  }
  return -conditional_entropy;
}

StatusOr<double> NceScorer::Score(const PretrainedModel& model,
                                  const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix predictions,
                       model.PredictDistributions(target));
  std::vector<int> labels(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    labels[i] = target.examples()[i].label;
  }
  return NceFromPredictions(predictions, labels, target.spec().num_labels);
}

}  // namespace tps
