#include "transfer/score_cache.h"

#include <cstring>

namespace tps {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMixBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixString(uint64_t h, const std::string& s) {
  // Length-prefixed so {"ab","c"} and {"a","bc"} differ.
  const uint64_t len = s.size();
  h = FnvMixBytes(h, &len, sizeof(len));
  return FnvMixBytes(h, s.data(), s.size());
}

uint64_t FnvMixU64(uint64_t h, uint64_t v) {
  return FnvMixBytes(h, &v, sizeof(v));
}

uint64_t FnvMixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvMixU64(h, bits);
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  const DatasetSpec& spec = dataset.spec();
  uint64_t h = kFnvOffset;
  h = FnvMixString(h, spec.name);
  h = FnvMixU64(h, dataset.seed());
  h = FnvMixU64(h, static_cast<uint64_t>(spec.domain));
  h = FnvMixU64(h, static_cast<uint64_t>(spec.role));
  h = FnvMixU64(h, static_cast<uint64_t>(spec.num_labels));
  h = FnvMixU64(h, static_cast<uint64_t>(spec.num_examples));
  h = FnvMixDouble(h, spec.difficulty);
  h = FnvMixDouble(h, spec.chance_accuracy);
  h = FnvMixDouble(h, spec.ceiling_accuracy);
  h = FnvMixU64(h, spec.tags.size());
  for (const std::string& tag : spec.tags) h = FnvMixString(h, tag);
  return h;
}

size_t ProxyCacheKeyHash::operator()(const ProxyCacheKey& key) const {
  uint64_t h = FnvMixU64(kFnvOffset, key.dataset_fingerprint);
  h = FnvMixU64(h, key.artifact_epoch);
  h = FnvMixString(h, key.model);
  h = FnvMixString(h, key.scorer);
  return static_cast<size_t>(h);
}

ProxyScoreCache::ProxyScoreCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity),
      hit_counter_((metrics != nullptr ? metrics : MetricsRegistry::Default())
                       ->counter("proxy_cache.hits")),
      miss_counter_((metrics != nullptr ? metrics
                                        : MetricsRegistry::Default())
                        ->counter("proxy_cache.misses")),
      eviction_counter_(
          (metrics != nullptr ? metrics : MetricsRegistry::Default())
              ->counter("proxy_cache.evictions")),
      entries_gauge_((metrics != nullptr ? metrics
                                         : MetricsRegistry::Default())
                         ->gauge("proxy_cache.entries")) {}

std::optional<double> ProxyScoreCache::Lookup(const ProxyCacheKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter_.Increment();
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter_.Increment();
  return std::nullopt;
}

void ProxyScoreCache::Insert(const ProxyCacheKey& key, double score) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = score;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    index_.erase(victim.first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    eviction_counter_.Increment();
  }
  lru_.emplace_front(key, score);
  index_.emplace(key, lru_.begin());
  entries_gauge_.Set(static_cast<double>(lru_.size()));
}

StatusOr<double> ProxyScoreCache::GetOrCompute(const ProxyScorer& scorer,
                                               const PretrainedModel& model,
                                               const Dataset& target,
                                               uint64_t artifact_epoch) {
  ProxyCacheKey key;
  key.dataset_fingerprint = DatasetFingerprint(target);
  key.model = model.name();
  key.scorer = scorer.name();
  key.artifact_epoch = artifact_epoch;
  if (std::optional<double> cached = Lookup(key); cached.has_value()) {
    return *cached;
  }
  TPS_ASSIGN_OR_RETURN(double score, scorer.Score(model, target));
  Insert(key, score);
  return score;
}

void ProxyScoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  entries_gauge_.Set(0.0);
}

size_t ProxyScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<ProxyCacheKey> ProxyScoreCache::KeysByRecency() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProxyCacheKey> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) keys.push_back(entry.first);
  return keys;
}

}  // namespace tps
