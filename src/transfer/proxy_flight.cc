#include "transfer/proxy_flight.h"

#include <chrono>

namespace tps {

namespace {
// Waiters poll their own cancellation at this cadence while the leader
// computes; 1ms keeps waiter deadline latency tight without burning the
// core the leader needs.
constexpr std::chrono::milliseconds kWaiterPoll{1};
}  // namespace

ProxyFlightGroup::ProxyFlightGroup(MetricsRegistry* metrics)
    : metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
      leader_counter_(metrics_->counter("proxy_flight.leaders")),
      waiter_counter_(metrics_->counter("proxy_flight.waiters")),
      compute_counter_(metrics_->counter("proxy_flight.computes")),
      handoff_counter_(metrics_->counter("proxy_flight.handoffs")) {}

size_t ProxyFlightGroup::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

void ProxyFlightGroup::Depart(const ProxyCacheKey& key,
                              const std::shared_ptr<Flight>& flight) {
  flight->members -= 1;
  if (flight->members == 0 && !flight->done) {
    // Last member left an unfinished flight (everyone cancelled); retire
    // it so the next arrival starts fresh instead of waiting forever.
    auto it = flights_.find(key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
}

StatusOr<double> ProxyFlightGroup::ComputeShared(
    const ProxyCacheKey& key, const std::function<Status()>& poll_cancel,
    const std::function<std::optional<double>()>& lookup,
    const std::function<StatusOr<double>()>& compute) {
  std::shared_ptr<Flight> flight;
  bool is_leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flight->leader_active = true;
      flight->members = 1;
      flights_.emplace(key, flight);
      is_leader = true;
      leaders_.fetch_add(1, std::memory_order_relaxed);
      leader_counter_.Increment();
    } else {
      flight = it->second;
      flight->members += 1;
      waiters_.fetch_add(1, std::memory_order_relaxed);
      waiter_counter_.Increment();
    }
  }

  while (true) {
    if (is_leader) {
      // Lookup + compute run with no lock held; the flight map stays
      // responsive for other keys while this one works.
      StatusOr<double> result = [&]() -> StatusOr<double> {
        if (lookup) {
          // A promoted leader re-checks the cache: the abdicating leader
          // may have raced with a concurrent insert.
          if (std::optional<double> cached = lookup(); cached.has_value()) {
            return *cached;
          }
        }
        StatusOr<double> computed = compute();
        if (computed.ok()) {
          computes_.fetch_add(1, std::memory_order_relaxed);
          compute_counter_.Increment();
        }
        return computed;
      }();

      std::lock_guard<std::mutex> lock(mu_);
      const bool cancelled =
          !result.ok() && result.status().IsDeadlineExceeded();
      if (cancelled && flight->members > 1) {
        // This caller's own deadline expired but live waiters remain:
        // abdicate instead of failing the flight. One waiter promotes
        // itself to leader and runs ITS OWN compute closure.
        flight->leader_active = false;
        flight->members -= 1;
        flight->cv.notify_all();
        return result;
      }
      // Publish: success, genuine (deterministic) error, or a cancelled
      // leader with nobody left to hand off to. Retire the flight from
      // the map so post-flight arrivals go to the cache / a fresh flight;
      // members still holding the shared_ptr read `result` off it.
      flight->done = true;
      flight->result = result;
      auto it = flights_.find(key);
      if (it != flights_.end() && it->second == flight) flights_.erase(it);
      flight->members -= 1;
      flight->cv.notify_all();
      return result;
    }

    // Waiter path: wait for the flight to finish or the leader to
    // abdicate, polling our own cancellation in between.
    std::unique_lock<std::mutex> lock(mu_);
    while (!flight->done && flight->leader_active) {
      flight->cv.wait_for(lock, kWaiterPoll);
      if (flight->done || !flight->leader_active) break;
      if (poll_cancel) {
        Status status = poll_cancel();
        if (!status.ok()) {
          Depart(key, flight);
          return status;
        }
      }
    }
    if (flight->done) {
      flight->members -= 1;
      return flight->result;
    }
    // Leader abdicated and we won the promotion race (the first waiter
    // through the lock flips leader_active back on; the rest keep
    // waiting on the same flight).
    flight->leader_active = true;
    is_leader = true;
    handoffs_.fetch_add(1, std::memory_order_relaxed);
    handoff_counter_.Increment();
    leaders_.fetch_add(1, std::memory_order_relaxed);
    leader_counter_.Increment();
  }
}

StatusOr<double> ProxyFlightGroup::GetOrCompute(
    ProxyScoreCache* cache, const ProxyCacheKey& key,
    const std::function<Status()>& poll_cancel,
    const std::function<StatusOr<double>()>& compute) {
  if (cache != nullptr) {
    if (std::optional<double> cached = cache->Lookup(key);
        cached.has_value()) {
      return *cached;
    }
  }
  std::function<std::optional<double>()> lookup;
  if (cache != nullptr) {
    lookup = [cache, &key]() { return cache->Lookup(key); };
  }
  // The leader inserts into the cache BEFORE the flight is retired, so a
  // request arriving after the flight hits the cache: compute runs exactly
  // once per key no matter how arrivals interleave.
  auto compute_and_insert = [cache, &key, &compute]() -> StatusOr<double> {
    StatusOr<double> result = compute();
    if (result.ok() && cache != nullptr) cache->Insert(key, *result);
    return result;
  };
  return ComputeShared(key, poll_cancel, lookup, compute_and_insert);
}

}  // namespace tps
