#include "transfer/logme.h"

#include <cmath>
#include <numbers>

#include "matrix/eigen.h"
#include "matrix/vector_ops.h"

namespace tps {

namespace {

/// Evidence of one binary (one-vs-rest) regression target, maximized over
/// (alpha, beta) by the LogME fixed-point iteration.
double EvidenceForTarget(const Matrix& features,
                         const SymmetricEigenResult& gram_eigen,
                         const std::vector<double>& fty, double yty) {
  const size_t n = features.rows();
  const size_t dims = features.cols();
  const std::vector<double>& lambda = gram_eigen.values;

  // Project F^T y onto the Gram eigenbasis once: p_j = v_j . (F^T y).
  std::vector<double> projected(dims, 0.0);
  for (size_t j = 0; j < dims; ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < dims; ++i) {
      dot += gram_eigen.vectors.At(i, j) * fty[i];
    }
    projected[j] = dot;
  }

  double alpha = 1.0;
  double beta = 1.0;
  double m_squared = 0.0;
  double residual = yty;
  for (int iteration = 0; iteration < 100; ++iteration) {
    // In the eigenbasis, m_j = beta * p_j / (alpha + beta * lambda_j).
    double gamma = 0.0;
    m_squared = 0.0;
    double mt_gram_m = 0.0;  // m^T (F^T F) m
    double mt_fty = 0.0;     // m^T F^T y
    for (size_t j = 0; j < dims; ++j) {
      const double lj = std::max(lambda[j], 0.0);
      const double denom = alpha + beta * lj;
      const double mj = beta * projected[j] / denom;
      gamma += beta * lj / denom;
      m_squared += mj * mj;
      mt_gram_m += mj * mj * lj;
      mt_fty += mj * projected[j];
    }
    residual = std::max(yty - 2.0 * mt_fty + mt_gram_m, 1e-12);
    const double new_alpha = gamma / std::max(m_squared, 1e-12);
    const double new_beta =
        (static_cast<double>(n) - gamma) / residual;
    const bool converged = std::fabs(new_alpha - alpha) <=
                               1e-4 * std::fabs(alpha) &&
                           std::fabs(new_beta - beta) <=
                               1e-4 * std::fabs(beta);
    alpha = std::max(new_alpha, 1e-10);
    beta = std::max(new_beta, 1e-10);
    if (converged) break;
  }

  // log|A| with A = alpha I + beta F^T F.
  double log_det = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    log_det += std::log(alpha + beta * std::max(lambda[j], 0.0));
  }
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(dims);
  const double evidence =
      0.5 * (nd * std::log(beta) + dd * std::log(alpha) - log_det -
             beta * residual - alpha * m_squared -
             nd * std::log(2.0 * std::numbers::pi));
  return evidence / nd;
}

}  // namespace

StatusOr<double> LogMeFromFeatures(const Matrix& features,
                                   const std::vector<int>& labels,
                                   int num_target_labels) {
  const size_t n = features.rows();
  const size_t dims = features.cols();
  if (n == 0 || dims == 0) {
    return Status::InvalidArgument("LogME needs a non-empty feature matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("LogME labels/features size mismatch");
  }
  if (num_target_labels < 2) {
    return Status::InvalidArgument("LogME needs at least 2 target labels");
  }
  for (int y : labels) {
    if (y < 0 || y >= num_target_labels) {
      return Status::OutOfRange("LogME label out of range");
    }
  }

  // Gram matrix F^T F (D x D) and its spectrum, shared by all classes.
  Matrix gram(dims, dims, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < dims; ++a) {
      const double fa = features.At(i, a);
      if (fa == 0.0) continue;
      for (size_t b = a; b < dims; ++b) {
        gram.At(a, b) += fa * features.At(i, b);
      }
    }
  }
  for (size_t a = 0; a < dims; ++a) {
    for (size_t b = 0; b < a; ++b) gram.At(a, b) = gram.At(b, a);
  }
  TPS_ASSIGN_OR_RETURN(SymmetricEigenResult gram_eigen,
                       SymmetricEigen(gram, /*symmetry_tolerance=*/1e-6));

  double total_evidence = 0.0;
  for (int c = 0; c < num_target_labels; ++c) {
    // One-vs-rest target vector.
    std::vector<double> y(n, 0.0);
    double yty = 0.0;
    for (size_t i = 0; i < n; ++i) {
      y[i] = labels[i] == c ? 1.0 : 0.0;
      yty += y[i];
    }
    // F^T y.
    std::vector<double> fty(dims, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (y[i] == 0.0) continue;
      for (size_t a = 0; a < dims; ++a) fty[a] += features.At(i, a);
    }
    total_evidence += EvidenceForTarget(features, gram_eigen, fty, yty);
  }
  return total_evidence / static_cast<double>(num_target_labels);
}

StatusOr<double> LogMeScorer::Score(const PretrainedModel& model,
                                    const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix features, model.ExtractFeatures(target));
  std::vector<int> labels(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    labels[i] = target.examples()[i].label;
  }
  return LogMeFromFeatures(features, labels, target.spec().num_labels);
}

}  // namespace tps
