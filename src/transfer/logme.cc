#include "transfer/logme.h"

#include "transfer/kernels.h"

namespace tps {

StatusOr<double> LogMeFromFeatures(const Matrix& features,
                                   const std::vector<int>& labels,
                                   int num_target_labels,
                                   kernels::KernelMode mode) {
  const size_t n = features.rows();
  const size_t dims = features.cols();
  if (n == 0 || dims == 0) {
    return Status::InvalidArgument("LogME needs a non-empty feature matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("LogME labels/features size mismatch");
  }
  if (num_target_labels < 2) {
    return Status::InvalidArgument("LogME needs at least 2 target labels");
  }
  for (int y : labels) {
    if (y < 0 || y >= num_target_labels) {
      return Status::OutOfRange("LogME label out of range");
    }
  }
  const size_t num_target = static_cast<size_t>(num_target_labels);
  return mode == kernels::KernelMode::kBatched
             ? kernels::LogMeBatched(features, labels, num_target)
             : kernels::LogMeReference(features, labels, num_target);
}

StatusOr<double> LogMeScorer::Score(const PretrainedModel& model,
                                    const Dataset& target) const {
  TPS_ASSIGN_OR_RETURN(Matrix features, model.ExtractFeatures(target));
  return LogMeFromFeatures(features, TargetLabels(target),
                           target.spec().num_labels, mode_);
}

StatusOr<std::vector<double>> LogMeScorer::ScoreBatch(
    const std::vector<const PretrainedModel*>& models,
    const Dataset& target) const {
  const std::vector<int> labels = TargetLabels(target);
  std::vector<double> scores;
  scores.reserve(models.size());
  for (const PretrainedModel* model : models) {
    TPS_ASSIGN_OR_RETURN(Matrix features, model->ExtractFeatures(target));
    TPS_ASSIGN_OR_RETURN(
        double score,
        LogMeFromFeatures(features, labels, target.spec().num_labels, mode_));
    scores.push_back(score);
  }
  return scores;
}

}  // namespace tps
