#ifndef TPS_MODEL_ZOO_GEN_H_
#define TPS_MODEL_ZOO_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_spec.h"
#include "util/statusor.h"

namespace tps {

/// Parameters of a generated large model zoo (the scaling counterpart of
/// the 40/30-model paper zoos): `num_models` specs drawn from the domain's
/// tag vocabulary, organized into lineages — groups sharing a family,
/// pre-training corpus, fine-tune dataset and base capability, the way
/// real repositories hold many fine-tunes of the same base checkpoint.
/// Lineage structure is what gives the generated zoo a meaningful cluster
/// geometry for the recall index to exploit.
///
/// Generation is a pure function of this spec: the same spec yields
/// bit-identical specs on every run, machine and thread count
/// (tests/model/zoo_gen_test.cc pins it).
struct ZooGenSpec {
  TaskDomain domain = TaskDomain::kNLP;
  /// Zoo size; the generator is intended for 1e3 - 1e5 models.
  size_t num_models = 1000;
  uint64_t seed = 17;
  /// Lineage count; 0 = one lineage per ~12 models (the paper zoos'
  /// ratio).
  size_t num_lineages = 0;
  /// Fraction of models drawn as one-off singletons (fresh random
  /// identity, no lineage) — the repository long tail that exercises the
  /// Eq. 4 propagation path.
  double singleton_fraction = 0.05;
  /// Stddev of the per-member capability jitter around the lineage base.
  double capability_jitter = 0.02;
  /// Name prefix: models are named "<prefix>/<domain>-<family>-<i>".
  std::string name_prefix = "gen";
};

/// Generates the zoo. Fails on an invalid spec (zero models, negative
/// jitter, fraction outside [0, 1], empty prefix, more lineages than
/// models).
StatusOr<std::vector<ModelSpec>> GenerateZooSpecs(const ZooGenSpec& spec);

}  // namespace tps

#endif  // TPS_MODEL_ZOO_GEN_H_
