#ifndef TPS_MODEL_MODEL_SPEC_H_
#define TPS_MODEL_MODEL_SPEC_H_

#include <string>
#include <vector>

#include "data/dataset_spec.h"

namespace tps {

/// Static description of a (simulated) pre-trained model.
///
/// A model's transfer behaviour is driven by two latent quantities derived
/// from this spec:
///  - *capability*: overall representation quality (architecture family,
///    parameter scale, training recipe), and
///  - *domain affinity*: a latent-space vector mixed from the model's
///    pre-training tags and (optionally) its fine-tuning dataset's tags.
/// Models sharing a base family and fine-tune dataset therefore land close
/// together in affinity space and produce near-identical performance
/// vectors — which is exactly why the paper's clustering groups the
/// `bert_ft_qqp-*` lineage into one cluster (Table II).
struct ModelSpec {
  /// Full repository-style name, e.g. "Jeevesh8/bert_ft_qqp-68".
  std::string name;

  TaskDomain domain = TaskDomain::kNLP;

  /// Architecture family, e.g. "bert", "albert", "vit", "beit".
  std::string family = "bert";

  /// Parameter count in millions (documentation + model-card text; mildly
  /// influences simulated load cost).
  double scale_millions = 110.0;

  /// Base representation quality in (0, 1). Per-model jitter is added
  /// deterministically from the name at construction.
  double capability = 0.6;

  /// Domain concepts of the pre-training corpus, e.g. {"english", "books"}
  /// or {"natural-images", "imagenet1k"}.
  std::vector<std::string> pretrain_tags;

  /// Domain concepts of the fine-tuning dataset; empty for pre-train-only
  /// models.
  std::vector<std::string> finetune_tags;

  /// Weight of the fine-tune component in the affinity mixture. 0.5 for a
  /// fully fine-tuned model; small (e.g. 0.15) for mostly-frozen
  /// fine-tunes; ignored when finetune_tags is empty.
  double finetune_strength = 0.5;

  /// Size of the model's source label space (its classification head).
  /// Pre-train-only models get a pseudo-label space (the paper applies LEEP
  /// to them through their pre-training task head).
  int num_source_labels = 16;

  /// Free-text blurb used to generate the model card (text-based similarity
  /// baseline of Table I).
  std::string description;
};

}  // namespace tps

#endif  // TPS_MODEL_MODEL_SPEC_H_
