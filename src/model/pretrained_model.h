#ifndef TPS_MODEL_PRETRAINED_MODEL_H_
#define TPS_MODEL_PRETRAINED_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "matrix/matrix.h"
#include "model/model_spec.h"
#include "util/statusor.h"

namespace tps {

/// A materialized pre-trained model: spec + latent affinity vector +
/// source-label prototypes + a simulated predictive head.
///
/// The predictive head is what the proxy scores (LEEP/NCE/kNN) consume: for
/// a target example x it produces a softmax distribution over the model's
/// source label space. Prediction sharpness scales with
/// capability x domain-alignment (a model produces crisp, consistent
/// activations on in-domain inputs and diffuse ones off-domain), which is
/// the mechanism that makes transferability proxies informative in the real
/// world; see DESIGN.md for the substitution rationale.
class PretrainedModel {
 public:
  /// Builds the model deterministically from its spec. Fails on invalid
  /// specs (empty name, capability outside (0,1), < 2 source labels).
  static StatusOr<PretrainedModel> Create(const ModelSpec& spec);

  const ModelSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  TaskDomain domain() const { return spec_.domain; }

  /// Latent domain-affinity vector (unit norm).
  const std::vector<double>& affinity() const { return affinity_; }

  /// Effective capability: spec capability plus deterministic per-model
  /// jitter, clamped to (0, 1).
  double capability() const { return capability_; }

  /// Deterministic seed derived from the model name.
  uint64_t seed() const { return seed_; }

  /// Cosine similarity between this model's affinity and the dataset's
  /// domain vector, in [-1, 1].
  double DomainCosine(const Dataset& dataset) const;

  /// Softmax predictions of the source head over every example of
  /// `dataset`: an examples x num_source_labels row-stochastic matrix.
  /// Fails if the dataset's task domain differs from the model's (a CV
  /// backbone cannot embed text).
  StatusOr<Matrix> PredictDistributions(const Dataset& dataset) const;

  /// Penultimate-layer activations (the source-head logits) for every
  /// example: an examples x num_source_labels matrix. These are the
  /// "features" consumed by feature-based proxies (LogME, kNN).
  /// PredictDistributions is the row-wise softmax of this matrix.
  ///
  /// This is the SoA batch entry point of the forward pass (the inner loop
  /// streams dimension-major prototypes). The *Reference variants below
  /// retain the straightforward AoS loops; both pairs are bit-identical
  /// and the differential kernel harness pins it.
  StatusOr<Matrix> ExtractFeatures(const Dataset& dataset) const;

  /// Reference (AoS, per-example vec::Dot) forward pass. Test-only: kept
  /// so the kernel-equivalence suite can diff the SoA path against the
  /// original loop structure forever.
  StatusOr<Matrix> ExtractFeaturesReference(const Dataset& dataset) const;

  /// Reference predictions: ExtractFeaturesReference + allocating per-row
  /// softmax. Test-only counterpart of PredictDistributions.
  StatusOr<Matrix> PredictDistributionsReference(const Dataset& dataset) const;

 private:
  struct HeadParams {
    double beta = 0.0;
    double separation = 0.0;
    size_t route_offset = 0;
  };

  PretrainedModel() = default;

  /// Deterministic per-(model, dataset) head parameters, shared by the SoA
  /// and reference forward passes (identical Rng draw order).
  HeadParams ComputeHeadParams(const Dataset& dataset) const;

  Status CheckDomain(const Dataset& dataset) const;

  ModelSpec spec_;
  uint64_t seed_ = 0;
  double capability_ = 0.0;
  std::vector<double> affinity_;
  /// Source-label prototype directions, one per source label (unit norm).
  std::vector<std::vector<double>> source_prototypes_;
  /// The same prototypes transposed to dimension-major SoA layout
  /// (proto_soa_[d * Z + z] = source_prototypes_[z][d]), so the batch
  /// forward pass accumulates all Z logits with a contiguous inner loop.
  std::vector<double> proto_soa_;
};

}  // namespace tps

#endif  // TPS_MODEL_PRETRAINED_MODEL_H_
