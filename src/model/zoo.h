#ifndef TPS_MODEL_ZOO_H_
#define TPS_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "model/pretrained_model.h"
#include "util/statusor.h"

namespace tps {

/// The model repository M = {m_1, ..., m_n}: an ordered, owned collection
/// of pre-trained models with name lookup. Model indices within a zoo are
/// the model ids used by the performance matrix and clustering.
class ModelZoo {
 public:
  /// Materializes all specs. Fails on duplicate names or invalid specs.
  static StatusOr<ModelZoo> Create(const std::vector<ModelSpec>& specs);

  const std::vector<PretrainedModel>& models() const { return models_; }
  size_t size() const { return models_.size(); }

  const PretrainedModel& model(size_t index) const;

  /// Index lookup by model name; NotFound if absent.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  /// Pointer lookup by model name; NotFound if absent. The pointer stays
  /// valid for the zoo's lifetime.
  StatusOr<const PretrainedModel*> Find(const std::string& name) const;

  /// A sub-zoo containing only the models at `indices` (in that order).
  StatusOr<ModelZoo> Subset(const std::vector<size_t>& indices) const;

 private:
  ModelZoo() = default;

  std::vector<PretrainedModel> models_;
};

}  // namespace tps

#endif  // TPS_MODEL_ZOO_H_
