#include "model/zoo_gen.h"

#include <algorithm>
#include <utility>

#include "data/latent.h"
#include "model/paper_zoo.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tps {

namespace {

/// One lineage: the shared identity its members inherit.
struct Lineage {
  std::string family;
  size_t corpus = 0;
  size_t finetune = 0;
  double capability = 0.5;
  double scale_millions = 100.0;
  int num_source_labels = 16;
};

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// Skewed-low capability draw (the Fig. 1 shape): most repository models
/// are mediocre, a few are strong. Same expression as SyntheticZooSpecs.
double DrawCapability(Rng& rng) {
  const double u = rng.Uniform();
  return 0.35 + 0.5 * u * u;
}

}  // namespace

StatusOr<std::vector<ModelSpec>> GenerateZooSpecs(const ZooGenSpec& spec) {
  if (spec.num_models == 0) {
    return Status::InvalidArgument("zoo-gen needs num_models >= 1");
  }
  if (spec.singleton_fraction < 0.0 || spec.singleton_fraction > 1.0) {
    return Status::InvalidArgument(
        "singleton_fraction must be in [0, 1]");
  }
  if (spec.capability_jitter < 0.0) {
    return Status::InvalidArgument("capability_jitter must be >= 0");
  }
  if (spec.name_prefix.empty()) {
    return Status::InvalidArgument("name_prefix must not be empty");
  }
  if (spec.num_lineages > spec.num_models) {
    return Status::InvalidArgument(
        "num_lineages must not exceed num_models");
  }

  const size_t num_lineages =
      spec.num_lineages != 0
          ? spec.num_lineages
          : std::max<size_t>(1, spec.num_models / 12);
  const bool nlp = spec.domain == TaskDomain::kNLP;
  const ZooTagVocabulary vocab = SyntheticTagVocabulary(spec.domain);

  // One generator, drawn from strictly sequentially: generation is
  // single-threaded by construction, so the output is a pure function of
  // the spec regardless of any --threads the caller uses downstream.
  Rng rng(latent::CombineSeeds(
      spec.seed, latent::HashString("zoo-gen/" + spec.name_prefix)));

  std::vector<Lineage> lineages(num_lineages);
  std::vector<double> weights(num_lineages);
  for (size_t l = 0; l < num_lineages; ++l) {
    Lineage& lineage = lineages[l];
    lineage.family = vocab.families[rng.UniformInt(vocab.families.size())];
    lineage.corpus = rng.UniformInt(vocab.corpora.size());
    lineage.finetune = rng.UniformInt(vocab.finetunes.size());
    lineage.capability = DrawCapability(rng);
    lineage.scale_millions = rng.Uniform(10.0, 350.0);
    lineage.num_source_labels =
        static_cast<int>(2 + rng.UniformInt(30));
    // Popularity is skewed too: a few base checkpoints attract most of
    // the fine-tunes.
    const double w = rng.Uniform();
    weights[l] = 0.1 + w * w;
  }

  std::vector<ModelSpec> specs;
  specs.reserve(spec.num_models);
  for (size_t i = 0; i < spec.num_models; ++i) {
    ModelSpec model;
    model.domain = spec.domain;
    model.description = "Generated zoo member (zoo-gen).";
    if (rng.Bernoulli(spec.singleton_fraction)) {
      // A one-off: fresh identity, correlated with nothing.
      model.family = vocab.families[rng.UniformInt(vocab.families.size())];
      model.pretrain_tags =
          vocab.corpora[rng.UniformInt(vocab.corpora.size())];
      model.finetune_tags =
          vocab.finetunes[rng.UniformInt(vocab.finetunes.size())];
      model.capability = DrawCapability(rng);
      model.scale_millions = rng.Uniform(10.0, 350.0);
      model.num_source_labels =
          model.finetune_tags.empty()
              ? 16
              : static_cast<int>(2 + rng.UniformInt(8));
    } else {
      const Lineage& lineage = lineages[rng.Categorical(weights)];
      model.family = lineage.family;
      model.pretrain_tags = vocab.corpora[lineage.corpus];
      model.finetune_tags = vocab.finetunes[lineage.finetune];
      model.capability =
          Clamp(lineage.capability +
                    rng.Normal(0.0, spec.capability_jitter),
                0.05, 0.95);
      // Members of a lineage are size variants of the base checkpoint.
      model.scale_millions =
          Clamp(lineage.scale_millions * rng.Uniform(0.5, 1.5), 5.0,
                500.0);
      model.num_source_labels = lineage.num_source_labels;
    }
    model.finetune_strength = model.finetune_tags.empty() ? 0.0 : 0.5;
    model.name = strings::Format("%s/%s-%s-%zu", spec.name_prefix.c_str(),
                                 nlp ? "nlp" : "cv", model.family.c_str(),
                                 i);
    specs.push_back(std::move(model));
  }
  return specs;
}

}  // namespace tps
