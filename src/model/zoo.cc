#include "model/zoo.h"

#include <unordered_set>

#include "util/logging.h"

namespace tps {

StatusOr<ModelZoo> ModelZoo::Create(const std::vector<ModelSpec>& specs) {
  ModelZoo zoo;
  std::unordered_set<std::string> seen;
  zoo.models_.reserve(specs.size());
  for (const ModelSpec& spec : specs) {
    if (!seen.insert(spec.name).second) {
      return Status::AlreadyExists("duplicate model name: " + spec.name);
    }
    TPS_ASSIGN_OR_RETURN(PretrainedModel model, PretrainedModel::Create(spec));
    zoo.models_.push_back(std::move(model));
  }
  return zoo;
}

const PretrainedModel& ModelZoo::model(size_t index) const {
  TPS_CHECK(index < models_.size());
  return models_[index];
}

StatusOr<size_t> ModelZoo::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].name() == name) return i;
  }
  return Status::NotFound("model not found: " + name);
}

StatusOr<const PretrainedModel*> ModelZoo::Find(
    const std::string& name) const {
  TPS_ASSIGN_OR_RETURN(size_t index, IndexOf(name));
  return &models_[index];
}

StatusOr<ModelZoo> ModelZoo::Subset(const std::vector<size_t>& indices) const {
  ModelZoo subset;
  subset.models_.reserve(indices.size());
  for (size_t index : indices) {
    if (index >= models_.size()) {
      return Status::OutOfRange("model index out of range in Subset");
    }
    subset.models_.push_back(models_[index]);
  }
  return subset;
}

}  // namespace tps
