#include "model/pretrained_model.h"

#include <cmath>

#include "data/latent.h"
#include "matrix/vector_ops.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tps {

namespace {
// Affinity mixture weights.
constexpr double kPretrainWeight = 0.7;
constexpr double kModelNoiseWeight = 0.10;
// Predictive-head geometry: source prototypes mirror the dataset example
// mixture so that cross dot-products carry label signal.
constexpr double kHeadAffinityWeight = 0.45;
constexpr double kHeadLabelWeight = 0.9;
// Sharpness = kBetaBase + kBetaScale * capability * max(0, domain cosine),
// times a per-(model, dataset) idiosyncratic log-normal factor.
constexpr double kBetaBase = 2.0;
constexpr double kBetaScale = 36.0;
constexpr double kBetaIdiosyncrasy = 0.10;
// Class-separation term: a transferable model's representation clusters
// target examples by their true class (the empirical regularity LEEP, kNN
// and LogME all exploit). Each target label y is routed to a fixed,
// model-specific source label sigma(y); the routing logit scales with
// capability * alignment.
constexpr double kSeparationScale = 7.0;
constexpr double kSeparationIdiosyncrasy = 0.12;
}  // namespace

StatusOr<PretrainedModel> PretrainedModel::Create(const ModelSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (spec.capability <= 0.0 || spec.capability >= 1.0) {
    return Status::InvalidArgument("model " + spec.name +
                                   " capability must be in (0, 1)");
  }
  if (spec.num_source_labels < 2) {
    return Status::InvalidArgument("model " + spec.name +
                                   " needs at least 2 source labels");
  }
  if (spec.finetune_strength < 0.0 || spec.finetune_strength > 1.0) {
    return Status::InvalidArgument("model " + spec.name +
                                   " finetune_strength must be in [0, 1]");
  }

  PretrainedModel model;
  model.spec_ = spec;
  model.seed_ = latent::HashString(spec.name);

  Rng jitter_rng(latent::CombineSeeds(model.seed_,
                                      latent::HashString("capability")));
  model.capability_ =
      stats::Clamp(spec.capability + 0.02 * jitter_rng.Normal(), 0.05, 0.98);

  // Affinity: pretraining direction + optional fine-tune direction +
  // per-model idiosyncratic noise. The architecture family contributes its
  // own direction (inductive biases shape a model's transfer profile —
  // PoolFormers transfer alike, ViTs alike), which is what lets family
  // groups co-cluster in Table II even without a shared fine-tune dataset.
  std::vector<std::string> base_tags = spec.pretrain_tags;
  base_tags.push_back("family-" + spec.family);
  std::vector<double> base = latent::MixTags(
      base_tags, /*noise_scale=*/0.08,
      latent::CombineSeeds(model.seed_, latent::HashString("pretrain")));
  std::vector<double> affinity = vec::Scale(base, kPretrainWeight);
  if (!spec.finetune_tags.empty() && spec.finetune_strength > 0.0) {
    std::vector<double> ft = latent::MixTags(
        spec.finetune_tags, /*noise_scale=*/0.08,
        latent::CombineSeeds(model.seed_, latent::HashString("finetune")));
    affinity = vec::Add(affinity, vec::Scale(ft, spec.finetune_strength));
  }
  Rng noise_rng(latent::CombineSeeds(model.seed_,
                                     latent::HashString("affinity-noise")));
  std::vector<double> idio(latent::kDims);
  for (double& v : idio) v = noise_rng.Normal();
  vec::NormalizeInPlace(idio);
  for (size_t i = 0; i < latent::kDims; ++i) {
    affinity[i] += kModelNoiseWeight * idio[i];
  }
  vec::NormalizeInPlace(affinity);
  model.affinity_ = std::move(affinity);

  model.source_prototypes_.reserve(
      static_cast<size_t>(spec.num_source_labels));
  for (int z = 0; z < spec.num_source_labels; ++z) {
    std::vector<double> proto = latent::LabelVector(
        latent::CombineSeeds(model.seed_, latent::HashString("head")), z);
    // Head prototype = affinity-anchored + label-specific direction, same
    // mixture shape as dataset examples.
    std::vector<double> psi(latent::kDims);
    for (size_t d = 0; d < latent::kDims; ++d) {
      psi[d] = kHeadAffinityWeight * model.affinity_[d] +
               kHeadLabelWeight * proto[d];
    }
    vec::NormalizeInPlace(psi);
    model.source_prototypes_.push_back(std::move(psi));
  }
  // Dimension-major transpose of the prototypes for the SoA forward pass.
  const size_t num_protos = model.source_prototypes_.size();
  model.proto_soa_.resize(latent::kDims * num_protos);
  for (size_t z = 0; z < num_protos; ++z) {
    for (size_t d = 0; d < latent::kDims; ++d) {
      model.proto_soa_[d * num_protos + z] = model.source_prototypes_[z][d];
    }
  }
  return model;
}

double PretrainedModel::DomainCosine(const Dataset& dataset) const {
  return vec::CosineSimilarity(affinity_, dataset.domain_vector());
}

Status PretrainedModel::CheckDomain(const Dataset& dataset) const {
  if (dataset.spec().domain != spec_.domain) {
    return Status::InvalidArgument(
        "model " + spec_.name + " (" + ToString(spec_.domain) +
        ") cannot embed dataset " + dataset.name() + " (" +
        ToString(dataset.spec().domain) + ")");
  }
  return Status::OK();
}

PretrainedModel::HeadParams PretrainedModel::ComputeHeadParams(
    const Dataset& dataset) const {
  // Smooth alignment curve: even an off-domain (cos ~ 0) model extracts
  // somewhat-discriminative features if it is capable; a strongly
  // misaligned one does not.
  const double align =
      std::pow(latent::AffinityFromCosine(DomainCosine(dataset)), 2.0);
  Rng rng(latent::CombineSeeds(seed_, dataset.seed()));
  const double idiosyncrasy = std::exp(kBetaIdiosyncrasy * rng.Normal());
  HeadParams params;
  params.beta = (kBetaBase + kBetaScale * capability_ * align) * idiosyncrasy;
  params.separation = kSeparationScale * capability_ * align *
                      std::exp(kSeparationIdiosyncrasy * rng.Normal());
  // Model-specific routing of target labels onto source labels. The offset
  // is a deterministic function of (model, dataset) so predictions stay
  // consistent across calls.
  params.route_offset = rng.Next() % source_prototypes_.size();
  return params;
}

StatusOr<Matrix> PretrainedModel::ExtractFeatures(
    const Dataset& dataset) const {
  TPS_RETURN_NOT_OK(CheckDomain(dataset));
  const HeadParams params = ComputeHeadParams(dataset);
  const size_t num_labels = source_prototypes_.size();

  // SoA forward pass: the reduction dimension d is the OUTER loop, the Z
  // independent accumulators the inner one, streaming the dimension-major
  // prototype rows contiguously. Each logit still accumulates its d terms
  // in ascending order — exactly vec::Dot's order — so the result is
  // bit-identical to ExtractFeaturesReference.
  Matrix logits(dataset.size(), num_labels);
  double* out = logits.data().data();
  std::vector<double> acc(num_labels);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Example& ex = dataset.examples()[i];
    const double* features = ex.features.data();
    std::fill(acc.begin(), acc.end(), 0.0);
    for (size_t d = 0; d < latent::kDims; ++d) {
      const double f = features[d];
      const double* proto_row = proto_soa_.data() + d * num_labels;
      for (size_t z = 0; z < num_labels; ++z) acc[z] += f * proto_row[z];
    }
    const size_t routed =
        (static_cast<size_t>(ex.label) + params.route_offset) % num_labels;
    double* row = out + i * num_labels;
    for (size_t z = 0; z < num_labels; ++z) {
      row[z] = params.beta * acc[z] + (z == routed ? params.separation : 0.0);
    }
  }
  return logits;
}

StatusOr<Matrix> PretrainedModel::ExtractFeaturesReference(
    const Dataset& dataset) const {
  TPS_RETURN_NOT_OK(CheckDomain(dataset));
  const HeadParams params = ComputeHeadParams(dataset);
  const size_t num_labels = source_prototypes_.size();
  Matrix logits(dataset.size(), num_labels);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Example& ex = dataset.examples()[i];
    const size_t routed =
        (static_cast<size_t>(ex.label) + params.route_offset) % num_labels;
    for (size_t z = 0; z < num_labels; ++z) {
      logits.At(i, z) =
          params.beta * vec::Dot(ex.features, source_prototypes_[z]) +
          (z == routed ? params.separation : 0.0);
    }
  }
  return logits;
}

StatusOr<Matrix> PretrainedModel::PredictDistributions(
    const Dataset& dataset) const {
  TPS_ASSIGN_OR_RETURN(Matrix logits, ExtractFeatures(dataset));
  // In-place row softmax: same max-subtraction/exp/normalize order as
  // vec::Softmax, minus the two per-row allocations.
  double* data = logits.data().data();
  const size_t cols = logits.cols();
  for (size_t i = 0; i < logits.rows(); ++i) {
    vec::SoftmaxInPlace(data + i * cols, cols);
  }
  return logits;
}

StatusOr<Matrix> PretrainedModel::PredictDistributionsReference(
    const Dataset& dataset) const {
  TPS_ASSIGN_OR_RETURN(Matrix logits, ExtractFeaturesReference(dataset));
  Matrix predictions(logits.rows(), logits.cols());
  for (size_t i = 0; i < logits.rows(); ++i) {
    const std::vector<double> probs = vec::Softmax(logits.Row(i));
    for (size_t z = 0; z < logits.cols(); ++z) {
      predictions.At(i, z) = probs[z];
    }
  }
  return predictions;
}

}  // namespace tps
