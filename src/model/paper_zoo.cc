#include "model/paper_zoo.h"

#include "data/latent.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tps {

namespace {

ModelSpec M(std::string name, TaskDomain domain, std::string family,
            double scale, double capability,
            std::vector<std::string> pretrain_tags,
            std::vector<std::string> finetune_tags, double ft_strength,
            int num_source_labels, std::string description) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.domain = domain;
  spec.family = std::move(family);
  spec.scale_millions = scale;
  spec.capability = capability;
  spec.pretrain_tags = std::move(pretrain_tags);
  spec.finetune_tags = std::move(finetune_tags);
  spec.finetune_strength = ft_strength;
  spec.num_source_labels = num_source_labels;
  spec.description = std::move(description);
  return spec;
}

// Pre-training corpora shared across lineages.
const std::vector<std::string> kBertCorpus = {"english", "books",
                                              "wikipedia"};
const std::vector<std::string> kRobertaCorpus = {"english", "web", "news"};
const std::vector<std::string> kMultilingualCorpus = {"multilingual",
                                                      "wikipedia"};
const std::vector<std::string> kArabicCorpus = {"arabic", "web"};

// Fine-tune tag sets mirror the corresponding dataset specs in
// src/data/registry.cc so lineage -> dataset transfer signal lines up.
const std::vector<std::string> kQqpTags = {"english", "paraphrase",
                                           "questions", "web"};
const std::vector<std::string> kColaTags = {"english", "grammar",
                                            "acceptability"};
const std::vector<std::string> kQnliTags = {"english", "qa", "nli",
                                            "wikipedia"};
const std::vector<std::string> kMnliTags = {"english", "nli", "crowdsourced",
                                            "multi-genre"};
const std::vector<std::string> kSst2Tags = {"english", "sentiment", "movies"};

const std::vector<std::string> kImagenet1k = {"natural-images", "objects"};
const std::vector<std::string> kImagenet21k = {"natural-images", "objects",
                                               "encyclopedic"};

}  // namespace

std::vector<ModelSpec> NlpPaperZooSpecs() {
  const TaskDomain d = TaskDomain::kNLP;
  std::vector<ModelSpec> specs;
  specs.reserve(40);

  // --- The bert_ft_qqp lineage (paper cluster C1). ---
  for (const char* name :
       {"Jeevesh8/bert_ft_qqp-68", "Jeevesh8/bert_ft_qqp-9",
        "Jeevesh8/bert_ft_qqp-40", "connectivity/bert_ft_qqp-1",
        "connectivity/bert_ft_qqp-7"}) {
    specs.push_back(M(name, d, "bert", 110, 0.62, kBertCorpus, kQqpTags, 0.5,
                      2, "BERT-base fine-tuned on the QQP paraphrase task."));
  }
  // --- Random-init QQP lineage: same task, much weaker backbone (C7). ---
  for (const char* name :
       {"Jeevesh8/init_bert_ft_qqp-33", "Jeevesh8/init_bert_ft_qqp-24",
        "connectivity/bert_ft_qqp-17", "connectivity/bert_ft_qqp-96"}) {
    specs.push_back(M(name, d, "bert", 110, 0.42, kBertCorpus, kQqpTags, 0.5,
                      2,
                      "BERT architecture trained on QQP from a weak "
                      "initialization; markedly lower quality."));
  }
  // --- CoLA lineage. ---
  specs.push_back(M("Jeevesh8/512seq_len_6ep_bert_ft_cola-91", d, "bert", 110,
                    0.60, kBertCorpus, kColaTags, 0.5, 2,
                    "BERT-base fine-tuned on CoLA (512 sequence length)."));
  specs.push_back(M("Jeevesh8/bert_ft_cola-88", d, "bert", 110, 0.60,
                    kBertCorpus, kColaTags, 0.5, 2,
                    "BERT-base fine-tuned on CoLA."));
  specs.push_back(M("Jeevesh8/6ep_bert_ft_cola-47", d, "bert", 110, 0.58,
                    kBertCorpus, kColaTags, 0.5, 2,
                    "BERT-base fine-tuned on CoLA for six epochs."));
  // --- MNLI lineage (C3): the strong models for NLI-flavoured targets. ---
  specs.push_back(M("ishan/bert-base-uncased-mnli", d, "bert", 110, 0.64,
                    kBertCorpus, kMnliTags, 0.5, 3,
                    "BERT-base fine-tuned on MNLI."));
  specs.push_back(M("Jeevesh8/feather_berts_46", d, "bert", 110, 0.63,
                    kBertCorpus, kMnliTags, 0.5, 3,
                    "Feather BERT #46: BERT-base fine-tuned on MNLI."));
  // --- QNLI fine-tunes. ---
  specs.push_back(M("anirudh21/bert-base-uncased-finetuned-qnli", d, "bert",
                    110, 0.61, kBertCorpus, kQnliTags, 0.5, 2,
                    "BERT-base fine-tuned on QNLI."));
  specs.push_back(M("Alireza1044/albert-base-v2-qnli", d, "albert", 12, 0.66,
                    kBertCorpus, kQnliTags, 0.5, 2,
                    "ALBERT-base-v2 fine-tuned on QNLI."));
  // --- Base pre-trained checkpoints (no fine-tune). ---
  specs.push_back(M("bert-base-uncased", d, "bert", 110, 0.62, kBertCorpus,
                    {}, 0.0, 16, "The original BERT-base checkpoint."));
  specs.push_back(M("roberta-base", d, "roberta", 125, 0.68, kRobertaCorpus,
                    {}, 0.0, 16, "The original RoBERTa-base checkpoint."));
  specs.push_back(M("albert-base-v2", d, "albert", 12, 0.66, kBertCorpus, {},
                    0.0, 16, "The original ALBERT-base-v2 checkpoint."));
  specs.push_back(M("distilbert-base-uncased", d, "distilbert", 66, 0.56,
                    kBertCorpus, {}, 0.0, 16,
                    "Distilled BERT-base checkpoint."));
  // --- GLUE one-offs. ---
  specs.push_back(M("gchhablani/bert-base-cased-finetuned-rte", d, "bert",
                    110, 0.60, kBertCorpus, {"english", "nli", "news"}, 0.5,
                    2, "BERT-base fine-tuned on RTE."));
  specs.push_back(M("gchhablani/bert-base-cased-finetuned-wnli", d, "bert",
                    110, 0.57, kBertCorpus,
                    {"english", "nli", "coreference"}, 0.5, 2,
                    "BERT-base fine-tuned on WNLI."));
  specs.push_back(M("aviator-neural/bert-base-uncased-sst2", d, "bert", 110,
                    0.61, kBertCorpus, kSst2Tags, 0.5, 2,
                    "BERT-base fine-tuned on SST-2 sentiment."));
  specs.push_back(M("aychang/bert-base-cased-trec-coarse", d, "bert", 110,
                    0.60, kBertCorpus, {"english", "questions", "topic"},
                    0.5, 6, "BERT-base fine-tuned on TREC coarse classes."));
  specs.push_back(M("XSY/albert-base-v2-imdb-calssification", d, "albert", 12,
                    0.63, kBertCorpus,
                    {"english", "sentiment", "movies", "reviews"}, 0.5, 2,
                    "ALBERT-base-v2 fine-tuned on IMDB sentiment."));
  specs.push_back(M("18811449050/bert_finetuning_test", d, "bert", 110, 0.58,
                    kBertCorpus, kSst2Tags, 0.4, 2,
                    "A BERT fine-tuning smoke-test checkpoint."));
  // --- Twitter / social-media fine-tunes. ---
  specs.push_back(M("DoyyingFace/bert-asian-hate-tweets-asian-unclean-"
                    "freeze-4",
                    d, "bert", 110, 0.58, kBertCorpus,
                    {"english", "twitter", "hate-speech"}, 0.15, 2,
                    "BERT with 4 frozen layers, fine-tuned on hate-speech "
                    "tweets; behaves close to the base model."));
  specs.push_back(M("manueltonneau/bert-twitter-en-is-hired", d, "bert", 110,
                    0.57, kBertCorpus,
                    {"english", "twitter", "social-media"}, 0.5, 2,
                    "BERT fine-tuned on employment-status tweets."));
  // --- Speech / misc English fine-tunes. ---
  specs.push_back(M("Splend1dchan/bert-base-uncased-slue-goldtrascription-"
                    "e3-lr1e-4",
                    d, "bert", 110, 0.55, kBertCorpus,
                    {"english", "speech", "transcripts"}, 0.5, 2,
                    "BERT fine-tuned on SLUE gold transcriptions."));
  specs.push_back(M("bondi/bert-semaphore-prediction-w4", d, "bert", 110,
                    0.50, kBertCorpus, {"english", "web"}, 0.5, 2,
                    "BERT fine-tuned on a niche semaphore-prediction task."));
  specs.push_back(M("dhimskyy/wiki-bert", d, "bert", 110, 0.52, kBertCorpus,
                    {"english", "wikipedia", "topic"}, 0.4, 2,
                    "BERT variant trained on Wikipedia sections."));
  // --- Cross-lingual / out-of-domain models (the Fig. 1 long tail). ---
  specs.push_back(M("aditeyabaral/finetuned-sail2017-xlm-roberta-base", d,
                    "xlm-roberta", 270, 0.55, {"multilingual", "web"},
                    {"sentiment", "social-media", "code-mixed"}, 0.5, 3,
                    "XLM-RoBERTa fine-tuned on SAIL-2017 code-mixed "
                    "sentiment."));
  specs.push_back(M("aliosm/sha3bor-metre-detector-arabertv2-base", d,
                    "arabert", 135, 0.50, kArabicCorpus,
                    {"arabic", "poetry"}, 0.5, 14,
                    "AraBERT fine-tuned to detect Arabic poetry metres."));
  specs.push_back(M("CAMeL-Lab/bert-base-arabic-camelbert-da-sentiment", d,
                    "camelbert", 110, 0.52, kArabicCorpus,
                    {"arabic", "sentiment"}, 0.5, 3,
                    "CAMeLBERT dialectal-Arabic sentiment model."));
  specs.push_back(M("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi", d,
                    "camelbert", 110, 0.50, kArabicCorpus,
                    {"arabic", "dialect"}, 0.5, 21,
                    "CAMeLBERT dialect-identification model (NADI)."));
  specs.push_back(M("classla/bcms-bertic-parlasent-bcs-ter", d, "bertic", 110,
                    0.50, {"balkan", "web"},
                    {"balkan", "sentiment", "parliament"}, 0.5, 3,
                    "BERTić fine-tuned on parliamentary sentiment (BCS)."));
  specs.push_back(M("emrecan/bert-base-multilingual-cased-snli_tr", d,
                    "mbert", 180, 0.55, kMultilingualCorpus,
                    {"turkish", "nli"}, 0.5, 3,
                    "Multilingual BERT fine-tuned on Turkish SNLI."));
  specs.push_back(M("jb2k/bert-base-multilingual-cased-language-detection",
                    d, "mbert", 180, 0.52, kMultilingualCorpus,
                    {"multilingual", "language-id"}, 0.5, 45,
                    "Multilingual BERT language detector."));
  specs.push_back(M("socialmediaie/TRAC2020_IBEN_B_bert-base-multilingual-"
                    "uncased",
                    d, "mbert", 180, 0.50, kMultilingualCorpus,
                    {"bengali", "social-media", "aggression"}, 0.5, 3,
                    "Multilingual BERT fine-tuned on TRAC-2020 aggression "
                    "identification (Bengali)."));
  specs.push_back(M("Guscode/DKbert-hatespeech-detection", d, "dkbert", 110,
                    0.50, {"danish", "web"},
                    {"danish", "hate-speech", "social-media"}, 0.5, 2,
                    "Danish BERT hate-speech detector."));
  return specs;
}

std::vector<ModelSpec> CvPaperZooSpecs() {
  const TaskDomain d = TaskDomain::kCV;
  std::vector<ModelSpec> specs;
  specs.reserve(30);

  // --- DeiT family (ImageNet-1k). ---
  specs.push_back(M("facebook/deit-base-patch16-224", d, "deit", 86, 0.78,
                    kImagenet1k, {}, 0.0, 64,
                    "DeiT-base distilled on ImageNet-1k."));
  specs.push_back(M("facebook/deit-base-patch16-384", d, "deit", 86, 0.80,
                    kImagenet1k, {}, 0.0, 64,
                    "DeiT-base at 384px resolution."));
  specs.push_back(M("facebook/deit-small-patch16-224", d, "deit", 22, 0.72,
                    kImagenet1k, {}, 0.0, 64, "DeiT-small on ImageNet-1k."));
  // --- DINO self-supervised ViTs. ---
  specs.push_back(M("facebook/dino-vitb16", d, "vit", 86, 0.79, kImagenet21k,
                    {}, 0.0, 64, "DINO self-supervised ViT-base/16."));
  specs.push_back(M("facebook/dino-vitb8", d, "vit", 86, 0.80, kImagenet21k,
                    {}, 0.0, 64, "DINO self-supervised ViT-base/8."));
  specs.push_back(M("facebook/dino-vits16", d, "vit", 22, 0.73, kImagenet1k,
                    {}, 0.0, 64, "DINO self-supervised ViT-small/16."));
  // --- MSN ViTs (ImageNet-1k). ---
  specs.push_back(M("facebook/vit-msn-base", d, "vit", 86, 0.77, kImagenet1k,
                    {}, 0.0, 64, "Masked-siamese-network ViT-base."));
  specs.push_back(M("facebook/vit-msn-small", d, "vit", 22, 0.72,
                    kImagenet1k, {}, 0.0, 64,
                    "Masked-siamese-network ViT-small."));
  // --- Google ViTs (ImageNet-21k pre-training). ---
  specs.push_back(M("google/vit-base-patch16-224", d, "vit", 86, 0.80,
                    kImagenet21k, {}, 0.0, 64,
                    "ViT-base/16 pre-trained on ImageNet-21k, fine-tuned on "
                    "ImageNet-1k."));
  specs.push_back(M("google/vit-base-patch16-384", d, "vit", 86, 0.82,
                    kImagenet21k, {}, 0.0, 64,
                    "ViT-base/16 at 384px resolution."));
  specs.push_back(M("google/vit-base-patch32-224-in21k", d, "vit", 88, 0.74,
                    kImagenet21k, {}, 0.0, 64,
                    "ViT-base/32 pre-trained on ImageNet-21k only."));
  // --- BEiT family (ImageNet-21k pre-training). ---
  specs.push_back(M("microsoft/beit-base-patch16-224", d, "beit", 86, 0.79,
                    kImagenet21k, {}, 0.0, 64, "BEiT-base/16."));
  specs.push_back(M("microsoft/beit-base-patch16-224-pt22k", d, "beit", 86,
                    0.70, kImagenet21k, {}, 0.0, 64,
                    "BEiT-base pre-trained on ImageNet-22k without "
                    "supervised fine-tuning."));
  specs.push_back(M("microsoft/beit-base-patch16-224-pt22k-ft22k", d, "beit",
                    86, 0.78, kImagenet21k, {}, 0.0, 64,
                    "BEiT-base pre-trained and fine-tuned on ImageNet-22k."));
  specs.push_back(M("microsoft/beit-base-patch16-384", d, "beit", 86, 0.81,
                    kImagenet21k, {}, 0.0, 64,
                    "BEiT-base at 384px resolution."));
  specs.push_back(M("microsoft/beit-large-patch16-224-pt22k", d, "beit", 304,
                    0.73, kImagenet21k, {}, 0.0, 64,
                    "BEiT-large pre-trained on ImageNet-22k without "
                    "supervised fine-tuning."));
  // --- BEiT fine-tuned on facial expression recognition (lixiqi). ---
  for (const char* name :
       {"lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-6e-05",
        "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-7e-05",
        "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER-5e-05-3"}) {
    specs.push_back(M(name, d, "beit", 86, 0.74, kImagenet21k,
                      {"faces", "emotion"}, 0.3, 7,
                      "BEiT-base fine-tuned on FER-2013 facial expression "
                      "recognition."));
  }
  // --- Poolformer family. ---
  specs.push_back(M("sail/poolformer_m36", d, "poolformer", 56, 0.70,
                    kImagenet1k, {}, 0.0, 64, "PoolFormer-M36."));
  specs.push_back(M("sail/poolformer_m48", d, "poolformer", 73, 0.71,
                    kImagenet1k, {}, 0.0, 64, "PoolFormer-M48."));
  specs.push_back(M("sail/poolformer_s36", d, "poolformer", 31, 0.67,
                    kImagenet1k, {}, 0.0, 64, "PoolFormer-S36."));
  // --- DiNAT family. ---
  specs.push_back(M("shi-labs/dinat-base-in1k-224", d, "dinat", 90, 0.76,
                    kImagenet1k, {}, 0.0, 64, "DiNAT-base on ImageNet-1k."));
  specs.push_back(M("shi-labs/dinat-large-in22k-in1k-224", d, "dinat", 200,
                    0.85, kImagenet21k, {}, 0.0, 64,
                    "DiNAT-large pre-trained on ImageNet-22k, fine-tuned on "
                    "ImageNet-1k."));
  specs.push_back(M("shi-labs/dinat-large-in22k-in1k-384", d, "dinat", 200,
                    0.86, kImagenet21k, {}, 0.0, 64,
                    "DiNAT-large at 384px resolution."));
  // --- Visual Attention Network. ---
  specs.push_back(M("Visual-Attention-Network/van-base", d, "van", 27, 0.73,
                    kImagenet1k, {}, 0.0, 64, "VAN-base."));
  specs.push_back(M("Visual-Attention-Network/van-large", d, "van", 45, 0.77,
                    kImagenet1k, {}, 0.0, 64, "VAN-large."));
  // --- Off-domain fine-tunes (CV long tail). ---
  specs.push_back(M("oschamp/vit-artworkclassifier", d, "vit", 86, 0.65,
                    kImagenet1k, {"art", "paintings"}, 0.5, 10,
                    "ViT fine-tuned to classify artwork styles."));
  specs.push_back(M("nateraw/vit-age-classifier", d, "vit", 86, 0.68,
                    kImagenet21k, {"faces", "age"}, 0.3, 8,
                    "ViT fine-tuned to predict age brackets from faces."));
  specs.push_back(M("mrgiraffe/vit-large-dataset-model-v3", d, "vit", 300,
                    0.60, kImagenet1k, {"web", "mixed"}, 0.4, 12,
                    "A community ViT-large of uncertain provenance."));
  return specs;
}

ZooTagVocabulary SyntheticTagVocabulary(TaskDomain domain) {
  const bool nlp = domain == TaskDomain::kNLP;
  ZooTagVocabulary vocab;
  vocab.families =
      nlp ? std::vector<std::string>{"bert", "roberta", "albert",
                                     "distilbert", "mbert", "electra"}
          : std::vector<std::string>{"vit", "beit", "deit", "convnext",
                                     "swin", "poolformer"};
  vocab.corpora =
      nlp ? std::vector<std::vector<std::string>>{kBertCorpus, kRobertaCorpus,
                                                  kMultilingualCorpus,
                                                  kArabicCorpus}
          : std::vector<std::vector<std::string>>{kImagenet1k, kImagenet21k};
  vocab.finetunes =
      nlp ? std::vector<std::vector<std::string>>{
                {}, kQqpTags, kColaTags, kQnliTags, kMnliTags, kSst2Tags,
                {"english", "sentiment", "reviews"},
                {"english", "topic", "encyclopedia"},
                {"multilingual", "nli"}}
          : std::vector<std::vector<std::string>>{
                {}, {"faces", "emotion"}, {"art", "paintings"},
                {"natural-images", "food"}, {"digits", "grayscale"},
                {"medical", "biomedical"}};
  return vocab;
}

std::vector<ModelSpec> SyntheticZooSpecs(TaskDomain domain, size_t count,
                                         uint64_t seed) {
  Rng rng(latent::CombineSeeds(seed, latent::HashString("synthetic-zoo")));
  const bool nlp = domain == TaskDomain::kNLP;
  const ZooTagVocabulary vocab = SyntheticTagVocabulary(domain);
  const std::vector<std::string>& families = vocab.families;
  const std::vector<std::vector<std::string>>& corpora = vocab.corpora;
  const std::vector<std::vector<std::string>>& finetunes = vocab.finetunes;

  std::vector<ModelSpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const std::string family = families[rng.UniformInt(families.size())];
    const auto& corpus = corpora[rng.UniformInt(corpora.size())];
    const auto& ft = finetunes[rng.UniformInt(finetunes.size())];
    // Capability distribution is skewed low: most repository models are
    // mediocre, a few are strong (the Fig. 1 shape).
    const double u = rng.Uniform();
    const double capability = 0.35 + 0.5 * u * u;
    ModelSpec spec = M(
        strings::Format("synthetic/%s-%s-%zu", nlp ? "nlp" : "cv",
                        family.c_str(), i),
        domain, family, rng.Uniform(10.0, 350.0), capability, corpus, ft,
        ft.empty() ? 0.0 : 0.5,
        ft.empty() ? 16 : static_cast<int>(2 + rng.UniformInt(8)),
        "Synthetic zoo member for scaling experiments.");
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace tps
