#include "model/model_card.h"

#include <sstream>

#include "util/string_util.h"

namespace tps {

std::string GenerateModelCard(const ModelSpec& spec) {
  std::ostringstream card;
  card << "# " << spec.name << "\n\n";
  card << "Architecture: " << spec.family << " ("
       << strings::FormatDouble(spec.scale_millions, 0)
       << "M parameters, " << ToString(spec.domain) << ").\n";
  card << "Pre-training corpus:";
  for (const std::string& tag : spec.pretrain_tags) card << " " << tag;
  card << ".\n";
  if (!spec.finetune_tags.empty()) {
    card << "Fine-tuned on a downstream task covering:";
    for (const std::string& tag : spec.finetune_tags) card << " " << tag;
    card << ".\n";
  } else {
    card << "This checkpoint is the pre-trained base model without "
            "task-specific fine-tuning.\n";
  }
  if (!spec.description.empty()) {
    card << "\n" << spec.description << "\n";
  }
  // Name tokens carry lineage signal, as real model names do.
  card << "\nTags:";
  for (const std::string& token :
       strings::Split(strings::ToLower(spec.name), '/')) {
    for (const std::string& piece : strings::Split(token, '-')) {
      if (!piece.empty()) card << " " << piece;
    }
  }
  card << "\n";
  return card.str();
}

}  // namespace tps
