#ifndef TPS_MODEL_PAPER_ZOO_H_
#define TPS_MODEL_PAPER_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_spec.h"

namespace tps {

/// The tag vocabulary synthetic/generated zoos draw from: architecture
/// families, pre-training corpora and fine-tune tag sets for one domain.
/// The entries mirror the paper zoos and the dataset registry, so
/// lineage -> dataset transfer signal lines up for generated models too.
struct ZooTagVocabulary {
  std::vector<std::string> families;
  std::vector<std::vector<std::string>> corpora;
  std::vector<std::vector<std::string>> finetunes;
};

/// The paper's model repository (Appendix B, Table VIII): 40 NLP models and
/// 30 CV models from HuggingFace, reconstructed as simulator specs.
///
/// Capabilities, pre-training corpora and fine-tuning lineages are assigned
/// from each model's public identity (family, size, fine-tune dataset named
/// in the model id). Lineage groups — e.g. the `bert_ft_qqp-*` family, the
/// `init_bert_ft_qqp-*` family (trained from random init, hence much
/// weaker), BEiT/ViT ImageNet-21k models — share tags and capability so the
/// clustering structure of Table II emerges from the geometry rather than
/// being hard-coded.
std::vector<ModelSpec> NlpPaperZooSpecs();
std::vector<ModelSpec> CvPaperZooSpecs();

/// The domain's tag vocabulary (shared by SyntheticZooSpecs and the
/// parameterized generator in model/zoo_gen.h).
ZooTagVocabulary SyntheticTagVocabulary(TaskDomain domain);

/// Generates a synthetic zoo of `count` models for scaling experiments:
/// random family/capability/fine-tune-dataset combinations over the given
/// domain's tag vocabulary, seeded deterministically.
std::vector<ModelSpec> SyntheticZooSpecs(TaskDomain domain, size_t count,
                                         uint64_t seed);

}  // namespace tps

#endif  // TPS_MODEL_PAPER_ZOO_H_
