#ifndef TPS_MODEL_MODEL_CARD_H_
#define TPS_MODEL_MODEL_CARD_H_

#include <string>

#include "model/model_spec.h"

namespace tps {

/// Generates the free-text "model card" for a model, in the style of
/// HuggingFace model cards (Appendix E of the paper): name, architecture,
/// parameter count, pre-training corpus, fine-tuning task, description.
///
/// The text-based model-similarity baseline of Table I embeds this text
/// (the paper uses SBERT; we use a hashed bag-of-words embedder, see
/// src/embedding/). Cards deliberately carry *name-level* signal — two
/// models fine-tuned on the same dataset mention it — but none of the
/// training-performance signal the performance matrix carries, which is
/// why the text baseline clusters worse.
std::string GenerateModelCard(const ModelSpec& spec);

}  // namespace tps

#endif  // TPS_MODEL_MODEL_CARD_H_
