// Microbenchmarks (google-benchmark) for the library's computational
// kernels: LEEP / NCE / LogME / kNN proxy scoring, pairwise Eq. 1
// distances, k-means, hierarchical clustering, and the fine-tune
// simulator. These are the per-call costs the online phase pays.
//
// Each proxy scorer runs twice — once with the retained scalar reference
// kernels, once with the batched SoA kernels that are the production
// default — so a run reports the vectorization speedup directly. A custom
// main mirrors every measured time into the BENCH_micro_kernels.json
// sidecar (see bench/telemetry.h) alongside the per-kernel speedups.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/telemetry.h"
#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/kmeans.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "transfer/kernels.h"
#include "transfer/knn_proxy.h"
#include "transfer/leep.h"
#include "transfer/logme.h"
#include "transfer/nce.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tps {
namespace {

const Dataset& TargetDataset() {
  static const Dataset* dataset = [] {
    auto registry = DatasetRegistry::CreatePaperInventory();
    TPS_CHECK_OK(registry.status());
    static DatasetRegistry owned = std::move(registry).value();
    auto found = owned.Find("mnli");
    TPS_CHECK_OK(found.status());
    return *found;
  }();
  return *dataset;
}

const PretrainedModel& Model() {
  static const PretrainedModel* model = [] {
    auto zoo = ModelZoo::Create(NlpPaperZooSpecs());
    TPS_CHECK_OK(zoo.status());
    static ModelZoo owned = std::move(zoo).value();
    auto found = owned.Find("bert-base-uncased");
    TPS_CHECK_OK(found.status());
    return *found;
  }();
  return *model;
}

void BM_LeepScore(benchmark::State& state, kernels::KernelMode mode) {
  LeepScorer scorer(mode);
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK_CAPTURE(BM_LeepScore, Reference, kernels::KernelMode::kReference);
BENCHMARK_CAPTURE(BM_LeepScore, Batched, kernels::KernelMode::kBatched);

void BM_NceScore(benchmark::State& state, kernels::KernelMode mode) {
  NceScorer scorer(mode);
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK_CAPTURE(BM_NceScore, Reference, kernels::KernelMode::kReference);
BENCHMARK_CAPTURE(BM_NceScore, Batched, kernels::KernelMode::kBatched);

void BM_LogMeScore(benchmark::State& state, kernels::KernelMode mode) {
  LogMeScorer scorer(mode);
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK_CAPTURE(BM_LogMeScore, Reference, kernels::KernelMode::kReference);
BENCHMARK_CAPTURE(BM_LogMeScore, Batched, kernels::KernelMode::kBatched);

void BM_KnnScore(benchmark::State& state, kernels::KernelMode mode) {
  KnnScorer scorer(/*k=*/5, mode);
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK_CAPTURE(BM_KnnScore, Reference, kernels::KernelMode::kReference);
BENCHMARK_CAPTURE(BM_KnnScore, Batched, kernels::KernelMode::kBatched);

void BM_FineTuneRun(benchmark::State& state) {
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  for (auto _ : state) {
    auto run = simulator.Run(Model(), TargetDataset(), hp);
    TPS_CHECK_OK(run.status());
    benchmark::DoNotOptimize(run->final_test());
  }
}
BENCHMARK(BM_FineTuneRun);

Matrix RandomVectors(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) m.At(i, j) = rng.Uniform();
  }
  return m;
}

void BM_PairwiseTopKDistances(benchmark::State& state) {
  const Matrix vectors =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 7);
  for (auto _ : state) {
    auto distances =
        PairwiseDistances(vectors, DistanceMetric::kTopKAbsDiff, 5);
    TPS_CHECK_OK(distances.status());
    benchmark::DoNotOptimize(distances->At(0, 0));
  }
}
BENCHMARK(BM_PairwiseTopKDistances)->Arg(40)->Arg(200)->Arg(1000);

void BM_KMeans(benchmark::State& state) {
  const Matrix points =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 11);
  KMeansOptions options;
  options.num_clusters = 8;
  for (auto _ : state) {
    auto result = KMeans(points, options);
    TPS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->inertia);
  }
}
BENCHMARK(BM_KMeans)->Arg(40)->Arg(200)->Arg(1000);

void BM_HierarchicalCluster(benchmark::State& state) {
  const Matrix vectors =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 13);
  auto distances =
      PairwiseDistances(vectors, DistanceMetric::kEuclidean, 5);
  TPS_CHECK_OK(distances.status());
  HierarchicalOptions options;
  options.num_clusters = 8;
  for (auto _ : state) {
    auto result = HierarchicalCluster(*distances, options);
    TPS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->clustering.num_clusters);
  }
}
BENCHMARK(BM_HierarchicalCluster)->Arg(40)->Arg(200);

// Console output plus a record of every measured run, so main() can mirror
// the numbers into the telemetry sidecar without re-running anything.
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      times_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::pair<std::string, double>>& times() const {
    return times_;
  }

 private:
  std::vector<std::pair<std::string, double>> times_;
};

// "BM_KMeans/40" -> "BM_KMeans_40": keeps the sidecar's
// "<domain>/<name>/<metric>" key convention unambiguous.
std::string SanitizedName(std::string name) {
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  return name;
}

void WriteTelemetry(const TelemetryReporter& reporter) {
  bench::BenchTelemetry telemetry("micro_kernels");
  const auto find = [&](const std::string& name) -> const double* {
    for (const auto& [run_name, ns] : reporter.times()) {
      if (run_name == name) return &ns;
    }
    return nullptr;
  };
  for (const auto& [name, ns] : reporter.times()) {
    telemetry.RecordValue("kernel/" + SanitizedName(name) + "/ns", ns);
  }
  for (const char* base :
       {"BM_LeepScore", "BM_NceScore", "BM_LogMeScore", "BM_KnnScore"}) {
    const double* reference = find(std::string(base) + "/Reference");
    const double* batched = find(std::string(base) + "/Batched");
    if (reference == nullptr || batched == nullptr || *batched <= 0.0) {
      continue;  // Filtered out via --benchmark_filter; skip the ratio.
    }
    telemetry.RecordValue(
        std::string("kernel/") + base + "/reference_over_batched",
        *reference / *batched);
  }
  telemetry.WriteFileOrWarn();
}

}  // namespace
}  // namespace tps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tps::TelemetryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  tps::WriteTelemetry(reporter);
  return 0;
}
