// Microbenchmarks (google-benchmark) for the library's computational
// kernels: LEEP / NCE / LogME / kNN proxy scoring, pairwise Eq. 1
// distances, k-means, hierarchical clustering, and the fine-tune
// simulator. These are the per-call costs the online phase pays.

#include <benchmark/benchmark.h>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/kmeans.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "transfer/knn_proxy.h"
#include "transfer/leep.h"
#include "transfer/logme.h"
#include "transfer/nce.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tps {
namespace {

const Dataset& TargetDataset() {
  static const Dataset* dataset = [] {
    auto registry = DatasetRegistry::CreatePaperInventory();
    TPS_CHECK_OK(registry.status());
    static DatasetRegistry owned = std::move(registry).value();
    auto found = owned.Find("mnli");
    TPS_CHECK_OK(found.status());
    return *found;
  }();
  return *dataset;
}

const PretrainedModel& Model() {
  static const PretrainedModel* model = [] {
    auto zoo = ModelZoo::Create(NlpPaperZooSpecs());
    TPS_CHECK_OK(zoo.status());
    static ModelZoo owned = std::move(zoo).value();
    auto found = owned.Find("bert-base-uncased");
    TPS_CHECK_OK(found.status());
    return *found;
  }();
  return *model;
}

void BM_LeepScore(benchmark::State& state) {
  LeepScorer scorer;
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK(BM_LeepScore);

void BM_NceScore(benchmark::State& state) {
  NceScorer scorer;
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK(BM_NceScore);

void BM_LogMeScore(benchmark::State& state) {
  LogMeScorer scorer;
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK(BM_LogMeScore);

void BM_KnnScore(benchmark::State& state) {
  KnnScorer scorer;
  for (auto _ : state) {
    auto score = scorer.Score(Model(), TargetDataset());
    TPS_CHECK_OK(score.status());
    benchmark::DoNotOptimize(*score);
  }
}
BENCHMARK(BM_KnnScore);

void BM_FineTuneRun(benchmark::State& state) {
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  for (auto _ : state) {
    auto run = simulator.Run(Model(), TargetDataset(), hp);
    TPS_CHECK_OK(run.status());
    benchmark::DoNotOptimize(run->final_test());
  }
}
BENCHMARK(BM_FineTuneRun);

Matrix RandomVectors(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) m.At(i, j) = rng.Uniform();
  }
  return m;
}

void BM_PairwiseTopKDistances(benchmark::State& state) {
  const Matrix vectors =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 7);
  for (auto _ : state) {
    auto distances =
        PairwiseDistances(vectors, DistanceMetric::kTopKAbsDiff, 5);
    TPS_CHECK_OK(distances.status());
    benchmark::DoNotOptimize(distances->At(0, 0));
  }
}
BENCHMARK(BM_PairwiseTopKDistances)->Arg(40)->Arg(200)->Arg(1000);

void BM_KMeans(benchmark::State& state) {
  const Matrix points =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 11);
  KMeansOptions options;
  options.num_clusters = 8;
  for (auto _ : state) {
    auto result = KMeans(points, options);
    TPS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->inertia);
  }
}
BENCHMARK(BM_KMeans)->Arg(40)->Arg(200)->Arg(1000);

void BM_HierarchicalCluster(benchmark::State& state) {
  const Matrix vectors =
      RandomVectors(static_cast<size_t>(state.range(0)), 24, 13);
  auto distances =
      PairwiseDistances(vectors, DistanceMetric::kEuclidean, 5);
  TPS_CHECK_OK(distances.status());
  HierarchicalOptions options;
  options.num_clusters = 8;
  for (auto _ : state) {
    auto result = HierarchicalCluster(*distances, options);
    TPS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->clustering.num_clusters);
  }
}
BENCHMARK(BM_HierarchicalCluster)->Arg(40)->Arg(200);

}  // namespace
}  // namespace tps

BENCHMARK_MAIN();
