#include "bench/harness.h"

#include <cstdlib>
#include <iostream>

#include "model/paper_zoo.h"
#include "util/thread_pool.h"

namespace tps {
namespace bench {

StatusOr<World> BuildWorld(TaskDomain domain) {
  return BuildWorld(domain, ThreadPool::DefaultThreads());
}

StatusOr<World> BuildWorld(TaskDomain domain, int num_threads) {
  World world;
  world.domain = domain;

  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  world.registry = std::make_unique<DatasetRegistry>(std::move(registry));

  TPS_ASSIGN_OR_RETURN(ModelZoo zoo,
                       ModelZoo::Create(domain == TaskDomain::kNLP
                                            ? NlpPaperZooSpecs()
                                            : CvPaperZooSpecs()));
  world.zoo = std::make_unique<ModelZoo>(std::move(zoo));

  world.simulator = std::make_unique<FineTuneSimulator>();

  TPS_ASSIGN_OR_RETURN(
      PerformanceMatrix matrix,
      PerformanceMatrix::BuildParallel(
          *world.zoo, world.registry->Benchmarks(domain), *world.simulator,
          Hyperparams::DefaultsFor(domain), num_threads));
  world.matrix = std::make_unique<PerformanceMatrix>(std::move(matrix));

  ModelClusteringOptions options;  // Paper defaults.
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering,
                       ClusterModels(*world.matrix, *world.zoo, options));
  world.clustering = std::make_unique<ModelClustering>(std::move(clustering));
  return world;
}

void ExitIfError(const Status& status, const std::string& context) {
  if (!status.ok()) {
    std::cerr << "FATAL (" << context << "): " << status.ToString()
              << std::endl;
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace tps
