// Extension bench: the full strategy landscape around the paper's method.
// For each target we compare, at their natural costs:
//   - proxy-only: fine-tune nothing but the top recall-scored model;
//   - task-similarity (Task2Vec-style [57]): pick the best model on the
//     nearest benchmark task, fine-tune only it;
//   - Hyperband over the recall ranking;
//   - successive halving over the full zoo (the paper's SH baseline);
//   - the paper's two-phase pipeline;
//   - brute force (accuracy ceiling).
// Plus the cost-aware planner's choice under three budget levels.

#include <iostream>
#include <numeric>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "core/hyperband.h"
#include "core/planner.h"
#include "core/task_similarity.h"
#include "core/two_phase.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();
  std::vector<size_t> all(world.zoo->size());
  std::iota(all.begin(), all.end(), 0);

  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  const PretrainedModel* probe = ExitIfError(
      world.zoo->Find(domain == TaskDomain::kNLP
                          ? "bert-base-uncased"
                          : "google/vit-base-patch16-224"),
      "probe");
  TaskSimilaritySelector task_sim(probe, world.matrix.get(),
                                  world.Benchmarks());
  HyperbandSelector hyperband(world.zoo.get(), world.simulator.get());
  SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get());
  BruteForceSelector bf(world.zoo.get(), world.simulator.get());
  TwoPhaseSelector two_phase(world.zoo.get(), world.matrix.get(),
                             world.clustering.get(), world.simulator.get());

  std::cout << "=== Extension: strategy landscape (" << title << ") ===\n";
  TablePrinter table({"target", "strategy", "epochs", "accuracy"});
  for (const Dataset* target : world.Targets()) {
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator, hp),
        "truth");

    // Proxy-only: recall once, fully train only the top-ranked model.
    EpochBudget proxy_budget;
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), &proxy_budget), "recall");
    const size_t proxy_pick = rr.ranked.front().model_index;
    proxy_budget.ChargeTraining(hp.epochs);
    table.AddRow({target->name(), "proxy-only",
                  strings::FormatDouble(proxy_budget.total_epochs(), 1),
                  strings::FormatDouble(truth[proxy_pick], 3)});

    // Task-similarity: one probe pass (charge 0.5), train its pick.
    const std::vector<size_t> task_ranked =
        ExitIfError(task_sim.RankModels(*target), "task-sim");
    table.AddRow({target->name(), "task-similarity",
                  strings::FormatDouble(0.5 + hp.epochs, 1),
                  strings::FormatDouble(truth[task_ranked.front()], 3)});

    // Hyperband over the recall ranking.
    std::vector<size_t> ranked;
    for (const RecallEntry& entry : rr.ranked) {
      ranked.push_back(entry.model_index);
    }
    const HyperbandOutcome hb = ExitIfError(
        hyperband.Select(ranked, *target, hp, nullptr), "hyperband");
    table.AddRow(
        {target->name(), "hyperband",
         strings::FormatDouble(hb.selection.training_epochs, 1),
         strings::FormatDouble(hb.selection.selected_accuracy, 3)});

    // SH over the full zoo.
    const SelectionOutcome sh_outcome =
        ExitIfError(sh.Select(all, *target, hp, nullptr), "sh");
    table.AddRow({target->name(), "successive halving",
                  strings::FormatDouble(sh_outcome.training_epochs, 1),
                  strings::FormatDouble(sh_outcome.selected_accuracy, 3)});

    // The paper's two-phase pipeline.
    const TwoPhaseReport report = ExitIfError(
        two_phase.Select(*target, TwoPhaseOptions(), hp), "2ph");
    table.AddRow(
        {target->name(), "two-phase (paper)",
         strings::FormatDouble(report.budget.total_epochs(), 1),
         strings::FormatDouble(report.selection.selected_accuracy, 3)});

    // Brute force ceiling.
    const SelectionOutcome bf_outcome =
        ExitIfError(bf.Select(all, *target, hp, nullptr), "bf");
    table.AddRow({target->name(), "brute force",
                  strings::FormatDouble(bf_outcome.training_epochs, 1),
                  strings::FormatDouble(bf_outcome.selected_accuracy, 3)});
    table.AddSeparator();
  }
  table.Print(std::cout);

  // Planner decisions at three budget levels.
  CostAwarePlanner planner(
      world.zoo->size(),
      world.clustering->NonSingletonClusters().size(), 10, hp.epochs);
  std::cout << "\nCost-aware planner (repository shape: "
            << world.zoo->size() << " models):\n";
  for (double budget : {15.0, 60.0, 500.0}) {
    const PlanDecision decision = planner.Plan(budget);
    std::cout << "  budget " << strings::FormatDouble(budget, 0)
              << " epochs -> " << ToString(decision.strategy) << " ("
              << decision.rationale << ")\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
