// Ablation for the paper's future-work item 2: how small can the benchmark
// suite get before the offline artifacts degrade? For subset sizes 2..24
// (NLP) we greedily select compact benchmark suites, then measure (a) the
// distance-structure correlation with the full suite and (b) the adjusted
// Rand index between the model clustering built on the subset vs the full
// one. The offline fine-tuning cost scales linearly with the suite size,
// so a subset preserving the clustering at half the size halves the
// offline bill.

#include <iostream>

#include "bench/harness.h"
#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/rand_index.h"
#include "core/benchmark_selection.h"
#include "core/model_clusterer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title,
            const std::vector<size_t>& sizes) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const int full_clusters = world.clustering->clusters.num_clusters;

  std::cout << "=== Ablation: compact benchmark suites (" << title
            << ", full suite " << world.matrix->num_datasets()
            << " datasets) ===\n";
  TablePrinter table({"subset size", "offline cost (trains)",
                      "distance correlation", "clustering ARI vs full"});
  for (size_t size : sizes) {
    BenchmarkSelectionResult selection = ExitIfError(
        SelectCompactBenchmarks(*world.matrix, size), "select");

    // Re-cluster on the subset and compare partitions.
    std::vector<std::vector<double>> vectors(world.zoo->size());
    for (size_t m = 0; m < world.zoo->size(); ++m) {
      for (size_t d : selection.selected) {
        vectors[m].push_back(world.matrix->accuracy().At(d, m));
      }
    }
    Matrix distances = ExitIfError(
        PairwiseDistances(vectors, DistanceMetric::kTopKAbsDiff, 5),
        "distances");
    HierarchicalOptions hopts;
    hopts.num_clusters = full_clusters;
    HierarchicalResult subset_clusters =
        ExitIfError(HierarchicalCluster(distances, hopts), "cluster");
    const double ari = ExitIfError(
        AdjustedRandIndex(world.clustering->clusters,
                          subset_clusters.clustering),
        "ari");

    table.AddRow({std::to_string(size),
                  std::to_string(size * world.zoo->size()),
                  strings::FormatDouble(selection.distance_correlation, 3),
                  strings::FormatDouble(ari, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP", {2, 4, 8, 12, 16, 24});
  tps::bench::Report(tps::TaskDomain::kCV, "CV", {2, 4, 6, 8, 10});
  return 0;
}
