// Ablation: successive-halving reduction factor eta vs the trend-informed
// fine-selection filter. Classic SH prunes a fixed 1/eta of the pool per
// stage regardless of evidence; fine-selection prunes adaptively using the
// convergence-trend prediction. Sweeping eta shows the trade the paper's
// Section IV.C motivates: aggressive fixed pruning (large eta) approaches
// FS's cost but pays in selected-model accuracy, while FS gets the low
// cost *and* keeps the accuracy.

#include <iostream>
#include <numeric>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();
  ConvergenceTrendMiner miner(world.matrix.get());
  std::vector<size_t> all(world.zoo->size());
  std::iota(all.begin(), all.end(), 0);

  std::cout << "=== Ablation: SH eta sweep vs fine-selection (" << title
            << ", full zoo) ===\n";
  TablePrinter table({"target", "method", "epochs", "accuracy"});
  for (const Dataset* target : world.Targets()) {
    for (int eta : {2, 3, 4}) {
      SuccessiveHalvingOptions options;
      options.eta = eta;
      SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get(),
                                   options);
      const SelectionOutcome outcome = ExitIfError(
          sh.Select(all, *target, hp, nullptr), "sh");
      table.AddRow({target->name(), strings::Format("SH eta=%d", eta),
                    strings::FormatDouble(outcome.training_epochs, 0),
                    strings::FormatDouble(outcome.selected_accuracy, 3)});
    }
    FineSelectionSelector fs(world.zoo.get(), world.simulator.get(),
                             &miner);
    const SelectionOutcome outcome = ExitIfError(
        fs.Select(all, *target, hp, nullptr), "fs");
    table.AddRow({target->name(), "FS (trend-informed)",
                  strings::FormatDouble(outcome.training_epochs, 0),
                  strings::FormatDouble(outcome.selected_accuracy, 3)});
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
