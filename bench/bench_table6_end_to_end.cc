// Reproduces Table VI: end-to-end comparison of the two-phase framework
// (2PH = coarse-recall + fine-selection, including the 0.5-epoch-per-proxy
// inference cost) against brute force (BF) and successive halving (SH) on
// the full zoo. The paper reports 2PH at ~5.5-10.5x over BF and ~2.5-4x
// over SH with accuracy within a point of BF.

// Alongside the printed table, machine-readable telemetry is written to
// BENCH_table6_end_to_end.json (see bench/telemetry.h): per-target recall
// and fine-selection phases with wall time + epoch costs, plus the BF/SH
// cost and accuracy scalars backing every table cell.

#include <iostream>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "core/baselines.h"
#include "core/two_phase.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title, BenchTelemetry* telemetry) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();

  TwoPhaseSelector two_phase(world.zoo.get(), world.matrix.get(),
                             world.clustering.get(), world.simulator.get());
  SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get());
  BruteForceSelector bf(world.zoo.get(), world.simulator.get());

  std::vector<size_t> all_models(world.zoo->size());
  for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

  std::cout << "=== Table VI: end-to-end (" << title << ", zoo size "
            << world.zoo->size() << ") ===\n";
  TablePrinter table({"target", "2PH epochs", "vs BF", "vs SH", "acc BF",
                      "acc SH", "acc 2PH"});

  for (const Dataset* target : world.Targets()) {
    SelectionTrace trace;
    TwoPhaseOptions options;
    options.trace = &trace;
    TwoPhaseReport report = ExitIfError(
        two_phase.Select(*target, options, hp),
        "two-phase " + target->name());
    const std::string prefix = std::string(title) + "/" + target->name();
    telemetry->RecordPhase(prefix + "/recall", trace.recall.wall_ms, 0.0,
                           trace.recall.inference_epochs);
    telemetry->RecordPhase(prefix + "/fine", trace.fine_wall_ms,
                           trace.training_epochs, 0.0);
    EpochBudget bf_budget;
    const SelectionOutcome bf_out = ExitIfError(
        bf.Select(all_models, *target, hp, &bf_budget),
        "bf " + target->name());
    EpochBudget sh_budget;
    const SelectionOutcome sh_out = ExitIfError(
        sh.Select(all_models, *target, hp, &sh_budget),
        "sh " + target->name());

    const double t2 = report.budget.total_epochs();
    telemetry->RecordValue(prefix + "/two_phase_epochs", t2);
    telemetry->RecordValue(prefix + "/bf_epochs", bf_budget.total_epochs());
    telemetry->RecordValue(prefix + "/sh_epochs", sh_budget.total_epochs());
    telemetry->RecordValue(prefix + "/acc_bf", bf_out.selected_accuracy);
    telemetry->RecordValue(prefix + "/acc_sh", sh_out.selected_accuracy);
    telemetry->RecordValue(prefix + "/acc_two_phase",
                           report.selection.selected_accuracy);
    table.AddRow({target->name(), strings::FormatDouble(t2, 1),
                  strings::Format("%.2fx", bf_budget.total_epochs() / t2),
                  strings::Format("%.2fx", sh_budget.total_epochs() / t2),
                  strings::FormatDouble(bf_out.selected_accuracy, 3),
                  strings::FormatDouble(sh_out.selected_accuracy, 3),
                  strings::FormatDouble(report.selection.selected_accuracy,
                                        3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::BenchTelemetry telemetry("table6_end_to_end");
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP", &telemetry);
  tps::bench::Report(tps::TaskDomain::kCV, "CV", &telemetry);
  telemetry.WriteFileOrWarn();
  return 0;
}
