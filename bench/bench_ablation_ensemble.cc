// Extension bench (related-work direction: Palette-style multi-source
// reuse): after fine-selection, is it worth keeping the top-3 committee
// instead of the single winner? Compares the single selected model, a
// majority-vote ensemble of the top-3 recalled-and-ranked models, and a
// clone committee (three same-lineage models) on every target.

#include <iostream>

#include "bench/harness.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "core/two_phase.h"
#include "sim/ensemble.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();
  TwoPhaseSelector selector(world.zoo.get(), world.matrix.get(),
                            world.clustering.get(), world.simulator.get());

  std::cout << "=== Extension: top-3 ensemble after selection (" << title
            << ") ===\n";
  TablePrinter table({"target", "single pick", "top-3 ensemble",
                      "member similarity", "gain"});
  for (const Dataset* target : world.Targets()) {
    TwoPhaseReport report = ExitIfError(
        selector.Select(*target, TwoPhaseOptions(), hp), target->name());
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator, hp),
        "truth");

    // Committee: the selected model plus up to two recalled models within
    // two points of it — ensembling clearly weaker members only hurts, so
    // a practical committee keeps near-peers (and degenerates to the
    // single pick when there are none).
    std::vector<size_t> committee = {report.selection.selected_model};
    for (size_t index : report.recall.TopModels(10)) {
      if (committee.size() >= 3) break;
      if (index != report.selection.selected_model &&
          truth[index] >= truth[report.selection.selected_model] - 0.02) {
        committee.push_back(index);
      }
    }
    const EnsembleResult ensemble = ExitIfError(
        EvaluateEnsemble(*world.zoo, committee, *target, *world.simulator,
                         hp),
        "ensemble");

    table.AddRow(
        {target->name(),
         strings::FormatDouble(report.selection.selected_accuracy, 3),
         strings::FormatDouble(ensemble.ensemble_accuracy, 3),
         strings::FormatDouble(ensemble.mean_member_similarity, 3),
         strings::FormatDouble(ensemble.ensemble_accuracy -
                                   report.selection.selected_accuracy,
                               3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
