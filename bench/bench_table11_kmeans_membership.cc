// Reproduces Table XI (Appendix F): k-means cluster memberships over the
// same performance vectors as Table II. The paper's finding: k-means
// clusters mix lineages and structures more than hierarchical clustering
// does, which is why the main method uses hierarchical clustering.

#include <iostream>

#include "bench/harness.h"
#include "core/model_clusterer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  ModelClusteringOptions options;
  options.algorithm = ClusterAlgorithm::kKMeans;
  // Match the hierarchical granularity, as the paper's appendix does.
  options.num_clusters = world.clustering->clusters.num_clusters;
  ModelClustering clustering = ExitIfError(
      ClusterModels(*world.matrix, *world.zoo, options), "cluster");

  std::cout << "=== Table XI: k-means model clusters (" << title << ", k="
            << options.num_clusters << ") ===\n";
  std::cout << FormatClusters(clustering, *world.zoo,
                              /*include_singletons=*/false)
            << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
