// Reproduces Table II: non-singleton model clusters from hierarchical
// clustering over performance-matrix vectors (Eq. 1 similarity, k = 5),
// for both the NLP and CV zoos. The paper reports 8 NLP clusters covering
// 30/40 models and 6 CV clusters covering almost all 30; lineage groups
// (bert_ft_qqp-*, init_bert_ft_qqp-*, BEiT/ViT ImageNet-21k, ...) should
// co-cluster.

#include <iostream>

#include "bench/harness.h"
#include "core/model_clusterer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  std::cout << "=== Table II: model clusters (" << title << ") ===\n";
  const std::vector<int> non_singleton =
      world.clustering->NonSingletonClusters();
  size_t covered = 0;
  for (int c : non_singleton) {
    covered += world.clustering->clusters.Members(c).size();
  }
  std::cout << non_singleton.size() << " non-singleton clusters covering "
            << covered << "/" << world.zoo->size() << " models\n";
  std::cout << FormatClusters(*world.clustering, *world.zoo,
                              /*include_singletons=*/false)
            << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "Natural Language Processing");
  tps::bench::Report(tps::TaskDomain::kCV, "Computer Vision");
  return 0;
}
