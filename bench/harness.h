#ifndef TPS_BENCH_HARNESS_H_
#define TPS_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "data/registry.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "util/statusor.h"

namespace tps {
namespace bench {

/// Everything a paper-experiment harness needs for one domain: the dataset
/// inventory, the model zoo, the offline artifacts (performance matrix +
/// model clustering) and the fine-tune simulator.
struct World {
  std::unique_ptr<DatasetRegistry> registry;
  std::unique_ptr<ModelZoo> zoo;
  std::unique_ptr<FineTuneSimulator> simulator;
  std::unique_ptr<PerformanceMatrix> matrix;
  std::unique_ptr<ModelClustering> clustering;
  TaskDomain domain = TaskDomain::kNLP;

  std::vector<const Dataset*> Benchmarks() const {
    return registry->Benchmarks(domain);
  }
  std::vector<const Dataset*> Targets() const {
    return registry->Targets(domain);
  }
  Hyperparams DefaultHp() const { return Hyperparams::DefaultsFor(domain); }
};

/// Builds the full offline world for one domain with the paper's default
/// configuration (Eq. 1 k=5, hierarchical average-linkage clustering).
/// The performance matrix is built on a thread pool sized to the hardware
/// (clamped to the |D| x |M| grid); the result is bit-identical to a
/// serial build.
StatusOr<World> BuildWorld(TaskDomain domain);

/// As above with an explicit worker count (1 = fully serial build).
StatusOr<World> BuildWorld(TaskDomain domain, int num_threads);

/// Exits the process with a message if `status` is not OK. Harness `main`s
/// use this instead of silently continuing with bad data.
void ExitIfError(const Status& status, const std::string& context);

template <typename T>
T ExitIfError(StatusOr<T> status_or, const std::string& context) {
  ExitIfError(status_or.status(), context);
  return std::move(status_or).value();
}

}  // namespace bench
}  // namespace tps

#endif  // TPS_BENCH_HARNESS_H_
