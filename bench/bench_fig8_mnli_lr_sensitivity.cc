// Reproduces Fig. 8 (Appendix A): the same top-10 MNLI curves at the lower
// learning rate 1e-5. The paper's observations: convergence is slower, the
// late-training decline disappears, and the early-validation-predicts-final
// relationship (hence the method) still holds.

#include "bench/curve_report.h"

int main() {
  tps::bench::PrintTopModelCurves("mnli", /*learning_rate=*/1e-5);
  return 0;
}
