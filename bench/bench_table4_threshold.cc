// Reproduces Table IV: fine-selection accuracy and runtime under filtering
// thresholds 0%, 1%, 5%, 10% on MNLI, MultiRC, Flowers and X-Ray (top-10
// recalled models). The paper: accuracy is flat-to-slightly-better with
// larger thresholds while runtime grows (14-16 -> 15-19 epochs).

#include <iostream>

#include "bench/harness.h"
#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const std::vector<std::string>& targets,
            TablePrinter& table) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  ConvergenceTrendMiner miner(world.matrix.get());
  const Hyperparams hp = world.DefaultHp();

  for (const std::string& name : targets) {
    const Dataset* target = ExitIfError(world.registry->Find(name), name);
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), nullptr), "recall " + name);
    const std::vector<size_t> top10 = rr.TopModels(10);

    std::vector<std::string> acc_row = {name, "accuracy"};
    std::vector<std::string> time_row = {name, "runtime (epochs)"};
    for (double threshold : {0.0, 0.01, 0.05, 0.10}) {
      FineSelectionOptions options;
      options.threshold = threshold;
      FineSelectionSelector fs(world.zoo.get(), world.simulator.get(),
                               &miner, options);
      const SelectionOutcome outcome = ExitIfError(
          fs.Select(top10, *target, hp, nullptr), "fs " + name);
      acc_row.push_back(strings::FormatDouble(outcome.selected_accuracy, 3));
      time_row.push_back(strings::FormatDouble(outcome.training_epochs, 0));
    }
    table.AddRow(acc_row);
    table.AddRow(time_row);
    table.AddSeparator();
  }
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  using namespace tps;
  using namespace tps::bench;
  std::cout << "=== Table IV: fine-selection filtering threshold sweep "
               "===\n";
  TablePrinter table({"target", "metric", "0%", "1%", "5%", "10%"});
  Report(TaskDomain::kNLP, {"mnli", "multirc"}, table);
  Report(TaskDomain::kCV, {"oxford_flowers", "chest_xray"}, table);
  table.Print(std::cout);
  return 0;
}
