// Reproduces Table VII: for each target, the true best model, its accuracy,
// its rank in the coarse-recall ordering, and the mean true accuracy of the
// 10 recalled models. The paper's best models rank 0-9 at coarse-recall and
// always beat the recalled-set average.

#include <iostream>

#include "bench/harness.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());

  std::cout << "=== Table VII: case study (" << title << ") ===\n";
  TablePrinter table(
      {"target", "best model", "acc", "rank@CR", "avg acc of recalled 10"});
  for (const Dataset* target : world.Targets()) {
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), nullptr),
        "recall " + target->name());
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator,
                            world.DefaultHp()),
        "truth " + target->name());
    const size_t best = BestModel(truth);
    table.AddRow({target->name(), world.zoo->model(best).name(),
                  strings::FormatDouble(truth[best], 3),
                  std::to_string(rr.RankOf(best)),
                  strings::FormatDouble(MeanAt(truth, rr.TopModels(10)),
                                        3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
