// Reproduces Fig. 3: per-epoch validation and test accuracy of the top-10
// recalled models on MNLI at the default learning rate 3e-5. The paper's
// observations: the eventual winners lead from the first epoch, and the top
// models decline slightly late in training (overfitting at this rate).

#include "bench/curve_report.h"

int main() {
  tps::bench::PrintTopModelCurves("mnli", /*learning_rate=*/3e-5);
  return 0;
}
