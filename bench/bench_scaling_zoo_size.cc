// Scaling ablation (Section V.C.3, "scaling to more models"): how selection
// cost grows with repository size for brute force, successive halving,
// fine-selection and the full two-phase pipeline, on synthetic zoos of
// 50-400 models. The paper's argument: two-phase cost is dominated by the
// recalled-set size, so it flattens while BF/SH grow linearly.

#include <iostream>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report() {
  DatasetRegistry registry = ExitIfError(
      DatasetRegistry::CreatePaperInventory(), "registry");
  const Dataset* target = ExitIfError(registry.Find("mnli"), "target");
  const auto benchmarks = registry.Benchmarks(TaskDomain::kNLP);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  FineTuneSimulator simulator;

  std::cout << "=== Scaling: selection cost vs zoo size (synthetic NLP "
               "zoos, target mnli) ===\n";
  TablePrinter table({"zoo size", "BF epochs", "SH epochs", "2PH epochs",
                      "2PH speedup vs SH", "acc BF", "acc 2PH"});
  for (size_t zoo_size : {50, 100, 200, 400}) {
    ModelZoo zoo = ExitIfError(
        ModelZoo::Create(SyntheticZooSpecs(TaskDomain::kNLP, zoo_size, 17)),
        "zoo");
    PerformanceMatrix matrix = ExitIfError(
        PerformanceMatrix::Build(zoo, benchmarks, simulator, hp), "matrix");
    ModelClustering clustering = ExitIfError(
        ClusterModels(matrix, zoo, ModelClusteringOptions()), "clustering");

    std::vector<size_t> all_models(zoo.size());
    for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

    BruteForceSelector bf(&zoo, &simulator);
    EpochBudget bf_budget;
    const SelectionOutcome bf_out = ExitIfError(
        bf.Select(all_models, *target, hp, &bf_budget), "bf");

    SuccessiveHalvingSelector sh(&zoo, &simulator);
    EpochBudget sh_budget;
    ExitIfError(sh.Select(all_models, *target, hp, &sh_budget), "sh");

    TwoPhaseSelector two_phase(&zoo, &matrix, &clustering, &simulator);
    TwoPhaseReport report = ExitIfError(
        two_phase.Select(*target, TwoPhaseOptions(), hp), "2ph");

    table.AddRow(
        {std::to_string(zoo_size),
         strings::FormatDouble(bf_budget.total_epochs(), 0),
         strings::FormatDouble(sh_budget.total_epochs(), 0),
         strings::FormatDouble(report.budget.total_epochs(), 1),
         strings::Format("%.2fx", sh_budget.total_epochs() /
                                      report.budget.total_epochs()),
         strings::FormatDouble(bf_out.selected_accuracy, 3),
         strings::FormatDouble(report.selection.selected_accuracy, 3)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report();
  return 0;
}
