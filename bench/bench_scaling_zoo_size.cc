// Scaling ablation (Section V.C.3, "scaling to more models"), two parts.
//
// Part 1 — the paper's table: how selection cost grows with repository
// size for brute force, successive halving and the full two-phase
// pipeline, on synthetic zoos of 50-400 models. The paper's argument:
// two-phase cost is dominated by the recalled-set size, so it flattens
// while BF/SH grow linearly.
//
// Part 2 — the recall-latency-vs-zoo-size curve the sub-linear index was
// built for: generated zoos of 1k-10k models (tps_cli zoo-gen lineage
// structure), recall through the legacy clustering sweep (the brute-force
// oracle) vs the IVF index at its default nprobe, plus a recall@K-vs-
// nprobe sweep and a full-probe bit-identity check against the oracle.
//
// Both parts record machine-readable results into the
// BENCH_scaling_zoo_size.json telemetry sidecar.

#include <algorithm>
#include <iostream>
#include <set>
#include <vector>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/model_clusterer.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "index/ivf_index.h"
#include "model/paper_zoo.h"
#include "model/zoo_gen.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tps {
namespace bench {
namespace {

void ReportPaperTable(BenchTelemetry* telemetry) {
  DatasetRegistry registry = ExitIfError(
      DatasetRegistry::CreatePaperInventory(), "registry");
  const Dataset* target = ExitIfError(registry.Find("mnli"), "target");
  const auto benchmarks = registry.Benchmarks(TaskDomain::kNLP);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  FineTuneSimulator simulator;

  std::cout << "=== Scaling: selection cost vs zoo size (synthetic NLP "
               "zoos, target mnli) ===\n";
  TablePrinter table({"zoo size", "BF epochs", "SH epochs", "2PH epochs",
                      "2PH speedup vs SH", "acc BF", "acc 2PH"});
  for (size_t zoo_size : {50, 100, 200, 400}) {
    WallTimer phase_timer;
    ModelZoo zoo = ExitIfError(
        ModelZoo::Create(SyntheticZooSpecs(TaskDomain::kNLP, zoo_size, 17)),
        "zoo");
    PerformanceMatrix matrix = ExitIfError(
        PerformanceMatrix::Build(zoo, benchmarks, simulator, hp), "matrix");
    ModelClustering clustering = ExitIfError(
        ClusterModels(matrix, zoo, ModelClusteringOptions()), "clustering");

    std::vector<size_t> all_models(zoo.size());
    for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

    BruteForceSelector bf(&zoo, &simulator);
    EpochBudget bf_budget;
    const SelectionOutcome bf_out = ExitIfError(
        bf.Select(all_models, *target, hp, &bf_budget), "bf");

    SuccessiveHalvingSelector sh(&zoo, &simulator);
    EpochBudget sh_budget;
    ExitIfError(sh.Select(all_models, *target, hp, &sh_budget), "sh");

    TwoPhaseSelector two_phase(&zoo, &matrix, &clustering, &simulator);
    TwoPhaseReport report = ExitIfError(
        two_phase.Select(*target, TwoPhaseOptions(), hp), "2ph");

    table.AddRow(
        {std::to_string(zoo_size),
         strings::FormatDouble(bf_budget.total_epochs(), 0),
         strings::FormatDouble(sh_budget.total_epochs(), 0),
         strings::FormatDouble(report.budget.total_epochs(), 1),
         strings::Format("%.2fx", sh_budget.total_epochs() /
                                      report.budget.total_epochs()),
         strings::FormatDouble(bf_out.selected_accuracy, 3),
         strings::FormatDouble(report.selection.selected_accuracy, 3)});

    const std::string prefix =
        std::string("NLP/zoo") + std::to_string(zoo_size) + "/";
    telemetry->RecordPhase(std::string("NLP/zoo") + std::to_string(zoo_size),
                           phase_timer.ElapsedMillis(),
                           bf_budget.training_epochs() +
                               sh_budget.training_epochs() +
                               report.budget.training_epochs(),
                           bf_budget.inference_epochs() +
                               sh_budget.inference_epochs() +
                               report.budget.inference_epochs());
    telemetry->RecordValue(prefix + "bf_epochs", bf_budget.total_epochs());
    telemetry->RecordValue(prefix + "sh_epochs", sh_budget.total_epochs());
    telemetry->RecordValue(prefix + "two_phase_epochs",
                           report.budget.total_epochs());
    telemetry->RecordValue(
        prefix + "two_phase_speedup_vs_sh",
        sh_budget.total_epochs() / report.budget.total_epochs());
    telemetry->RecordValue(prefix + "bf_accuracy",
                           bf_out.selected_accuracy);
    telemetry->RecordValue(prefix + "two_phase_accuracy",
                           report.selection.selected_accuracy);
  }
  table.Print(std::cout);
}

/// Median wall time of `repeats` runs of `fn` in milliseconds.
template <typename Fn>
double MedianMillis(int repeats, const Fn& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Fraction of the oracle's top-k models the indexed ranking recovered.
double RecallAtK(const RecallResult& oracle, const RecallResult& indexed,
                 size_t k) {
  const std::vector<size_t> want = oracle.TopModels(k);
  const std::vector<size_t> got = indexed.TopModels(k);
  const std::set<size_t> got_set(got.begin(), got.end());
  size_t hit = 0;
  for (size_t m : want) hit += got_set.count(m);
  return want.empty() ? 1.0
                      : static_cast<double>(hit) /
                            static_cast<double>(want.size());
}

bool SameRanking(const RecallResult& a, const RecallResult& b) {
  if (a.proxies_computed != b.proxies_computed) return false;
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    const RecallEntry& x = a.ranked[i];
    const RecallEntry& y = b.ranked[i];
    if (x.model_index != y.model_index ||
        x.recall_score != y.recall_score ||
        x.prior_accuracy != y.prior_accuracy ||
        x.proxy_component != y.proxy_component ||
        x.via_propagation != y.via_propagation) {
      return false;
    }
  }
  return true;
}

void ReportIndexedRecall(BenchTelemetry* telemetry) {
  DatasetRegistry registry = ExitIfError(
      DatasetRegistry::CreatePaperInventory(), "registry");
  const Dataset* target = ExitIfError(registry.Find("mnli"), "target");
  const auto benchmarks = registry.Benchmarks(TaskDomain::kNLP);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  FineTuneSimulator simulator;
  constexpr size_t kTopK = 10;
  constexpr int kRepeats = 5;

  std::cout << "\n=== Scaling: recall latency vs zoo size (generated NLP "
               "zoos, brute-force oracle vs IVF index, target mnli) ===\n";
  TablePrinter table({"zoo size", "partitions", "nprobe", "oracle p50 ms",
                      "ivf p50 ms", "speedup", "recall@10",
                      "full probe == oracle"});
  bool accept_latency = false, accept_recall = false, accept_exact = false;
  for (size_t zoo_size : {1000, 2500, 5000, 10000}) {
    ZooGenSpec spec;
    spec.domain = TaskDomain::kNLP;
    spec.num_models = zoo_size;
    ModelZoo zoo = ExitIfError(
        ModelZoo::Create(ExitIfError(GenerateZooSpecs(spec), "specs")),
        "zoo");

    WallTimer matrix_timer;
    PerformanceMatrix matrix = ExitIfError(
        PerformanceMatrix::Build(zoo, benchmarks, simulator, hp), "matrix");
    telemetry->RecordPhase(
        std::string("NLP/gen") + std::to_string(zoo_size) + "/matrix_build",
        matrix_timer.ElapsedMillis(), 0.0, 0.0);

    WallTimer index_timer;
    IvfIndex index = ExitIfError(
        IvfIndex::Build(matrix.ModelVectors(),
                        matrix.ModelAverageAccuracies(), IvfIndexOptions()),
        "index");
    telemetry->RecordPhase(
        std::string("NLP/gen") + std::to_string(zoo_size) + "/index_build",
        index_timer.ElapsedMillis(), 0.0, 0.0);

    // The oracle serves the index's own partitioning through the legacy
    // sweep, so the two paths differ only in what they probe.
    ModelClustering clustering = ExitIfError(
        ClusteringFromIndexStructure(index.structure()), "clustering");
    CoarseRecall recall(&zoo, &matrix, &clustering);

    RecallOptions oracle_options;
    oracle_options.top_k_models = kTopK;
    RecallResult oracle;
    const double oracle_ms = MedianMillis(kRepeats, [&]() {
      oracle = ExitIfError(recall.Recall(*target, oracle_options, nullptr),
                           "oracle recall");
    });

    RecallOptions indexed_options = oracle_options;
    indexed_options.index = &index;
    RecallResult indexed;
    const double indexed_ms = MedianMillis(kRepeats, [&]() {
      indexed = ExitIfError(
          recall.Recall(*target, indexed_options, nullptr),
          "indexed recall");
    });
    const double speedup = oracle_ms / indexed_ms;
    const double recall_at_k = RecallAtK(oracle, indexed, kTopK);

    // Full probe with exact (unrestricted) propagation must reproduce the
    // oracle bit-for-bit — the serving-path mirror of theorem A in
    // tests/index/index_equivalence_test.cc.
    IvfIndexOptions exact_options;
    exact_options.propagation_neighbors = 0;
    IvfIndex exact_index = ExitIfError(
        IvfIndex::BuildWithCentroids(index.centroids(),
                                     matrix.ModelVectors(),
                                     matrix.ModelAverageAccuracies(),
                                     exact_options),
        "exact index");
    RecallOptions full_options = oracle_options;
    full_options.index = &exact_index;
    full_options.nprobe = exact_index.num_partitions();
    const RecallResult full = ExitIfError(
        recall.Recall(*target, full_options, nullptr), "full probe");
    const bool identical = SameRanking(oracle, full);

    table.AddRow({std::to_string(zoo_size),
                  std::to_string(index.num_partitions()),
                  std::to_string(index.default_nprobe()),
                  strings::FormatDouble(oracle_ms, 2),
                  strings::FormatDouble(indexed_ms, 2),
                  strings::Format("%.1fx", speedup),
                  strings::FormatDouble(recall_at_k, 2),
                  identical ? "yes" : "NO"});

    const std::string prefix = std::string("NLP/gen") + std::to_string(zoo_size) + "/";
    telemetry->RecordValue(prefix + "bf_recall_p50_ms", oracle_ms);
    telemetry->RecordValue(prefix + "ivf_recall_p50_ms", indexed_ms);
    telemetry->RecordValue(prefix + "speedup", speedup);
    telemetry->RecordValue(prefix + "recall_at_10", recall_at_k);
    telemetry->RecordValue(prefix + "num_partitions",
                           static_cast<double>(index.num_partitions()));
    telemetry->RecordValue(prefix + "default_nprobe",
                           static_cast<double>(index.default_nprobe()));
    telemetry->RecordValue(prefix + "full_probe_identical",
                           identical ? 1.0 : 0.0);

    // Recall-vs-nprobe sweep (the latency/quality dial): doubling nprobe
    // from 1 until every scored partition is probed.
    const size_t scored =
        index.structure().scored_partitions.size();
    for (size_t nprobe = 1; nprobe < 2 * scored; nprobe *= 2) {
      const size_t effective = std::min(nprobe, scored);
      RecallOptions sweep_options = indexed_options;
      sweep_options.nprobe = effective;
      RecallResult sweep;
      const double sweep_ms = MedianMillis(3, [&]() {
        sweep = ExitIfError(
            recall.Recall(*target, sweep_options, nullptr),
            "nprobe sweep");
      });
      const std::string key =
          prefix + std::string("nprobe") + std::to_string(effective) + "_";
      telemetry->RecordValue(key + "recall_at_10",
                             RecallAtK(oracle, sweep, kTopK));
      telemetry->RecordValue(key + "p50_ms", sweep_ms);
      if (effective == scored) break;
    }

    if (zoo_size == 10000) {
      accept_latency = indexed_ms <= 0.2 * oracle_ms;
      accept_recall = recall_at_k >= 0.95;
      accept_exact = identical;
    }
  }
  table.Print(std::cout);
  std::cout << "acceptance (10k zoo): ivf p50 <= 0.2x oracle: "
            << (accept_latency ? "PASS" : "FAIL")
            << ", recall@10 >= 0.95: "
            << (accept_recall ? "PASS" : "FAIL")
            << ", full probe bit-identical: "
            << (accept_exact ? "PASS" : "FAIL") << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::BenchTelemetry telemetry("scaling_zoo_size");
  tps::bench::ReportPaperTable(&telemetry);
  tps::bench::ReportIndexedRecall(&telemetry);
  telemetry.WriteFileOrWarn();
  return 0;
}
