// Reproduces Table I: silhouette coefficient of model clusterings under
// performance-based (Eq. 1, k=5) vs text-based (model-card embedding)
// similarity, for hierarchical and k-means clustering, on both domains.
// The paper's finding: performance-based similarity with hierarchical
// clustering wins.

#include <iostream>

#include "bench/harness.h"
#include "clustering/silhouette.h"
#include "core/model_clusterer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

double SilhouetteFor(const World& world, ModelSimilarityKind similarity,
                     ClusterAlgorithm algorithm) {
  ModelClusteringOptions options;
  options.similarity = similarity;
  options.algorithm = algorithm;
  if (algorithm == ClusterAlgorithm::kKMeans) {
    // Match the hierarchical run's granularity for a fair comparison.
    options.num_clusters = world.clustering->clusters.num_clusters;
  }
  ModelClustering clustering = ExitIfError(
      ClusterModels(*world.matrix, *world.zoo, options), "cluster");
  return ExitIfError(
      SilhouetteScore(clustering.distances, clustering.clusters),
      "silhouette");
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  using namespace tps;
  using namespace tps::bench;

  World nlp = ExitIfError(BuildWorld(TaskDomain::kNLP), "nlp world");
  World cv = ExitIfError(BuildWorld(TaskDomain::kCV), "cv world");

  std::cout << "=== Table I: clustering methods comparison (silhouette "
               "coefficient) ===\n";
  TablePrinter table({"model similarity", "hierarchical NLP",
                      "hierarchical CV", "k-means NLP", "k-means CV"});
  for (auto similarity :
       {ModelSimilarityKind::kPerformance, ModelSimilarityKind::kTextCard}) {
    const char* name = similarity == ModelSimilarityKind::kPerformance
                           ? "performance-based"
                           : "text-based";
    table.AddRow(
        {name,
         strings::FormatDouble(
             SilhouetteFor(nlp, similarity, ClusterAlgorithm::kHierarchical),
             3),
         strings::FormatDouble(
             SilhouetteFor(cv, similarity, ClusterAlgorithm::kHierarchical),
             3),
         strings::FormatDouble(
             SilhouetteFor(nlp, similarity, ClusterAlgorithm::kKMeans), 3),
         strings::FormatDouble(
             SilhouetteFor(cv, similarity, ClusterAlgorithm::kKMeans), 3)});
  }
  table.Print(std::cout);
  std::cout << "(paper: performance-based + hierarchical is best on both "
               "domains)\n";
  return 0;
}
