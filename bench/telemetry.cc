#include "bench/telemetry.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/json.h"

namespace tps {
namespace bench {

BenchTelemetry::BenchTelemetry(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchTelemetry::RecordPhase(const std::string& name, double wall_ms,
                                 double training_epochs,
                                 double inference_epochs) {
  phases_.push_back({name, wall_ms, training_epochs, inference_epochs});
}

void BenchTelemetry::RecordValue(const std::string& key, double value) {
  values_.emplace_back(key, value);
}

std::string BenchTelemetry::ToJson(int indent) const {
  json::Value root = json::Value::Object();
  root.Set("bench", json::Value::String(bench_name_));
  root.Set("schema_version", json::Value::Int(1));
  json::Value phases = json::Value::Array();
  for (const Phase& phase : phases_) {
    json::Value p = json::Value::Object();
    p.Set("name", json::Value::String(phase.name));
    p.Set("wall_ms", json::Value::Number(phase.wall_ms));
    p.Set("training_epochs", json::Value::Number(phase.training_epochs));
    p.Set("inference_epochs", json::Value::Number(phase.inference_epochs));
    phases.Append(std::move(p));
  }
  root.Set("phases", std::move(phases));
  json::Value values = json::Value::Object();
  for (const auto& [key, value] : values_) {
    values.Set(key, json::Value::Number(value));
  }
  root.Set("values", std::move(values));
  return root.Dump(indent);
}

std::string BenchTelemetry::FileName() const {
  return "BENCH_" + bench_name_ + ".json";
}

StatusOr<std::string> BenchTelemetry::WriteFile() const {
  std::string path = FileName();
  if (const char* dir = std::getenv("TPS_BENCH_TELEMETRY_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (out) out << ToJson(2) << "\n";
  if (!out) return Status::IOError("cannot write telemetry: " + path);
  return path;
}

void BenchTelemetry::WriteFileOrWarn() const {
  StatusOr<std::string> path = WriteFile();
  if (path.ok()) {
    std::cout << "telemetry -> " << *path << "\n";
  } else {
    std::cerr << "warning: " << path.status().ToString() << "\n";
  }
}

}  // namespace bench
}  // namespace tps
