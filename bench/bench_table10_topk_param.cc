// Reproduces Table X (Appendix D): sensitivity of the Eq. 1 model
// similarity to the top-k parameter — silhouette coefficient of the
// hierarchical clustering for k in {5, 10, 15} (NLP) and {3, 4, 5} (CV).
// The paper: the coefficient fluctuates within a small range, so k = 5 is
// a safe default. Also reports plain Euclidean and cosine distances as an
// ablation of the top-k design choice.

#include <iostream>

#include "bench/harness.h"
#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/silhouette.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

double SilhouetteForMetric(const World& world, DistanceMetric metric,
                           size_t top_k) {
  std::vector<std::vector<double>> vectors;
  for (size_t m = 0; m < world.zoo->size(); ++m) {
    vectors.push_back(world.matrix->ModelVector(m));
  }
  const Matrix distances =
      ExitIfError(PairwiseDistances(vectors, metric, top_k), "distances");
  HierarchicalOptions options;
  options.num_clusters = world.clustering->clusters.num_clusters;
  const HierarchicalResult result =
      ExitIfError(HierarchicalCluster(distances, options), "cluster");
  return ExitIfError(SilhouetteScore(distances, result.clustering),
                     "silhouette");
}

void Report(TaskDomain domain, const char* title,
            const std::vector<size_t>& ks) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  std::cout << "=== Table X: Eq. 1 top-k sensitivity (" << title << ") ===\n";
  TablePrinter table({"distance", "silhouette"});
  for (size_t k : ks) {
    table.AddRow({strings::Format("top-%zu abs-diff", k),
                  strings::FormatDouble(
                      SilhouetteForMetric(world,
                                          DistanceMetric::kTopKAbsDiff, k),
                      3)});
  }
  table.AddRow({"euclidean (ablation)",
                strings::FormatDouble(
                    SilhouetteForMetric(world, DistanceMetric::kEuclidean,
                                        5),
                    3)});
  table.AddRow({"cosine (ablation)",
                strings::FormatDouble(
                    SilhouetteForMetric(world, DistanceMetric::kCosine, 5),
                    3)});
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP", {5, 10, 15});
  tps::bench::Report(tps::TaskDomain::kCV, "CV", {3, 4, 5});
  return 0;
}
