// Serving-layer throughput: a closed-loop load generator drives the
// SelectionService through its admission path (Submit) with N concurrent
// clients and reports per-request latency percentiles, sustained QPS and
// the proxy-score cache hit rate, cold vs warm vs cache-off. The headline
// number is the warm-over-cold speedup: once the cache holds the proxy
// scores for the request mix, the recall phase stops recomputing them.
//
// A second experiment measures the cold path itself: a stampede of clients
// hitting the same never-seen target at once, comparing the
// pre-vectorization configuration (scalar reference kernels, no request
// coalescing) against the production default (batched SoA kernels +
// cross-request proxy coalescing). Its headline is NLP/cold_p50_speedup.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "serve/service.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

using serve::SelectionRequest;
using serve::SelectionService;
using serve::ServiceArtifacts;
using serve::ServiceOptions;
using serve::ServiceStats;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 25;
constexpr int kStampedeClients = 8;

struct LoadResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  ServiceStats stats;
};

/// Closed loop: each client thread issues its next request only after the
/// previous one resolved, round-robining over the domain's target sets.
LoadResult RunLoad(SelectionService& service,
                   const std::vector<const Dataset*>& targets) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(kClients);
  std::atomic<uint64_t> failures{0};
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        SelectionRequest request;
        request.target =
            targets[(c * kRequestsPerClient + i) % targets.size()]->name();
        const auto begin = Clock::now();
        const auto response = service.Submit(std::move(request)).get();
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - begin)
                .count());
        if (!response.status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  if (failures.load() > 0) {
    std::cerr << "warning: " << failures.load()
              << " requests failed during the load run\n";
  }

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  LoadResult result;
  result.wall_ms = wall_ms;
  result.qps = static_cast<double>(all.size()) / (wall_ms / 1000.0);
  result.p50_ms = stats::Percentile(all, 50.0);
  result.p99_ms = stats::Percentile(all, 99.0);
  result.stats = service.Stats();
  return result;
}

/// Cold-request stampede: for every target in turn, kStampedeClients
/// clients submit the identical request simultaneously against a service
/// with no proxy-score cache. Every measured request is cold; coalescing,
/// when enabled, is the only thing that collapses the duplicate work. The
/// requests ask for the full proxy suite — the per-model scoring kernels
/// are the cold path the stampede is designed to stress.
LoadResult RunStampede(SelectionService& service,
                       const std::vector<const Dataset*>& targets) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> all;
  std::mutex mu;
  std::atomic<uint64_t> failures{0};
  const auto start = Clock::now();
  for (const Dataset* target : targets) {
    std::vector<std::thread> clients;
    for (int c = 0; c < kStampedeClients; ++c) {
      clients.emplace_back([&, target] {
        SelectionRequest request;
        request.target = target->name();
        request.proxies = {"leep", "nce", "logme", "knn"};
        const auto begin = Clock::now();
        const auto response = service.Submit(std::move(request)).get();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - begin)
                .count();
        if (!response.status.ok()) failures.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        all.push_back(ms);
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  if (failures.load() > 0) {
    std::cerr << "warning: " << failures.load()
              << " requests failed during the stampede run\n";
  }
  LoadResult result;
  result.wall_ms = wall_ms;
  result.qps = static_cast<double>(all.size()) / (wall_ms / 1000.0);
  result.p50_ms = stats::Percentile(all, 50.0);
  result.p99_ms = stats::Percentile(all, 99.0);
  result.stats = service.Stats();
  return result;
}

double HitRate(const ServiceStats& stats) {
  const double total =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  return total == 0.0 ? 0.0
                      : static_cast<double>(stats.cache_hits) / total;
}

void Report() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int build_threads = std::max(1, hw - 1);
  BenchTelemetry telemetry("serve_throughput");

  std::cout << "=== Serving throughput: closed-loop load against the "
               "SelectionService ===\n"
            << kClients << " clients x " << kRequestsPerClient
            << " requests, NLP targets round-robin, workers="
            << kClients << "\n\n";

  ServiceArtifacts artifacts = ExitIfError(
      ServiceArtifacts::Build(TaskDomain::kNLP, build_threads), "artifacts");
  const std::vector<const Dataset*> targets =
      artifacts.registry.Targets(TaskDomain::kNLP);

  TablePrinter table({"run", "QPS", "p50 ms", "p99 ms", "cache hit rate",
                      "hits", "misses"});
  const auto record = [&](const std::string& name, const LoadResult& r) {
    table.AddRow({name, strings::FormatDouble(r.qps, 1),
                  strings::FormatDouble(r.p50_ms, 3),
                  strings::FormatDouble(r.p99_ms, 3),
                  strings::Format("%.1f%%", 100.0 * HitRate(r.stats)),
                  std::to_string(r.stats.cache_hits),
                  std::to_string(r.stats.cache_misses)});
    telemetry.RecordPhase("NLP/" + name, r.wall_ms, 0.0, 0.0);
    telemetry.RecordValue("NLP/" + name + "/qps", r.qps);
    telemetry.RecordValue("NLP/" + name + "/p50_ms", r.p50_ms);
    telemetry.RecordValue("NLP/" + name + "/p99_ms", r.p99_ms);
    telemetry.RecordValue("NLP/" + name + "/cache_hit_rate",
                          HitRate(r.stats));
  };

  ServiceOptions options;
  options.worker_threads = kClients;
  options.max_queue = 2 * kClients * kRequestsPerClient;

  // Cache off: every request recomputes every proxy score.
  LoadResult off;
  {
    ServiceOptions no_cache = options;
    no_cache.cache_capacity = 0;
    auto service = ExitIfError(
        SelectionService::Create(artifacts, no_cache), "service (no cache)");
    off = RunLoad(*service, targets);
    record("cache_off", off);
  }

  // Cold: fresh cache, the first pass over the target mix fills it.
  auto service = ExitIfError(SelectionService::Create(artifacts, options),
                             "service");
  const LoadResult cold = RunLoad(*service, targets);
  record("cold_cache", cold);

  // Warm: same service, same mix — recall now hits instead of scoring.
  const LoadResult warm = RunLoad(*service, targets);
  ServiceStats warm_stats = warm.stats;
  // Stats are cumulative across both runs on this service; isolate the
  // warm pass so the hit rate reflects it alone.
  warm_stats.cache_hits -= cold.stats.cache_hits;
  warm_stats.cache_misses -= cold.stats.cache_misses;
  LoadResult warm_only = warm;
  warm_only.stats = warm_stats;
  record("warm_cache", warm_only);

  // Cold-request stampede, pre-vectorization configuration vs the
  // production default. The cache is disabled for both so every measured
  // request is genuinely cold — otherwise late arrivals in a wave hit
  // entries inserted by early finishers and the run degenerates into the
  // warm-cache measurement above. With the cache off the old configuration
  // recomputes every proxy per request; the new one still collapses each
  // wave to a single computation via the proxy flight group.
  ServiceOptions stampede_options = options;
  stampede_options.worker_threads = kStampedeClients;
  stampede_options.max_queue = 4 * kStampedeClients;
  stampede_options.cache_capacity = 0;
  LoadResult stampede_old;
  {
    ServiceOptions old_options = stampede_options;
    old_options.kernel_mode = kernels::KernelMode::kReference;
    old_options.coalesce_proxies = false;
    auto old_service = ExitIfError(
        SelectionService::Create(artifacts, old_options),
        "service (reference kernels, no coalescing)");
    stampede_old = RunStampede(*old_service, targets);
    record("stampede_reference_uncoalesced", stampede_old);
  }
  auto new_service = ExitIfError(
      SelectionService::Create(artifacts, stampede_options),
      "service (batched kernels + coalescing)");
  const LoadResult stampede_new = RunStampede(*new_service, targets);
  record("stampede_batched_coalesced", stampede_new);

  table.Print(std::cout);
  const double speedup = warm.p50_ms > 0.0 ? off.p50_ms / warm.p50_ms : 0.0;
  std::cout << "\nwarm-cache p50 speedup vs cache-off: "
            << strings::Format("%.2fx", speedup) << "\n";
  telemetry.RecordValue("NLP/warm_vs_off_p50_speedup", speedup);
  const double cold_speedup = stampede_new.p50_ms > 0.0
                                  ? stampede_old.p50_ms / stampede_new.p50_ms
                                  : 0.0;
  std::cout << "cold-request p50 speedup (batched + coalesced vs "
               "reference uncoalesced): "
            << strings::Format("%.2fx", cold_speedup) << "\n";
  telemetry.RecordValue("NLP/cold_p50_speedup", cold_speedup);
  telemetry.WriteFileOrWarn();
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report();
  return 0;
}
