// Open-loop serving harness: a Poisson arrival process drives the
// SelectionService at a fixed OFFERED rate, firing every request on its
// precomputed schedule whether or not earlier ones have finished. Unlike
// the closed-loop generator (bench_serve_throughput), a slow server cannot
// slow the generator down, so queueing collapse is visible instead of
// being masked by coordinated omission: latency is measured from each
// request's SCHEDULED arrival time, and the report is SLO attainment,
// p50/p99, and the admission-control reject rate at each offered rate.
//
// The third phase swaps artifacts under load: while the generator runs,
// another thread Reload()s new artifact versions into the service. The
// harness proves zero-downtime semantics — every offered request is
// answered (none dropped, none failed), every response carries exactly one
// artifact version from the published set, and at least two distinct
// versions are observed, i.e. the swap really happened mid-load.
//
// Inter-arrival times are deterministic (seeded tps::Rng, exponential via
// inverse CDF), so the offered schedule is identical run-to-run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "core/model_clusterer.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

using serve::SelectionRequest;
using serve::SelectionResponse;
using serve::SelectionService;
using serve::ServiceArtifacts;
using serve::ServiceOptions;

using Clock = std::chrono::steady_clock;

constexpr uint64_t kSeed = 0x0907e41002;
constexpr double kSloMs = 100.0;
constexpr int kWorkers = 4;
constexpr size_t kQueue = 64;

/// One phase of offered load.
struct PhaseSpec {
  std::string name;
  double offered_qps = 0.0;
  double duration_s = 0.0;
  /// Moments (fractions of the phase window) at which to hot-swap
  /// artifacts; empty = no swaps.
  std::vector<double> reload_at;
};

struct OpenLoopResult {
  size_t offered = 0;
  size_t ok = 0;
  size_t rejected = 0;
  size_t failed = 0;  // Neither OK nor an admission reject.
  double wall_ms = 0.0;
  double p50_ms = 0.0;   // Over OK responses, from scheduled arrival.
  double p99_ms = 0.0;
  double slo_attainment = 0.0;  // OK and under kSloMs, over all offered.
  double reject_rate = 0.0;
  size_t reloads = 0;
  std::set<uint64_t> versions;  // Distinct versions across OK responses.
  /// Responses tagged with a version outside the published set — must be
  /// zero; any other value means a response mixed or invented versions.
  size_t out_of_band_versions = 0;
};

/// One in-flight request: when it was scheduled to arrive and the
/// service's future. The harvester fills `response`/`done`.
struct Flight {
  Clock::time_point scheduled;
  std::future<SelectionResponse> future;
  SelectionResponse response;
  double latency_ms = 0.0;
  bool done = false;
};

/// Fires `spec.offered_qps * spec.duration_s` requests on a deterministic
/// Poisson schedule, harvesting completions concurrently (a poller thread
/// sweeps the in-flight set, so a stuck request never stops the clock for
/// the ones behind it). `reload_artifacts` provides the versions swapped
/// in at spec.reload_at (cycled if fewer variants than swap points).
OpenLoopResult RunOpenLoop(SelectionService& service,
                           const std::vector<const Dataset*>& targets,
                           const PhaseSpec& spec,
                           const std::vector<ServiceArtifacts>& variants) {
  // Precompute the whole arrival schedule: exponential gaps via inverse
  // CDF on a seeded generator — byte-identical run-to-run.
  Rng rng(kSeed);
  std::vector<double> arrival_s;
  for (double t = 0.0;;) {
    t += -std::log(1.0 - rng.Uniform()) / spec.offered_qps;
    if (t >= spec.duration_s) break;
    arrival_s.push_back(t);
  }

  std::vector<Flight> flights(arrival_s.size());
  std::mutex mu;  // Guards `launched` handoff to the harvester.
  size_t launched = 0;
  bool dispatch_done = false;

  const Clock::time_point start = Clock::now();

  // Harvester: sweep launched flights, record completion against the
  // scheduled arrival time (open-loop latency includes queue wait AND any
  // backlog-induced dispatch lag).
  std::thread harvester([&] {
    size_t remaining = flights.size();
    size_t visible = 0;
    bool all_launched = false;
    while (remaining > 0) {
      {
        std::lock_guard<std::mutex> lock(mu);
        visible = launched;
        all_launched = dispatch_done;
      }
      (void)all_launched;
      for (size_t i = 0; i < visible; ++i) {
        Flight& flight = flights[i];
        if (flight.done || !flight.future.valid()) continue;
        if (flight.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          continue;
        }
        flight.response = flight.future.get();
        flight.latency_ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - flight.scheduled)
                                .count();
        flight.done = true;
        --remaining;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Reloader: hot-swap at the requested fractions of the window.
  std::thread reloader;
  size_t reloads_done = 0;
  if (!spec.reload_at.empty()) {
    reloader = std::thread([&] {
      for (size_t r = 0; r < spec.reload_at.size(); ++r) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(spec.reload_at[r] *
                                                      spec.duration_s)));
        ServiceArtifacts next = variants[r % variants.size()];
        const Status status = service.Reload(std::move(next));
        if (!status.ok()) {
          std::cerr << "warning: reload " << r
                    << " failed: " << status.ToString() << "\n";
          continue;
        }
        ++reloads_done;
      }
    });
  }

  // Dispatcher (this thread): fire every arrival on schedule. Submit
  // never blocks — it queues or rejects — so a backed-up service cannot
  // throttle the offered load.
  for (size_t i = 0; i < arrival_s.size(); ++i) {
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    std::this_thread::sleep_until(due);
    SelectionRequest request;
    request.target = targets[i % targets.size()]->name();
    flights[i].scheduled = due;
    flights[i].future = service.Submit(std::move(request));
    std::lock_guard<std::mutex> lock(mu);
    launched = i + 1;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    dispatch_done = true;
  }
  if (reloader.joinable()) reloader.join();
  harvester.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  // The set of versions that were ever published: 1..1+reloads.
  const uint64_t max_version = 1 + reloads_done;

  OpenLoopResult result;
  result.offered = flights.size();
  result.wall_ms = wall_ms;
  result.reloads = reloads_done;
  std::vector<double> ok_latencies;
  size_t within_slo = 0;
  for (const Flight& flight : flights) {
    const SelectionResponse& response = flight.response;
    if (response.status.ok()) {
      ++result.ok;
      ok_latencies.push_back(flight.latency_ms);
      if (flight.latency_ms <= kSloMs) ++within_slo;
      result.versions.insert(response.artifact_version);
      if (response.artifact_version < 1 ||
          response.artifact_version > max_version) {
        ++result.out_of_band_versions;
      }
    } else if (response.status.IsUnavailable()) {
      ++result.rejected;
    } else {
      ++result.failed;
    }
  }
  result.p50_ms = stats::Percentile(ok_latencies, 50.0);
  result.p99_ms = stats::Percentile(ok_latencies, 99.0);
  result.slo_attainment =
      result.offered == 0
          ? 0.0
          : static_cast<double>(within_slo) / result.offered;
  result.reject_rate =
      result.offered == 0
          ? 0.0
          : static_cast<double>(result.rejected) / result.offered;
  return result;
}

void Report() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int build_threads = std::max(1, hw - 1);
  BenchTelemetry telemetry("serve_open_loop");

  std::cout << "=== Serving under open-loop (Poisson) load ===\n"
            << "workers=" << kWorkers << " queue=" << kQueue
            << " slo=" << kSloMs << "ms, NLP targets round-robin\n\n";

  ServiceArtifacts artifacts = ExitIfError(
      ServiceArtifacts::Build(TaskDomain::kNLP, build_threads), "artifacts");
  const std::vector<const Dataset*> targets =
      artifacts.registry.Targets(TaskDomain::kNLP);

  // The hot-swap variant re-clusters the same performance matrix into a
  // fixed number of clusters — valid artifacts, observably different
  // recall structure.
  ServiceArtifacts variant = artifacts;
  ModelClusteringOptions variant_options;
  variant_options.num_clusters = 3;
  variant.clustering = ExitIfError(
      ClusterModels(variant.matrix, variant.zoo, variant_options),
      "variant clustering");
  std::vector<ServiceArtifacts> variants;
  variants.push_back(std::move(variant));
  variants.push_back(artifacts);  // Swap back and forth.

  ServiceOptions options;
  options.worker_threads = kWorkers;
  options.max_queue = kQueue;
  auto service =
      ExitIfError(SelectionService::Create(artifacts, options), "service");

  const std::vector<PhaseSpec> phases = {
      // Comfortably sustainable: SLO attainment should be ~1, rejects 0.
      {"steady", 40.0, 3.0, {}},
      // Past saturation for one box: the queue fills, admission control
      // rejects the overflow, and p99-from-schedule shows the backlog.
      {"overload", 400.0, 1.5, {}},
      // Sustainable rate again, now with artifact hot swaps mid-stream.
      {"swap_under_load", 40.0, 4.0, {0.25, 0.5, 0.75}},
  };

  TablePrinter table({"phase", "offered qps", "answered", "rejected",
                      "failed", "p50 ms", "p99 ms", "SLO att.",
                      "versions"});
  for (const PhaseSpec& spec : phases) {
    const OpenLoopResult r = RunOpenLoop(*service, targets, spec, variants);
    std::string versions;
    for (uint64_t v : r.versions) {
      versions += (versions.empty() ? "" : ",") + std::to_string(v);
    }
    table.AddRow({spec.name, strings::FormatDouble(spec.offered_qps, 0),
                  std::to_string(r.ok), std::to_string(r.rejected),
                  std::to_string(r.failed),
                  strings::FormatDouble(r.p50_ms, 3),
                  strings::FormatDouble(r.p99_ms, 3),
                  strings::Format("%.1f%%", 100.0 * r.slo_attainment),
                  versions});
    telemetry.RecordPhase("NLP/" + spec.name, r.wall_ms, 0.0, 0.0);
    const std::string prefix = "NLP/" + spec.name + "/";
    telemetry.RecordValue(prefix + "offered_qps", spec.offered_qps);
    telemetry.RecordValue(prefix + "offered", static_cast<double>(r.offered));
    telemetry.RecordValue(prefix + "ok", static_cast<double>(r.ok));
    telemetry.RecordValue(prefix + "rejected",
                          static_cast<double>(r.rejected));
    telemetry.RecordValue(prefix + "failed", static_cast<double>(r.failed));
    telemetry.RecordValue(prefix + "p50_ms", r.p50_ms);
    telemetry.RecordValue(prefix + "p99_ms", r.p99_ms);
    telemetry.RecordValue(prefix + "slo_attainment", r.slo_attainment);
    telemetry.RecordValue(prefix + "reject_rate", r.reject_rate);
    if (spec.name == "swap_under_load") {
      // The zero-downtime claim, as numbers a regression script can pin:
      // nothing dropped (offered == ok + rejected), nothing failed, no
      // response tagged outside the published version set, and the swap
      // really happened mid-load (>= 2 versions observed).
      const size_t dropped = r.offered - r.ok - r.rejected - r.failed;
      telemetry.RecordValue(prefix + "reloads",
                            static_cast<double>(r.reloads));
      telemetry.RecordValue(prefix + "distinct_versions",
                            static_cast<double>(r.versions.size()));
      telemetry.RecordValue(prefix + "dropped",
                            static_cast<double>(dropped));
      telemetry.RecordValue(prefix + "out_of_band_versions",
                            static_cast<double>(r.out_of_band_versions));
      std::cout << "swap_under_load: " << r.reloads << " reloads, "
                << r.versions.size() << " distinct versions, " << dropped
                << " dropped, " << r.failed << " failed, "
                << r.out_of_band_versions << " out-of-band versions\n\n";
    }
  }
  table.Print(std::cout);

  const serve::ServiceStats stats = service->Stats();
  std::cout << "\nfinal artifact version: " << stats.artifact_version
            << " after " << stats.reloads << " reloads\n";
  telemetry.RecordValue("NLP/final_artifact_version",
                        static_cast<double>(stats.artifact_version));
  telemetry.WriteFileOrWarn();
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report();
  return 0;
}
