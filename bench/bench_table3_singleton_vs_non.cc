// Reproduces Table III: average benchmark accuracy of models in
// non-singleton vs singleton clusters, and how many per-benchmark best
// models each group contributes. The paper: non-singleton models are both
// better on average (0.67 vs 0.61 NLP; 0.84 vs 0.73 CV) and contribute
// nearly all per-dataset maxima — the justification for scoring only
// non-singleton representatives in coarse-recall.

#include <iostream>

#include "bench/harness.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title, TablePrinter& table) {
  World world = ExitIfError(BuildWorld(domain), "build world");

  std::vector<double> non_singleton_acc;
  std::vector<double> singleton_acc;
  for (size_t m = 0; m < world.zoo->size(); ++m) {
    const double acc = world.matrix->ModelAverageAccuracy(m);
    if (world.clustering->IsSingletonModel(m)) {
      singleton_acc.push_back(acc);
    } else {
      non_singleton_acc.push_back(acc);
    }
  }

  size_t non_singleton_best = 0;
  size_t singleton_best = 0;
  for (size_t d = 0; d < world.matrix->num_datasets(); ++d) {
    const size_t best = stats::ArgMax(world.matrix->accuracy().Row(d));
    if (world.clustering->IsSingletonModel(best)) {
      ++singleton_best;
    } else {
      ++non_singleton_best;
    }
  }

  table.AddRow({title, "non-singleton",
                strings::FormatDouble(stats::Mean(non_singleton_acc), 2),
                std::to_string(non_singleton_best)});
  table.AddRow({title, "singleton",
                strings::FormatDouble(stats::Mean(singleton_acc), 2),
                std::to_string(singleton_best)});
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  using namespace tps;
  using namespace tps::bench;
  std::cout << "=== Table III: singleton vs non-singleton cluster "
               "performance ===\n";
  TablePrinter table(
      {"task type", "cluster type", "avg(acc)", "no. maximum(acc)"});
  Report(TaskDomain::kNLP, "NLP", table);
  Report(TaskDomain::kCV, "CV", table);
  table.Print(std::cout);
  return 0;
}
