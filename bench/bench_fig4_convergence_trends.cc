// Reproduces Fig. 4: one model's validation/test performance across all
// benchmark datasets groups into a handful of convergence trends. The
// paper shows the DoyyingFace BERT variant's curves on 30 datasets forming
// ~4 groups; we mine trends for the same model (NLP) and print each trend's
// member datasets and summary statistics.

#include <iostream>

#include "bench/harness.h"
#include "core/convergence_trend.h"
#include "util/string_util.h"

namespace tps {
namespace bench {
namespace {

constexpr char kModelName[] =
    "DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4";

void Report() {
  World world = ExitIfError(BuildWorld(TaskDomain::kNLP), "build world");
  const size_t model_index =
      ExitIfError(world.zoo->IndexOf(kModelName), "find model");

  std::cout << "=== Fig. 4: convergence trends of " << kModelName
            << " on " << world.matrix->num_datasets()
            << " benchmark datasets ===\n";
  ConvergenceTrendMiner miner(world.matrix.get());
  for (int stage = 0; stage < 2; ++stage) {
    const std::vector<ConvergenceTrend> trends = ExitIfError(
        miner.MineTrends(model_index, stage), "mine trends");
    std::cout << "stage " << stage + 1 << " (validation after epoch "
              << stage + 1 << "): " << trends.size() << " trends\n";
    for (size_t x = 0; x < trends.size(); ++x) {
      std::cout << strings::Format(
          "  trend %zu: mean val %.3f -> mean final test %.3f, datasets:",
          x, trends[x].mean_val, trends[x].mean_final_test);
      for (size_t d : trends[x].dataset_indices) {
        std::cout << " " << world.matrix->dataset_names()[d];
      }
      std::cout << "\n";
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report();
  return 0;
}
