// Reproduces Fig. 7: final accuracy of the model selected by successive
// halving (SH) vs fine-selection (FS), starting from the 10 coarse-recalled
// models and from the full zoo (40 NLP / 30 CV), on all eight targets; the
// best and worst true accuracies within the recalled top-10 bound the
// range. The paper: FS always picks the optimal or near-optimal model; SH
// sometimes does not.

#include <iostream>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/evaluation.h"
#include "core/fine_selection.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();
  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  ConvergenceTrendMiner miner(world.matrix.get());
  SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get());
  FineSelectionSelector fs(world.zoo.get(), world.simulator.get(), &miner);

  std::vector<size_t> all_models(world.zoo->size());
  for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

  std::cout << "=== Fig. 7: selected-model accuracy, SH vs FS (" << title
            << ") ===\n";
  TablePrinter table({"target", "SH@10", "FS@10", "SH@all", "FS@all",
                      "best@10", "worst@10"});
  for (const Dataset* target : world.Targets()) {
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), nullptr),
        "recall " + target->name());
    const std::vector<size_t> top10 = rr.TopModels(10);
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator, hp),
        "truth " + target->name());

    double best10 = 0.0, worst10 = 1.0;
    for (size_t index : top10) {
      best10 = std::max(best10, truth[index]);
      worst10 = std::min(worst10, truth[index]);
    }

    const SelectionOutcome sh10 = ExitIfError(
        sh.Select(top10, *target, hp, nullptr), "sh10");
    const SelectionOutcome fs10 = ExitIfError(
        fs.Select(top10, *target, hp, nullptr), "fs10");
    const SelectionOutcome sh_all = ExitIfError(
        sh.Select(all_models, *target, hp, nullptr), "sh-all");
    const SelectionOutcome fs_all = ExitIfError(
        fs.Select(all_models, *target, hp, nullptr), "fs-all");

    table.AddRow({target->name(),
                  strings::FormatDouble(sh10.selected_accuracy, 3),
                  strings::FormatDouble(fs10.selected_accuracy, 3),
                  strings::FormatDouble(sh_all.selected_accuracy, 3),
                  strings::FormatDouble(fs_all.selected_accuracy, 3),
                  strings::FormatDouble(best10, 3),
                  strings::FormatDouble(worst10, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
