// Reproduces Fig. 1: the sorted fine-tuning accuracy of every repository
// model on one NLP target (MNLI) and one CV benchmark task (the CUB birds
// dataset standing in for CC6204-Hackaton-Cub). The paper's point: a few
// models are strong, most are poor, so exhaustive fine-tuning wastes most
// of its budget.

#include <iostream>

#include "bench/harness.h"
#include "core/evaluation.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* dataset_name) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Dataset* target = ExitIfError(
      world.registry->Find(dataset_name), "find dataset");
  const std::vector<double> truth = ExitIfError(
      TrueFinalAccuracies(*world.zoo, *target, *world.simulator,
                          world.DefaultHp()),
      "truth");

  std::cout << "=== Fig. 1: accuracy distribution on " << dataset_name
            << " (" << world.zoo->size() << " models) ===\n";
  const std::vector<size_t> order = stats::ArgSortDescending(truth);
  std::cout << "rank accuracy bar\n";
  for (size_t r = 0; r < order.size(); ++r) {
    const double acc = truth[order[r]];
    const int bars = static_cast<int>(acc * 50);
    std::cout << strings::Format("%3zu  %.3f    ", r, acc)
              << std::string(static_cast<size_t>(bars), '#') << "\n";
  }
  const double top_decile_mean =
      stats::Mean({truth[order[0]], truth[order[1]], truth[order[2]]});
  std::cout << strings::Format(
      "top-3 mean %.3f, median %.3f, min %.3f  (few strong, long tail)\n\n",
      top_decile_mean, stats::Median(truth), stats::Min(truth));
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "mnli");
  tps::bench::Report(tps::TaskDomain::kCV, "cub_birds");
  return 0;
}
