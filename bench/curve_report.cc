#include "bench/curve_report.h"

#include <iostream>

#include "core/coarse_recall.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {

void PrintTopModelCurves(const char* target_name, double learning_rate) {
  World world = ExitIfError(BuildWorld(TaskDomain::kNLP), "build world");
  const Dataset* target =
      ExitIfError(world.registry->Find(target_name), "find target");

  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  RecallResult rr = ExitIfError(
      recall.Recall(*target, RecallOptions(), nullptr), "recall");
  const std::vector<size_t> top10 = rr.TopModels(10);

  Hyperparams hp = world.DefaultHp();
  hp.learning_rate = learning_rate;

  std::cout << "Top-10 recalled models on " << target_name
            << ", learning rate " << strings::Format("%g", learning_rate)
            << " (" << hp.epochs << " epochs)\n";
  std::vector<std::string> header = {"model", "final test"};
  for (int e = 1; e <= hp.epochs; ++e) {
    header.push_back("val@" + std::to_string(e));
  }
  TablePrinter table(header);

  std::vector<double> first_epoch_val;
  std::vector<double> final_test;
  for (size_t index : top10) {
    const TrainingRun run = ExitIfError(
        world.simulator->Run(world.zoo->model(index), *target, hp), "run");
    std::vector<std::string> row = {
        world.zoo->model(index).name(),
        strings::FormatDouble(run.final_test(), 3)};
    for (double v : run.val_accuracy) {
      row.push_back(strings::FormatDouble(v, 3));
    }
    table.AddRow(row);
    first_epoch_val.push_back(run.val_accuracy.front());
    final_test.push_back(run.final_test());
  }
  table.Print(std::cout);
  std::cout << "Spearman(val@1, final test) = "
            << strings::FormatDouble(
                   stats::SpearmanCorrelation(first_epoch_val, final_test),
                   3)
            << "  (early validation predicts final outcome)\n\n";
}

}  // namespace bench
}  // namespace tps
