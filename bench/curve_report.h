#ifndef TPS_BENCH_CURVE_REPORT_H_
#define TPS_BENCH_CURVE_REPORT_H_

#include "bench/harness.h"
#include "sim/hyperparams.h"

namespace tps {
namespace bench {

/// Shared by the Fig. 3 / Fig. 8 harnesses: prints the per-epoch validation
/// and test curves of the top-10 coarse-recalled models on one NLP target
/// at the given learning rate, plus the val/test rank agreement the paper's
/// early-stopping argument rests on.
void PrintTopModelCurves(const char* target_name, double learning_rate);

}  // namespace bench
}  // namespace tps

#endif  // TPS_BENCH_CURVE_REPORT_H_
