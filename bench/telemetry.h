#ifndef TPS_BENCH_TELEMETRY_H_
#define TPS_BENCH_TELEMETRY_H_

#include <string>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace tps {
namespace bench {

/// Machine-readable telemetry for one bench binary run.
///
/// Every `bench_*` harness prints human-readable tables; this sidecar
/// captures the numbers a plotting / regression script wants, as one JSON
/// file per binary. Schema (v1, stable — extend by adding keys, never by
/// renaming):
///
///   {
///     "bench": "table6_end_to_end",
///     "schema_version": 1,
///     "phases": [
///       {"name": "NLP/mnli/recall", "wall_ms": 1.9,
///        "training_epochs": 0, "inference_epochs": 3.5},
///       ...
///     ],
///     "values": {"NLP/mnli/bf_epochs": 200, ...}
///   }
///
/// `phases` is ordered as recorded (one entry per measured pipeline phase:
/// wall time plus the epoch costs charged during it); `values` holds
/// free-form scalar results keyed "<domain>/<target>/<metric>".
///
/// The file is written as `BENCH_<name>.json` into the directory named by
/// the TPS_BENCH_TELEMETRY_DIR environment variable, or the working
/// directory when unset. Telemetry never changes a benchmark's measured
/// results — it only records them.
class BenchTelemetry {
 public:
  explicit BenchTelemetry(std::string bench_name);

  /// Appends one phase entry (insertion order is preserved in the JSON).
  void RecordPhase(const std::string& name, double wall_ms,
                   double training_epochs, double inference_epochs);

  /// Records one scalar result (insertion order is preserved).
  void RecordValue(const std::string& key, double value);

  std::string ToJson(int indent = 2) const;

  /// `BENCH_<name>.json`.
  std::string FileName() const;

  /// Writes the JSON file (TPS_BENCH_TELEMETRY_DIR or cwd). Returns the
  /// path written.
  StatusOr<std::string> WriteFile() const;

  /// WriteFile, but a failure only warns on stderr — telemetry must never
  /// turn a successful benchmark run into a failing one. Prints the
  /// written path to stdout on success.
  void WriteFileOrWarn() const;

 private:
  struct Phase {
    std::string name;
    double wall_ms = 0.0;
    double training_epochs = 0.0;
    double inference_epochs = 0.0;
  };

  std::string bench_name_;
  std::vector<Phase> phases_;
  std::vector<std::pair<std::string, double>> values_;
};

}  // namespace bench
}  // namespace tps

#endif  // TPS_BENCH_TELEMETRY_H_
