// Reproduces Fig. 6: per-model evaluation of convergence-trend mining on
// the first validation results.
//  - Blue bars in the paper: silhouette of the stage-1 trend clustering vs
//    a random clustering of the same sizes (trend clustering should win).
//  - Red bars: relative error of predicting each benchmark dataset's final
//    test accuracy from its matched trend's mean, vs predicting with the
//    global mean of all benchmark test accuracies (trend prediction should
//    be more accurate).

#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "clustering/distance.h"
#include "clustering/silhouette.h"
#include "core/convergence_trend.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

constexpr int kStage = 0;  // First validation.
constexpr size_t kRandomDraws = 20;

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  ConvergenceTrendMiner miner(world.matrix.get());
  Rng rng(99);

  std::cout << "=== Fig. 6: trend clustering quality (" << title
            << ", first validation) ===\n";
  TablePrinter table({"model", "silhouette(trend)", "silhouette(random)",
                      "rel.err(trend)", "rel.err(global mean)"});

  std::vector<double> trend_sil_all, random_sil_all, trend_err_all,
      mean_err_all;
  const size_t num_datasets = world.matrix->num_datasets();
  for (size_t m = 0; m < world.zoo->size(); ++m) {
    const std::vector<ConvergenceTrend> trends =
        ExitIfError(miner.MineTrends(m, kStage), "mine");

    // Rebuild the flat clustering of datasets from the trend memberships.
    ClusteringResult clustering;
    clustering.assignments.assign(num_datasets, 0);
    clustering.num_clusters = static_cast<int>(trends.size());
    std::vector<double> stage_vals(num_datasets);
    for (size_t x = 0; x < trends.size(); ++x) {
      for (size_t d : trends[x].dataset_indices) {
        clustering.assignments[d] = static_cast<int>(x);
      }
    }
    for (size_t d = 0; d < num_datasets; ++d) {
      stage_vals[d] = world.matrix->ValAtStage(d, m, kStage);
    }
    std::vector<std::vector<double>> points;
    points.reserve(num_datasets);
    for (double v : stage_vals) points.push_back({v});
    const Matrix distances = ExitIfError(
        PairwiseDistances(points, DistanceMetric::kEuclidean), "distances");

    const double trend_sil =
        ExitIfError(SilhouetteScore(distances, clustering), "silhouette");
    double random_sil = 0.0;
    for (size_t draw = 0; draw < kRandomDraws; ++draw) {
      ClusteringResult shuffled = clustering;
      rng.Shuffle(shuffled.assignments);
      random_sil +=
          ExitIfError(SilhouetteScore(distances, shuffled), "silhouette");
    }
    random_sil /= static_cast<double>(kRandomDraws);

    // Prediction error: each benchmark dataset as pseudo-target.
    std::vector<double> final_tests(num_datasets);
    for (size_t d = 0; d < num_datasets; ++d) {
      final_tests[d] = world.matrix->run(d, m).final_test();
    }
    const double global_mean = stats::Mean(final_tests);
    double trend_err = 0.0, mean_err = 0.0;
    for (size_t d = 0; d < num_datasets; ++d) {
      const double actual = std::max(final_tests[d], 1e-9);
      const double pred =
          ConvergenceTrendMiner::PredictFinal(trends, stage_vals[d]);
      trend_err += std::fabs(pred - actual) / actual;
      mean_err += std::fabs(global_mean - actual) / actual;
    }
    trend_err /= static_cast<double>(num_datasets);
    mean_err /= static_cast<double>(num_datasets);

    table.AddRow({world.zoo->model(m).name(),
                  strings::FormatDouble(trend_sil, 3),
                  strings::FormatDouble(random_sil, 3),
                  strings::FormatDouble(trend_err, 3),
                  strings::FormatDouble(mean_err, 3)});
    trend_sil_all.push_back(trend_sil);
    random_sil_all.push_back(random_sil);
    trend_err_all.push_back(trend_err);
    mean_err_all.push_back(mean_err);
  }
  table.Print(std::cout);
  std::cout << strings::Format(
      "means: silhouette %.3f (trend) vs %.3f (random); rel. error %.3f "
      "(trend) vs %.3f (global mean)\n\n",
      stats::Mean(trend_sil_all), stats::Mean(random_sil_all),
      stats::Mean(trend_err_all), stats::Mean(mean_err_all));
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
