// Reproduces Fig. 5: mean true fine-tuning accuracy of the top-K models
// returned by coarse-recall vs random recall, for K in {5, 10, 15, 20}, on
// all eight target datasets. Also reports the smallest K whose recalled
// set contains the true best model (the paper reports 5-15).

#include <algorithm>
#include <iostream>

#include "bench/harness.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

constexpr size_t kRandomDraws = 50;

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());

  std::cout << "=== Fig. 5: recall quality (" << title << ") ===\n";
  TablePrinter table({"target", "K", "coarse-recall", "random-recall",
                      "best model contained", "regret@K"});
  Rng rng(2024);
  for (const Dataset* target : world.Targets()) {
    RecallResult result = ExitIfError(
        recall.Recall(*target, RecallOptions(), /*budget=*/nullptr),
        "recall " + target->name());
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator,
                            world.DefaultHp()),
        "truth " + target->name());
    const size_t best_model = BestModel(truth);
    const size_t best_rank = result.RankOf(best_model);

    for (size_t k : {5, 10, 15, 20}) {
      const double recalled_mean = MeanAt(truth, result.TopModels(k));
      double random_mean = 0.0;
      for (size_t draw = 0; draw < kRandomDraws; ++draw) {
        random_mean += MeanAt(
            truth, rng.SampleWithoutReplacement(world.zoo->size(), k));
      }
      random_mean /= static_cast<double>(kRandomDraws);
      // Regret: gap between the global best model and the best model the
      // recall set actually contains.
      double best_recalled = 0.0;
      for (size_t index : result.TopModels(k)) {
        best_recalled = std::max(best_recalled, truth[index]);
      }
      table.AddRow({target->name(), std::to_string(k),
                    strings::FormatDouble(recalled_mean, 3),
                    strings::FormatDouble(random_mean, 3),
                    best_rank < k ? "yes" : "no",
                    strings::FormatDouble(truth[best_model] - best_recalled,
                                          3)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP targets");
  tps::bench::Report(tps::TaskDomain::kCV, "CV targets");
  return 0;
}
