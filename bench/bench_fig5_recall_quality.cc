// Reproduces Fig. 5: mean true fine-tuning accuracy of the top-K models
// returned by coarse-recall vs random recall, for K in {5, 10, 15, 20}, on
// all eight target datasets. Also reports the smallest K whose recalled
// set contains the true best model (the paper reports 5-15).
//
// Extended with a head-to-head of the three RecallBackend implementations
// (representative / embedding / hybrid): recall@K against the true top-K
// for K in {5, 10, 15, 20} plus per-request recall latency. The numbers
// land in the BENCH_fig5_recall_quality.json telemetry sidecar (see
// bench/telemetry.h), keyed "<domain>/<target>/<backend>/recall@<K>" and
// "<domain>/<backend>/mean_*". Acceptance: the embedding backend's mean
// recall@10 must be >= 0.90x the representative backend's at lower mean
// per-request latency.

#include <algorithm>
#include <iostream>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "index/ivf_index.h"
#include "recall/embed_trainer.h"
#include "recall/recall_backend.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tps {
namespace bench {
namespace {

constexpr size_t kRandomDraws = 50;
constexpr size_t kLatencyReps = 10;
const size_t kRecallKs[] = {5, 10, 15, 20};

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());

  std::cout << "=== Fig. 5: recall quality (" << title << ") ===\n";
  TablePrinter table({"target", "K", "coarse-recall", "random-recall",
                      "best model contained", "regret@K"});
  Rng rng(2024);
  for (const Dataset* target : world.Targets()) {
    RecallResult result = ExitIfError(
        recall.Recall(*target, RecallOptions(), /*budget=*/nullptr),
        "recall " + target->name());
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator,
                            world.DefaultHp()),
        "truth " + target->name());
    const size_t best_model = BestModel(truth);
    const size_t best_rank = result.RankOf(best_model);

    for (size_t k : kRecallKs) {
      const double recalled_mean = MeanAt(truth, result.TopModels(k));
      double random_mean = 0.0;
      for (size_t draw = 0; draw < kRandomDraws; ++draw) {
        random_mean += MeanAt(
            truth, rng.SampleWithoutReplacement(world.zoo->size(), k));
      }
      random_mean /= static_cast<double>(kRandomDraws);
      // Regret: gap between the global best model and the best model the
      // recall set actually contains.
      double best_recalled = 0.0;
      for (size_t index : result.TopModels(k)) {
        best_recalled = std::max(best_recalled, truth[index]);
      }
      table.AddRow({target->name(), std::to_string(k),
                    strings::FormatDouble(recalled_mean, 3),
                    strings::FormatDouble(random_mean, 3),
                    best_rank < k ? "yes" : "no",
                    strings::FormatDouble(truth[best_model] - best_recalled,
                                          3)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// Indices of the K largest truth accuracies, ties broken toward the lower
/// model index (matches the recall rankings' own tie convention).
std::vector<size_t> TruthTopK(const std::vector<double>& truth, size_t k) {
  std::vector<size_t> order(truth.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&truth](size_t a, size_t b) {
                     return truth[a] > truth[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

/// |top-K(ranking) intersect top-K(truth)| / K.
double RecallAtK(const RecallResult& result,
                 const std::vector<double>& truth, size_t k) {
  const std::vector<size_t> truth_top = TruthTopK(truth, k);
  const std::vector<size_t> recalled = result.TopModels(k);
  size_t hits = 0;
  for (size_t model : recalled) {
    if (std::find(truth_top.begin(), truth_top.end(), model) !=
        truth_top.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

void ReportBackends(TaskDomain domain, const char* title,
                    BenchTelemetry* telemetry) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const std::string prefix = domain == TaskDomain::kNLP ? "NLP" : "CV";

  // Offline step the embedding/hybrid backends depend on: train the
  // two-tower embeddings from the performance matrix and index them.
  WallTimer train_timer;
  recall::EmbedTrainingResult trained = ExitIfError(
      recall::TrainRecallEmbeddings(*world.matrix, world.Benchmarks(),
                                    recall::EmbeddingConfig()),
      "train embeddings");
  const double train_ms = train_timer.ElapsedMillis();
  IvfIndex embedding_index = ExitIfError(
      IvfIndex::Build(trained.embeddings.model_embeddings(),
                      trained.embeddings.prior(), IvfIndexOptions()),
      "build embedding index");
  telemetry->RecordPhase(prefix + "/train_embeddings", train_ms, 0.0, 0.0);

  recall::RecallBackendContext context;
  context.zoo = world.zoo.get();
  context.matrix = world.matrix.get();
  context.clustering = world.clustering.get();
  context.embeddings = &trained.embeddings;
  context.embedding_index = &embedding_index;
  const recall::RecallBackendSet backends(context);

  std::cout << "=== Recall backends head-to-head (" << title << ") ===\n";
  TablePrinter table({"target", "backend", "recall@5", "recall@10",
                      "recall@15", "recall@20", "latency (ms)"});
  // backend -> accumulated mean recall@10 / latency across targets.
  std::map<std::string, double> sum_recall10;
  std::map<std::string, double> sum_latency;
  size_t num_targets = 0;

  for (const Dataset* target : world.Targets()) {
    const std::vector<double> truth = ExitIfError(
        TrueFinalAccuracies(*world.zoo, *target, *world.simulator,
                            world.DefaultHp()),
        "truth " + target->name());
    ++num_targets;
    for (const std::string& name : backends.available()) {
      const recall::RecallBackend* backend =
          ExitIfError(backends.Find(name), "find backend " + name);
      const RecallResult result = ExitIfError(
          backend->Recall(*target, RecallOptions(), /*budget=*/nullptr),
          name + " recall " + target->name());

      // Latency: warmed-up mean over kLatencyReps fresh requests.
      WallTimer timer;
      for (size_t rep = 0; rep < kLatencyReps; ++rep) {
        ExitIfError(backend->Recall(*target, RecallOptions(),
                                    /*budget=*/nullptr),
                    name + " recall (timed)");
      }
      const double latency_ms =
          timer.ElapsedMillis() / static_cast<double>(kLatencyReps);

      std::vector<std::string> row = {target->name(), name};
      for (size_t k : kRecallKs) {
        const double recall_at_k = RecallAtK(result, truth, k);
        row.push_back(strings::FormatDouble(recall_at_k, 3));
        telemetry->RecordValue(prefix + "/" + target->name() + "/" + name +
                                   "/recall@" + std::to_string(k),
                               recall_at_k);
        if (k == 10) sum_recall10[name] += recall_at_k;
      }
      row.push_back(strings::FormatDouble(latency_ms, 3));
      table.AddRow(row);
      telemetry->RecordValue(
          prefix + "/" + target->name() + "/" + name + "/latency_ms",
          latency_ms);
      sum_latency[name] += latency_ms;
    }
    table.AddSeparator();
  }
  table.Print(std::cout);

  // Aggregates + the acceptance gate: embedding recall@10 within 0.90x of
  // representative, at lower per-request latency.
  const double n = static_cast<double>(num_targets);
  for (const std::string& name : backends.available()) {
    telemetry->RecordValue(prefix + "/" + name + "/mean_recall@10",
                           sum_recall10[name] / n);
    telemetry->RecordValue(prefix + "/" + name + "/mean_latency_ms",
                           sum_latency[name] / n);
  }
  const double rep_recall = sum_recall10["representative"] / n;
  const double emb_recall = sum_recall10["embedding"] / n;
  const double recall_ratio =
      rep_recall > 0.0 ? emb_recall / rep_recall : 1.0;
  const bool accept_recall = recall_ratio >= 0.90;
  const bool accept_latency =
      sum_latency["embedding"] < sum_latency["representative"];
  telemetry->RecordValue(prefix + "/embedding_vs_representative_recall10",
                         recall_ratio);
  telemetry->RecordValue(prefix + "/accept_embedding_recall",
                         accept_recall ? 1.0 : 0.0);
  telemetry->RecordValue(prefix + "/accept_embedding_latency",
                         accept_latency ? 1.0 : 0.0);
  std::cout << "acceptance (" << prefix
            << "): embedding recall@10 >= 0.90x representative: "
            << (accept_recall ? "PASS" : "FAIL") << " (ratio "
            << strings::FormatDouble(recall_ratio, 3)
            << "), embedding latency < representative: "
            << (accept_latency ? "PASS" : "FAIL") << "\n\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::BenchTelemetry telemetry("fig5_recall_quality");
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP targets");
  tps::bench::Report(tps::TaskDomain::kCV, "CV targets");
  tps::bench::ReportBackends(tps::TaskDomain::kNLP, "NLP targets",
                             &telemetry);
  tps::bench::ReportBackends(tps::TaskDomain::kCV, "CV targets",
                             &telemetry);
  telemetry.WriteFileOrWarn();
  return 0;
}
