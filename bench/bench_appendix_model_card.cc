// Reproduces Appendix E (Fig. 9): the model card of a repository model —
// the text artifact the Table I text-based-similarity baseline embeds.
// Prints the cards of one fine-tuned and one base checkpoint from each
// domain.

#include <iostream>

#include "model/model_card.h"
#include "model/paper_zoo.h"
#include "model/zoo.h"
#include "util/logging.h"

namespace tps {
namespace {

void PrintCard(const ModelZoo& zoo, const char* name) {
  auto model = zoo.Find(name);
  TPS_CHECK_OK(model.status());
  std::cout << "---- model card: " << name << " ----\n"
            << GenerateModelCard((*model)->spec()) << "\n";
}

}  // namespace
}  // namespace tps

int main() {
  using namespace tps;
  auto nlp = ModelZoo::Create(NlpPaperZooSpecs());
  TPS_CHECK_OK(nlp.status());
  PrintCard(*nlp, "ishan/bert-base-uncased-mnli");
  PrintCard(*nlp, "roberta-base");
  auto cv = ModelZoo::Create(CvPaperZooSpecs());
  TPS_CHECK_OK(cv.status());
  PrintCard(*cv, "microsoft/beit-base-patch16-224");
  return 0;
}
