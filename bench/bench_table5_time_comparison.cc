// Reproduces Table V: total training epochs and speedup vs brute force for
// successive halving (SH) and fine-selection (FS), at two candidate-set
// sizes: the 10 coarse-recalled models and the whole zoo (40 NLP / 30 CV).
// The paper reports SH ~2.2-2.6x and FS ~2.4-4.6x over brute force.
//
// With --parallel-timing [--threads=N] the harness additionally measures
// wall-clock time of the full online two-phase pipeline serial vs on a
// shared N-thread pool (default: hardware concurrency) and verifies the
// parallel run selects the same model — the epoch tables above are the
// paper's cost unit; this section shows the real-time speedup the shared
// pool buys on this machine.

// Alongside the printed tables, machine-readable telemetry is written to
// BENCH_table5_time_comparison.json (see bench/telemetry.h): one phase per
// (target, method, candidate-set) cell with its wall time and training
// epochs, plus a recall phase per target with the proxy inference cost.

#include <algorithm>
#include <iostream>

#include "bench/harness.h"
#include "bench/telemetry.h"
#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "core/two_phase.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title,
            BenchTelemetry* telemetry) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();

  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  ConvergenceTrendMiner miner(world.matrix.get());
  SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get());
  FineSelectionSelector fs(world.zoo.get(), world.simulator.get(), &miner);
  BruteForceSelector bf(world.zoo.get(), world.simulator.get());

  std::vector<size_t> all_models(world.zoo->size());
  for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

  std::cout << "=== Table V: selection time (" << title << ", "
            << hp.epochs << " epochs/model, zoo size " << world.zoo->size()
            << ") ===\n";
  TablePrinter table({"target", "method", "epochs@10", "speedup@10",
                      "epochs@all", "speedup@all"});

  for (const Dataset* target : world.Targets()) {
    const std::string prefix = std::string(title) + "/" + target->name();
    WallTimer timer;
    EpochBudget recall_budget;
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), &recall_budget),
        "recall " + target->name());
    telemetry->RecordPhase(prefix + "/recall", timer.ElapsedMillis(), 0.0,
                           recall_budget.inference_epochs());
    const std::vector<size_t> top10 = rr.TopModels(10);

    struct MethodRow {
      const char* name;
      double epochs10;
      double epochs_all;
    };
    std::vector<MethodRow> rows;

    // Runs one (method, candidate-set) cell, recording its wall time and
    // training-epoch cost as a telemetry phase.
    const auto run_cell = [&](const auto& selector, const char* cell,
                              const std::vector<size_t>& candidates) {
      timer.Restart();
      const SelectionOutcome outcome = ExitIfError(
          selector.Select(candidates, *target, hp, nullptr),
          std::string(cell) + " " + target->name());
      telemetry->RecordPhase(prefix + "/" + cell, timer.ElapsedMillis(),
                             outcome.training_epochs, 0.0);
      return outcome;
    };

    const SelectionOutcome bf10 = run_cell(bf, "bf@10", top10);
    const SelectionOutcome bf_all = run_cell(bf, "bf@all", all_models);
    rows.push_back({"BF", bf10.training_epochs, bf_all.training_epochs});

    const SelectionOutcome sh10 = run_cell(sh, "sh@10", top10);
    const SelectionOutcome sh_all = run_cell(sh, "sh@all", all_models);
    rows.push_back({"SH", sh10.training_epochs, sh_all.training_epochs});

    const SelectionOutcome fs10 = run_cell(fs, "fs@10", top10);
    const SelectionOutcome fs_all = run_cell(fs, "fs@all", all_models);
    rows.push_back({"FS", fs10.training_epochs, fs_all.training_epochs});

    for (const MethodRow& row : rows) {
      table.AddRow(
          {target->name(), row.name,
           strings::FormatDouble(row.epochs10, 0),
           strings::Format("%.2fx", bf10.training_epochs / row.epochs10),
           strings::FormatDouble(row.epochs_all, 0),
           strings::Format("%.2fx",
                           bf_all.training_epochs / row.epochs_all)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void ReportWallClock(TaskDomain domain, const char* title, int num_threads,
                     int repeats) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();
  TwoPhaseSelector selector(world.zoo.get(), world.matrix.get(),
                            world.clustering.get(), world.simulator.get());
  ThreadPool pool(ThreadPool::ClampThreads(num_threads, world.zoo->size()));

  std::cout << "=== Serial vs parallel wall-clock (" << title << ", "
            << pool.num_threads() << " threads, best of " << repeats
            << ") ===\n";
  TablePrinter table(
      {"target", "serial ms", "parallel ms", "speedup", "same model"});
  for (const Dataset* target : world.Targets()) {
    double serial_ms = 0.0, parallel_ms = 0.0;
    TwoPhaseReport serial_report, parallel_report;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      serial_report = ExitIfError(
          selector.Select(*target, TwoPhaseOptions(), hp, nullptr),
          "serial select " + target->name());
      const double s = timer.ElapsedMillis();
      serial_ms = r == 0 ? s : std::min(serial_ms, s);
      timer.Restart();
      parallel_report = ExitIfError(
          selector.Select(*target, TwoPhaseOptions(), hp, &pool),
          "parallel select " + target->name());
      const double p = timer.ElapsedMillis();
      parallel_ms = r == 0 ? p : std::min(parallel_ms, p);
    }
    table.AddRow({target->name(), strings::Format("%.2f", serial_ms),
                  strings::Format("%.2f", parallel_ms),
                  strings::Format("%.2fx", serial_ms / parallel_ms),
                  serial_report.selection.selected_model ==
                          parallel_report.selection.selected_model
                      ? "yes"
                      : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main(int argc, char** argv) {
  auto flags = tps::FlagParser::Parse(argc, argv);
  tps::bench::ExitIfError(flags.status(), "parse flags");
  tps::bench::BenchTelemetry telemetry("table5_time_comparison");
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP", &telemetry);
  tps::bench::Report(tps::TaskDomain::kCV, "CV", &telemetry);
  telemetry.WriteFileOrWarn();
  if (*flags->GetBool("parallel-timing", false)) {
    const int threads = static_cast<int>(
        *flags->GetInt("threads", tps::ThreadPool::DefaultThreads()));
    const int repeats = static_cast<int>(*flags->GetInt("repeats", 3));
    tps::bench::ReportWallClock(tps::TaskDomain::kNLP, "NLP", threads,
                                repeats);
    tps::bench::ReportWallClock(tps::TaskDomain::kCV, "CV", threads, repeats);
  }
  return 0;
}
