// Reproduces Table V: total training epochs and speedup vs brute force for
// successive halving (SH) and fine-selection (FS), at two candidate-set
// sizes: the 10 coarse-recalled models and the whole zoo (40 NLP / 30 CV).
// The paper reports SH ~2.2-2.6x and FS ~2.4-4.6x over brute force.

#include <iostream>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tps {
namespace bench {
namespace {

void Report(TaskDomain domain, const char* title) {
  World world = ExitIfError(BuildWorld(domain), "build world");
  const Hyperparams hp = world.DefaultHp();

  CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                      world.clustering.get());
  ConvergenceTrendMiner miner(world.matrix.get());
  SuccessiveHalvingSelector sh(world.zoo.get(), world.simulator.get());
  FineSelectionSelector fs(world.zoo.get(), world.simulator.get(), &miner);
  BruteForceSelector bf(world.zoo.get(), world.simulator.get());

  std::vector<size_t> all_models(world.zoo->size());
  for (size_t i = 0; i < all_models.size(); ++i) all_models[i] = i;

  std::cout << "=== Table V: selection time (" << title << ", "
            << hp.epochs << " epochs/model, zoo size " << world.zoo->size()
            << ") ===\n";
  TablePrinter table({"target", "method", "epochs@10", "speedup@10",
                      "epochs@all", "speedup@all"});

  for (const Dataset* target : world.Targets()) {
    RecallResult rr = ExitIfError(
        recall.Recall(*target, RecallOptions(), nullptr),
        "recall " + target->name());
    const std::vector<size_t> top10 = rr.TopModels(10);

    struct MethodRow {
      const char* name;
      double epochs10;
      double epochs_all;
    };
    std::vector<MethodRow> rows;

    const SelectionOutcome bf10 = ExitIfError(
        bf.Select(top10, *target, hp, nullptr), "bf10 " + target->name());
    const SelectionOutcome bf_all = ExitIfError(
        bf.Select(all_models, *target, hp, nullptr),
        "bf-all " + target->name());
    rows.push_back({"BF", bf10.training_epochs, bf_all.training_epochs});

    const SelectionOutcome sh10 = ExitIfError(
        sh.Select(top10, *target, hp, nullptr), "sh10 " + target->name());
    const SelectionOutcome sh_all = ExitIfError(
        sh.Select(all_models, *target, hp, nullptr),
        "sh-all " + target->name());
    rows.push_back({"SH", sh10.training_epochs, sh_all.training_epochs});

    const SelectionOutcome fs10 = ExitIfError(
        fs.Select(top10, *target, hp, nullptr), "fs10 " + target->name());
    const SelectionOutcome fs_all = ExitIfError(
        fs.Select(all_models, *target, hp, nullptr),
        "fs-all " + target->name());
    rows.push_back({"FS", fs10.training_epochs, fs_all.training_epochs});

    for (const MethodRow& row : rows) {
      table.AddRow(
          {target->name(), row.name,
           strings::FormatDouble(row.epochs10, 0),
           strings::Format("%.2fx", bf10.training_epochs / row.epochs10),
           strings::FormatDouble(row.epochs_all, 0),
           strings::Format("%.2fx",
                           bf_all.training_epochs / row.epochs_all)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace tps

int main() {
  tps::bench::Report(tps::TaskDomain::kNLP, "NLP");
  tps::bench::Report(tps::TaskDomain::kCV, "CV");
  return 0;
}
