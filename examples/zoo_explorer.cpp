// Zoo explorer: inspects the simulated model zoo against a chosen target
// dataset — domain alignment, oracle accuracy, proxy scores — and prints
// the kind of per-model table a practitioner would use to sanity-check a
// repository before running selection.
//
// Usage: zoo_explorer [dataset-name]   (default: mnli)

#include <iostream>
#include <string>

#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "transfer/leep.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace tps;
  const std::string target_name = argc > 1 ? argv[1] : "mnli";

  auto registry_or = DatasetRegistry::CreatePaperInventory();
  TPS_CHECK_OK(registry_or.status());
  auto target_or = registry_or->Find(target_name);
  TPS_CHECK_OK(target_or.status());
  const Dataset& target = **target_or;

  auto zoo_or = ModelZoo::Create(target.spec().domain == TaskDomain::kNLP
                                     ? NlpPaperZooSpecs()
                                     : CvPaperZooSpecs());
  TPS_CHECK_OK(zoo_or.status());
  const ModelZoo& zoo = *zoo_or;

  FineTuneSimulator simulator;
  const TransferOracle& oracle = simulator.oracle();
  const Hyperparams hp = Hyperparams::DefaultsFor(target.spec().domain);
  auto truth_or = TrueFinalAccuracies(zoo, target, simulator, hp);
  TPS_CHECK_OK(truth_or.status());
  const std::vector<double>& truth = *truth_or;

  LeepScorer leep;
  std::vector<double> leep_scores(zoo.size());
  for (size_t m = 0; m < zoo.size(); ++m) {
    auto score_or = leep.Score(zoo.model(m), target);
    TPS_CHECK_OK(score_or.status());
    leep_scores[m] = *score_or;
  }

  std::cout << "Target: " << target.name() << " ("
            << target.spec().num_labels << " labels, chance="
            << strings::FormatDouble(target.spec().EffectiveChance(), 3)
            << ", ceiling="
            << strings::FormatDouble(target.spec().EffectiveCeiling(), 3)
            << ")\n\n";

  TablePrinter table({"model", "capability", "cosine", "acc(final)", "LEEP"});
  for (size_t rank_index : stats::ArgSortDescending(truth)) {
    const PretrainedModel& model = zoo.model(rank_index);
    const TransferTruth t = oracle.Evaluate(model, target);
    table.AddRow({model.name(), strings::FormatDouble(model.capability(), 3),
                  strings::FormatDouble(t.domain_cosine, 3),
                  strings::FormatDouble(truth[rank_index], 3),
                  strings::FormatDouble(leep_scores[rank_index], 3)});
  }
  table.Print(std::cout);

  std::cout << "\nSpearman(LEEP, final accuracy) = "
            << strings::FormatDouble(
                   stats::SpearmanCorrelation(leep_scores, truth), 3)
            << "\n";
  return 0;
}
