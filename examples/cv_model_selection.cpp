// CV scenario: pick a vision backbone for a medical-imaging task
// (chest-x-ray classification) from a 30-model repository of
// ViT/BEiT/DeiT/DINO/PoolFormer/DiNAT/VAN checkpoints — the paper's
// out-of-domain case: none of the repository models was pre-trained on
// medical data, yet selection must still find the backbone that transfers
// best. The example also compares all four proxy scorers in the recall
// phase (LEEP, NCE, LogME, kNN) — the paper's future-work direction of
// combining multiple light-weight proxies.
//
// Usage: cv_model_selection [target-name]   (default: chest_xray)

#include <iostream>
#include <string>

#include "core/evaluation.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace tps;
  const std::string target_name = argc > 1 ? argv[1] : "chest_xray";

  auto registry = DatasetRegistry::CreatePaperInventory();
  TPS_CHECK_OK(registry.status());
  auto zoo = ModelZoo::Create(CvPaperZooSpecs());
  TPS_CHECK_OK(zoo.status());
  FineTuneSimulator simulator;

  auto matrix = PerformanceMatrix::Build(
      *zoo, registry->Benchmarks(TaskDomain::kCV), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kCV));
  TPS_CHECK_OK(matrix.status());
  auto clustering = ClusterModels(*matrix, *zoo, ModelClusteringOptions());
  TPS_CHECK_OK(clustering.status());

  auto target = registry->Find(target_name);
  TPS_CHECK_OK(target.status());
  auto truth = TrueFinalAccuracies(*zoo, **target, simulator,
                                   Hyperparams::DefaultsFor(TaskDomain::kCV));
  TPS_CHECK_OK(truth.status());
  const size_t best = BestModel(*truth);

  std::cout << "Target " << target_name << ": true best backbone is "
            << zoo->model(best).name() << " at " << (*truth)[best] << "\n\n";

  // Compare the recall phase under each proxy scorer.
  std::cout << "Recall quality by proxy scorer (top-10 of "
            << zoo->size() << " models):\n";
  TablePrinter table({"proxy", "mean acc of recalled", "best-model rank",
                      "proxies computed"});
  CoarseRecall recall(&*zoo, &*matrix, &*clustering);
  for (const char* proxy : {"leep", "nce", "logme", "knn"}) {
    RecallOptions options;
    options.proxy = proxy;
    auto result = recall.Recall(**target, options, nullptr);
    TPS_CHECK_OK(result.status());
    table.AddRow({proxy,
                  strings::FormatDouble(
                      MeanAt(*truth, result->TopModels(10)), 3),
                  std::to_string(result->RankOf(best)),
                  std::to_string(result->proxies_computed)});
  }
  table.Print(std::cout);

  // Full two-phase run with the default (LEEP) configuration.
  TwoPhaseSelector selector(&*zoo, &*matrix, &*clustering, &simulator);
  auto report = selector.Select(**target, TwoPhaseOptions());
  TPS_CHECK_OK(report.status());
  std::cout << "\nTwo-phase pick: "
            << zoo->model(report->selection.selected_model).name()
            << "  accuracy " << report->selection.selected_accuracy
            << "  (vs best " << (*truth)[best] << ")"
            << "  cost " << report->budget.total_epochs()
            << " epoch-equivalents vs " << zoo->size() * 4
            << " for exhaustive search\n";
  return 0;
}
