// NLP scenario: a practitioner has a new text-classification task (BoolQ,
// yes/no question answering) and a 40-model repository. This example walks
// the full workflow the paper describes:
//   1. offline: build the performance matrix on 24 benchmark datasets and
//      cluster the repository (done once, reused for every future task);
//   2. persist the offline artifacts to disk and reload them (the "model
//      store" workflow);
//   3. online: coarse-recall 10 candidates with LEEP, then fine-select with
//      convergence-trend-accelerated successive halving;
//   4. sanity-check the pick against exhaustive search.
//
// Usage: nlp_model_selection [target-name]   (default: boolq)

#include <iostream>
#include <string>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace tps;
  const std::string target_name = argc > 1 ? argv[1] : "boolq";

  // --- Offline phase (amortized across all future tasks). ---
  auto registry = DatasetRegistry::CreatePaperInventory();
  TPS_CHECK_OK(registry.status());
  auto zoo = ModelZoo::Create(NlpPaperZooSpecs());
  TPS_CHECK_OK(zoo.status());
  FineTuneSimulator simulator;

  auto matrix = PerformanceMatrix::Build(
      *zoo, registry->Benchmarks(TaskDomain::kNLP), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  TPS_CHECK_OK(matrix.status());

  // Persist and reload — the performance matrix is the repository's stored
  // metadata, not a per-task computation.
  const std::string store_path = "/tmp/tps_nlp_performance_matrix.txt";
  TPS_CHECK_OK(matrix->SaveToFile(store_path));
  auto loaded = PerformanceMatrix::LoadFromFile(store_path);
  TPS_CHECK_OK(loaded.status());
  std::cout << "Offline store: " << loaded->num_models() << " models x "
            << loaded->num_datasets() << " benchmarks saved to "
            << store_path << "\n";

  auto clustering = ClusterModels(*loaded, *zoo, ModelClusteringOptions());
  TPS_CHECK_OK(clustering.status());
  std::cout << "Model clusters: " << clustering->clusters.num_clusters
            << " (" << clustering->NonSingletonClusters().size()
            << " non-singleton)\n\n";

  // --- Online phase for the new task. ---
  auto target = registry->Find(target_name);
  TPS_CHECK_OK(target.status());

  TwoPhaseSelector selector(&*zoo, &*loaded, &*clustering, &simulator);
  auto report = selector.Select(**target, TwoPhaseOptions());
  TPS_CHECK_OK(report.status());

  std::cout << "Recalled candidates for " << target_name
            << " (rank: model, recall score):\n";
  TablePrinter recalled({"rank", "model", "recall score", "prior acc"});
  for (size_t r = 0; r < 10 && r < report->recall.ranked.size(); ++r) {
    const RecallEntry& entry = report->recall.ranked[r];
    recalled.AddRow({std::to_string(r),
                     zoo->model(entry.model_index).name(),
                     strings::FormatDouble(entry.recall_score, 3),
                     strings::FormatDouble(entry.prior_accuracy, 3)});
  }
  recalled.Print(std::cout);

  std::cout << "\nFine-selection survivors per epoch:";
  for (size_t n : report->selection.survivors_per_stage) std::cout << " " << n;
  std::cout << "\nSelected: "
            << zoo->model(report->selection.selected_model).name()
            << "  accuracy " << report->selection.selected_accuracy
            << "  total cost " << report->budget.total_epochs()
            << " epoch-equivalents\n";

  // --- Sanity check against exhaustive search. ---
  auto truth = TrueFinalAccuracies(*zoo, **target, simulator,
                                   Hyperparams::DefaultsFor(TaskDomain::kNLP));
  TPS_CHECK_OK(truth.status());
  const size_t best = BestModel(*truth);
  std::cout << "Exhaustive-search best: " << zoo->model(best).name()
            << "  accuracy " << (*truth)[best] << "  (cost "
            << zoo->size() * 5 << " epochs)\n";
  return 0;
}
