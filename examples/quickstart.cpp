// Quickstart: select a pre-trained model for the MNLI target task with the
// two-phase framework, and compare against brute force and successive
// halving.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/logging.h"

int main() {
  using namespace tps;

  // 1. Materialize the paper's dataset inventory and NLP model zoo.
  auto registry_or = DatasetRegistry::CreatePaperInventory();
  TPS_CHECK_OK(registry_or.status());
  const DatasetRegistry& registry = *registry_or;
  auto zoo_or = ModelZoo::Create(NlpPaperZooSpecs());
  TPS_CHECK_OK(zoo_or.status());
  const ModelZoo& zoo = *zoo_or;
  std::cout << "Zoo: " << zoo.size() << " NLP models; registry: "
            << registry.size() << " datasets\n";

  // 2. Offline: build the performance matrix on the 24 NLP benchmarks and
  //    cluster the models (Eq. 1 similarity, hierarchical clustering).
  FineTuneSimulator simulator;
  const auto benchmarks = registry.Benchmarks(TaskDomain::kNLP);
  auto matrix_or = PerformanceMatrix::Build(
      zoo, benchmarks, simulator, Hyperparams::DefaultsFor(TaskDomain::kNLP));
  TPS_CHECK_OK(matrix_or.status());
  const PerformanceMatrix& matrix = *matrix_or;

  ModelClusteringOptions cluster_options;
  auto clustering_or = ClusterModels(matrix, zoo, cluster_options);
  TPS_CHECK_OK(clustering_or.status());
  const ModelClustering& clustering = *clustering_or;
  std::cout << "Clusters: " << clustering.clusters.num_clusters << " total, "
            << clustering.NonSingletonClusters().size()
            << " non-singleton\n\n";
  std::cout << FormatClusters(clustering, zoo, /*include_singletons=*/false)
            << "\n";

  // 3. Online: two-phase selection for the MNLI target.
  auto target_or = registry.Find("mnli");
  TPS_CHECK_OK(target_or.status());
  const Dataset& target = **target_or;

  TwoPhaseSelector selector(&zoo, &matrix, &clustering, &simulator);
  TwoPhaseOptions options;
  auto report_or = selector.Select(target, options);
  TPS_CHECK_OK(report_or.status());
  const TwoPhaseReport& report = *report_or;

  std::cout << "Two-phase pick: "
            << zoo.model(report.selection.selected_model).name()
            << "  acc=" << report.selection.selected_accuracy
            << "  cost=" << report.budget.total_epochs() << " epochs ("
            << report.budget.training_epochs() << " train + "
            << report.budget.inference_epochs() << " proxy)\n";

  // 4. Baselines on the full zoo for comparison.
  std::vector<size_t> all(zoo.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);

  BruteForceSelector brute(&zoo, &simulator);
  EpochBudget bf_budget;
  auto bf_or = brute.Select(all, target, hp, &bf_budget);
  TPS_CHECK_OK(bf_or.status());
  std::cout << "Brute force pick: " << zoo.model(bf_or->selected_model).name()
            << "  acc=" << bf_or->selected_accuracy
            << "  cost=" << bf_budget.total_epochs() << " epochs\n";

  SuccessiveHalvingSelector halving(&zoo, &simulator);
  EpochBudget sh_budget;
  auto sh_or = halving.Select(all, target, hp, &sh_budget);
  TPS_CHECK_OK(sh_or.status());
  std::cout << "Succ. halving pick: "
            << zoo.model(sh_or->selected_model).name()
            << "  acc=" << sh_or->selected_accuracy
            << "  cost=" << sh_budget.total_epochs() << " epochs\n";

  const double speedup_bf =
      bf_budget.total_epochs() / report.budget.total_epochs();
  const double speedup_sh =
      sh_budget.total_epochs() / report.budget.total_epochs();
  std::printf("\nSpeedup: %.2fx vs brute force, %.2fx vs halving\n",
              speedup_bf, speedup_sh);
  return 0;
}
