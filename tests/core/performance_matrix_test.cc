#include "core/performance_matrix.h"

#include <fstream>

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

/// Small fixture world: 4 models, 5 benchmark datasets.
class PerformanceMatrixTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::vector<ModelSpec> all_models = NlpPaperZooSpecs();
    const std::vector<ModelSpec> model_specs(all_models.begin(),
                                             all_models.begin() + 4);
    zoo_ = new ModelZoo(*ModelZoo::Create(model_specs));
    const std::vector<DatasetSpec> all_datasets = NlpBenchmarkSpecs();
    const std::vector<DatasetSpec> dataset_specs(all_datasets.begin(),
                                                 all_datasets.begin() + 5);
    registry_ = new DatasetRegistry(*DatasetRegistry::Create(dataset_specs));
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
};

ModelZoo* PerformanceMatrixTest::zoo_ = nullptr;
DatasetRegistry* PerformanceMatrixTest::registry_ = nullptr;
FineTuneSimulator* PerformanceMatrixTest::simulator_ = nullptr;
PerformanceMatrix* PerformanceMatrixTest::matrix_ = nullptr;

TEST_F(PerformanceMatrixTest, DimensionsAndNames) {
  EXPECT_EQ(matrix_->num_models(), 4u);
  EXPECT_EQ(matrix_->num_datasets(), 5u);
  EXPECT_EQ(matrix_->accuracy().rows(), 5u);
  EXPECT_EQ(matrix_->accuracy().cols(), 4u);
  EXPECT_EQ(matrix_->model_names()[0], zoo_->model(0).name());
  EXPECT_EQ(matrix_->dataset_names()[0], "cola");
}

TEST_F(PerformanceMatrixTest, AccuracyEqualsRunFinalTest) {
  for (size_t d = 0; d < matrix_->num_datasets(); ++d) {
    for (size_t m = 0; m < matrix_->num_models(); ++m) {
      EXPECT_DOUBLE_EQ(matrix_->accuracy().At(d, m),
                       matrix_->run(d, m).final_test());
    }
  }
}

TEST_F(PerformanceMatrixTest, ModelVectorIsColumn) {
  const std::vector<double> vec = matrix_->ModelVector(2);
  ASSERT_EQ(vec.size(), 5u);
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_DOUBLE_EQ(vec[d], matrix_->accuracy().At(d, 2));
  }
}

TEST_F(PerformanceMatrixTest, ModelAverageAccuracyIsColumnMean) {
  const std::vector<double> vec = matrix_->ModelVector(1);
  double sum = 0.0;
  for (double v : vec) sum += v;
  EXPECT_DOUBLE_EQ(matrix_->ModelAverageAccuracy(1), sum / 5.0);
}

TEST_F(PerformanceMatrixTest, ValAtStageClampsToCurveLength) {
  const TrainingRun& run = matrix_->run(0, 0);
  EXPECT_DOUBLE_EQ(matrix_->ValAtStage(0, 0, 0), run.val_accuracy.front());
  EXPECT_DOUBLE_EQ(matrix_->ValAtStage(0, 0, 100), run.val_accuracy.back());
  EXPECT_DOUBLE_EQ(matrix_->ValAtStage(0, 0, -5), run.val_accuracy.front());
}

TEST_F(PerformanceMatrixTest, MatchesDirectSimulation) {
  auto direct = *simulator_->Run(
      zoo_->model(3), **registry_->Find("qnli"),
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  // qnli is the third NLP benchmark spec (cola, mrpc, qnli, ...).
  EXPECT_EQ(matrix_->run(2, 3).val_accuracy, direct.val_accuracy);
}

TEST_F(PerformanceMatrixTest, SaveLoadRoundTrips) {
  const std::string path = testing::TempDir() + "/tps_perf_matrix.txt";
  ASSERT_TRUE(matrix_->SaveToFile(path).ok());
  auto loaded = PerformanceMatrix::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_models(), matrix_->num_models());
  EXPECT_EQ(loaded->num_datasets(), matrix_->num_datasets());
  EXPECT_EQ(loaded->model_names(), matrix_->model_names());
  EXPECT_EQ(loaded->dataset_names(), matrix_->dataset_names());
  EXPECT_TRUE(loaded->accuracy().ApproxEquals(matrix_->accuracy()));
  for (size_t d = 0; d < matrix_->num_datasets(); ++d) {
    for (size_t m = 0; m < matrix_->num_models(); ++m) {
      EXPECT_EQ(loaded->run(d, m).val_accuracy,
                matrix_->run(d, m).val_accuracy);
    }
  }
}

TEST_F(PerformanceMatrixTest, LoadRejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/tps_bad_matrix.txt";
  {
    std::ofstream out(path);
    out << "not a matrix header\n";
  }
  EXPECT_TRUE(PerformanceMatrix::LoadFromFile(path)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PerformanceMatrix::LoadFromFile("/no/such/file")
                  .status()
                  .IsIOError());
}

TEST_F(PerformanceMatrixTest, ParallelBuildIsBitIdenticalToSerial) {
  for (int threads : {1, 2, 4, 7}) {
    auto parallel = PerformanceMatrix::BuildParallel(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP), threads);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    EXPECT_TRUE(parallel->accuracy().ApproxEquals(matrix_->accuracy(), 0.0))
        << "threads=" << threads;
    for (size_t d = 0; d < matrix_->num_datasets(); ++d) {
      for (size_t m = 0; m < matrix_->num_models(); ++m) {
        ASSERT_EQ(parallel->run(d, m).val_accuracy,
                  matrix_->run(d, m).val_accuracy)
            << "threads=" << threads;
      }
    }
  }
}

TEST_F(PerformanceMatrixTest, ParallelBuildValidatesThreadCount) {
  EXPECT_TRUE(PerformanceMatrix::BuildParallel(
                  *zoo_, registry_->Benchmarks(TaskDomain::kNLP),
                  *simulator_, Hyperparams::DefaultsFor(TaskDomain::kNLP),
                  0)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PerformanceMatrixTest, ParallelBuildClampsThreadsToWorkItems) {
  // 64 requested workers against a 5x4 = 20-item grid: the pool is clamped
  // to the work-item count, and the result is still bit-identical to the
  // serial build rather than hanging or over-spawning.
  auto parallel = PerformanceMatrix::BuildParallel(
      *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
      Hyperparams::DefaultsFor(TaskDomain::kNLP), 64);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->Serialize(), matrix_->Serialize());
}

TEST_F(PerformanceMatrixTest, ParallelBuildSingleWorkItem) {
  // Degenerate 1x1 grid with more threads than items.
  auto tiny_zoo = *ModelZoo::Create({NlpPaperZooSpecs()[0]});
  DatasetRegistry tiny_registry =
      *DatasetRegistry::Create({NlpBenchmarkSpecs()[0]});
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto serial = PerformanceMatrix::Build(
      tiny_zoo, tiny_registry.Benchmarks(TaskDomain::kNLP), *simulator_, hp);
  auto parallel = PerformanceMatrix::BuildParallel(
      tiny_zoo, tiny_registry.Benchmarks(TaskDomain::kNLP), *simulator_, hp,
      16);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->Serialize(), serial->Serialize());
}

TEST(PerformanceMatrixBuildTest, ParallelBuildRejectsEmptyBenchmarks) {
  // The empty-input validation fires before any pool is created, for every
  // thread count — a 0-benchmark build must not spin up workers.
  auto zoo = *ModelZoo::Create({NlpPaperZooSpecs()[0]});
  FineTuneSimulator simulator;
  for (int threads : {1, 4, 64}) {
    EXPECT_TRUE(PerformanceMatrix::BuildParallel(zoo, {}, simulator,
                                                 Hyperparams(), threads)
                    .status()
                    .IsInvalidArgument())
        << "threads=" << threads;
  }
}

TEST(PerformanceMatrixBuildTest, RejectsEmptyInputs) {
  auto zoo = *ModelZoo::Create({});
  DatasetRegistry registry = *DatasetRegistry::Create(
      {NlpBenchmarkSpecs()[0]});
  FineTuneSimulator simulator;
  EXPECT_TRUE(PerformanceMatrix::Build(
                  zoo, registry.Benchmarks(TaskDomain::kNLP), simulator,
                  Hyperparams())
                  .status()
                  .IsInvalidArgument());

  auto zoo2 = *ModelZoo::Create(
      {NlpPaperZooSpecs()[0]});
  EXPECT_TRUE(PerformanceMatrix::Build(zoo2, {}, simulator, Hyperparams())
                  .status()
                  .IsInvalidArgument());
}

TEST(PerformanceMatrixBuildTest, RejectsDomainMismatch) {
  auto zoo = *ModelZoo::Create({NlpPaperZooSpecs()[0]});
  DatasetRegistry registry = *DatasetRegistry::Create({CvBenchmarkSpecs()[2]});
  FineTuneSimulator simulator;
  EXPECT_TRUE(PerformanceMatrix::Build(
                  zoo, registry.Benchmarks(TaskDomain::kCV), simulator,
                  Hyperparams::DefaultsFor(TaskDomain::kCV))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tps
