#include "core/hyperband.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/stats.h"

namespace tps {
namespace {

class HyperbandTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    target_ = *registry_->Find("mnli");
  }

  static std::vector<size_t> AllModels() {
    std::vector<size_t> all(zoo_->size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static const Dataset* target_;
};

ModelZoo* HyperbandTest::zoo_ = nullptr;
DatasetRegistry* HyperbandTest::registry_ = nullptr;
FineTuneSimulator* HyperbandTest::simulator_ = nullptr;
const Dataset* HyperbandTest::target_ = nullptr;

TEST_F(HyperbandTest, RunsExpectedBracketCount) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = hb.Select(AllModels(), *target_, hp, nullptr);
  ASSERT_TRUE(outcome.ok());
  // R = 5, eta = 2 -> s_max = 2 -> brackets s = 2, 1, 0.
  ASSERT_EQ(outcome->brackets.size(), 3u);
  EXPECT_EQ(outcome->brackets[0].s, 2);
  EXPECT_EQ(outcome->brackets[2].s, 0);
  // Broad bracket starts with more candidates and shorter initial runs.
  EXPECT_GT(outcome->brackets[0].initial_candidates,
            outcome->brackets[2].initial_candidates);
  EXPECT_LT(outcome->brackets[0].initial_epochs,
            outcome->brackets[2].initial_epochs);
}

TEST_F(HyperbandTest, BudgetAccountingMatchesBrackets) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  EpochBudget budget;
  auto outcome = *hb.Select(AllModels(), *target_, hp, &budget);
  double bracket_sum = 0.0;
  for (const HyperbandBracket& bracket : outcome.brackets) {
    bracket_sum += bracket.epochs;
  }
  EXPECT_GE(outcome.selection.training_epochs, bracket_sum);
  EXPECT_DOUBLE_EQ(budget.training_epochs(),
                   outcome.selection.training_epochs);
}

TEST_F(HyperbandTest, CheaperThanBruteForce) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *hb.Select(AllModels(), *target_, hp, nullptr);
  EXPECT_LT(outcome.selection.training_epochs,
            static_cast<double>(zoo_->size() * hp.epochs));
}

TEST_F(HyperbandTest, WinnerIsBestBracketWinner) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *hb.Select(AllModels(), *target_, hp, nullptr);
  double best_val = -1.0;
  size_t best_winner = 0;
  for (const HyperbandBracket& bracket : outcome.brackets) {
    if (bracket.winner_val > best_val) {
      best_val = bracket.winner_val;
      best_winner = bracket.winner;
    }
  }
  EXPECT_EQ(outcome.selection.selected_model, best_winner);
}

TEST_F(HyperbandTest, PicksCompetitiveModelFromRankedCandidates) {
  // Hyperband's broad bracket only examines the front of the candidate
  // list, so the documented contract is recall-style ranked input. Rank by
  // first-epoch validation (information any method may use).
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  std::vector<double> first_val(zoo_->size());
  for (size_t m = 0; m < zoo_->size(); ++m) {
    first_val[m] =
        simulator_->Run(zoo_->model(m), *target_, hp)->val_accuracy[0];
  }
  std::vector<size_t> ranked = stats::ArgSortDescending(first_val);

  HyperbandSelector hb(zoo_, simulator_);
  BruteForceSelector bf(zoo_, simulator_);
  auto hb_outcome = *hb.Select(ranked, *target_, hp, nullptr);
  auto bf_outcome = *bf.Select(AllModels(), *target_, hp, nullptr);
  EXPECT_GE(hb_outcome.selection.selected_accuracy,
            bf_outcome.selected_accuracy - 0.08);
}

TEST_F(HyperbandTest, SingleCandidate) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *hb.Select({5}, *target_, hp, nullptr);
  EXPECT_EQ(outcome.selection.selected_model, 5u);
  // The one model trains exactly once to the full budget.
  EXPECT_DOUBLE_EQ(outcome.selection.training_epochs,
                   static_cast<double>(hp.epochs));
}

TEST_F(HyperbandTest, InputValidation) {
  HyperbandSelector hb(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  EXPECT_TRUE(hb.Select({}, *target_, hp, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      hb.Select({999}, *target_, hp, nullptr).status().IsOutOfRange());
}

}  // namespace
}  // namespace tps
