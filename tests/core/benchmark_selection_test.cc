#include "core/benchmark_selection.h"

#include <set>

#include <gtest/gtest.h>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/rand_index.h"
#include "core/model_clusterer.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class BenchmarkSelectionTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    auto registry = *DatasetRegistry::CreatePaperInventory();
    FineTuneSimulator simulator;
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry.Benchmarks(TaskDomain::kNLP), simulator,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
  }

  static ModelZoo* zoo_;
  static PerformanceMatrix* matrix_;
};

ModelZoo* BenchmarkSelectionTest::zoo_ = nullptr;
PerformanceMatrix* BenchmarkSelectionTest::matrix_ = nullptr;

TEST_F(BenchmarkSelectionTest, SelectsRequestedDistinctSubset) {
  auto result = SelectCompactBenchmarks(*matrix_, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected.size(), 8u);
  std::set<size_t> unique(result->selected.begin(), result->selected.end());
  EXPECT_EQ(unique.size(), 8u);
  for (size_t d : result->selected) EXPECT_LT(d, matrix_->num_datasets());
}

TEST_F(BenchmarkSelectionTest, FullSubsetReachesPerfectCorrelation) {
  auto result = SelectCompactBenchmarks(*matrix_, matrix_->num_datasets());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance_correlation, 1.0, 1e-9);
}

TEST_F(BenchmarkSelectionTest, CorrelationGrowsWithSubsetSize) {
  const double small =
      SelectCompactBenchmarks(*matrix_, 2)->distance_correlation;
  const double medium =
      SelectCompactBenchmarks(*matrix_, 8)->distance_correlation;
  const double large =
      SelectCompactBenchmarks(*matrix_, 16)->distance_correlation;
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_GT(large, 0.9);
}

TEST_F(BenchmarkSelectionTest, HalfSuitePreservesClusteringStructure) {
  // The future-work claim: a compact benchmark suite should reproduce the
  // model clustering of the full suite.
  auto result = SelectCompactBenchmarks(*matrix_, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->distance_correlation, 0.85);

  // Rebuild a performance matrix restricted to the subset by constructing
  // distances directly and comparing hierarchical clusterings.
  ModelClusteringOptions options;
  auto full_clustering = *ClusterModels(*matrix_, *zoo_, options);

  // Build restricted vectors and cluster with the library primitives.
  std::vector<std::vector<double>> vectors(zoo_->size());
  for (size_t m = 0; m < zoo_->size(); ++m) {
    for (size_t d : result->selected) {
      vectors[m].push_back(matrix_->accuracy().At(d, m));
    }
  }
  auto distances =
      *PairwiseDistances(vectors, DistanceMetric::kTopKAbsDiff, 5);
  HierarchicalOptions hopts;
  hopts.num_clusters = full_clustering.clusters.num_clusters;
  auto subset_clusters = *HierarchicalCluster(distances, hopts);

  auto ari = AdjustedRandIndex(full_clustering.clusters,
                               subset_clusters.clustering);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.4);  // Far above chance (~0).
}

TEST_F(BenchmarkSelectionTest, InputValidation) {
  EXPECT_TRUE(SelectCompactBenchmarks(*matrix_, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SelectCompactBenchmarks(*matrix_, 1000)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tps
