#include "core/selection_trace.h"

#include <string>

#include "core/two_phase.h"
#include "data/registry.h"
#include "gtest/gtest.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"

namespace tps {
namespace {

SelectionTrace MakeSampleTrace() {
  SelectionTrace trace;
  trace.target = "mnli";
  trace.domain = "NLP";
  trace.recall.scored = {{22, 0, 0.25}, {5, 1, 1.0 / 3.0}};
  trace.recall.ranked = {{7, 0.91, 0.88, 0.95, false},
                         {3, 0.5, 0.7, 0.6, true}};
  trace.recall.recalled = {7, 3};
  trace.recall.proxies_computed = 2;
  trace.recall.inference_epochs = 1.0;
  trace.recall.wall_ms = 1.75;
  TraceStage stage;
  stage.stage = 0;
  stage.entrants = {7, 3};
  stage.epochs_charged = 2.0;
  stage.prunes = {{3, 7, 0.61, 0.72, 0.66, 0.81, 0.15}};
  stage.halving_drops = {};
  stage.survivors = {7};
  trace.stages.push_back(stage);
  trace.fine_wall_ms = 0.5;
  trace.selected_model = 7;
  trace.selected_accuracy = 0.8125;
  trace.training_epochs = 2.0;
  trace.total_epochs = 3.0;
  return trace;
}

TEST(SelectionTraceTest, JsonRoundTripIsLossless) {
  const SelectionTrace trace = MakeSampleTrace();
  auto parsed = SelectionTrace::FromJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, trace);
  // Byte-determinism: equal traces dump to identical bytes.
  EXPECT_EQ(parsed->ToJson(), trace.ToJson());
  // Compact form round-trips too.
  auto compact = SelectionTrace::FromJson(trace.ToJson(-1));
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(*compact, trace);
}

TEST(SelectionTraceTest, EmptyTraceRoundTrips) {
  const SelectionTrace empty;
  auto parsed = SelectionTrace::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, empty);
}

TEST(SelectionTraceTest, RejectsMalformedInput) {
  EXPECT_FALSE(SelectionTrace::FromJson("").ok());
  EXPECT_FALSE(SelectionTrace::FromJson("not json").ok());
  EXPECT_FALSE(SelectionTrace::FromJson("[]").ok());
  EXPECT_FALSE(SelectionTrace::FromJson("{}").ok());
  EXPECT_FALSE(
      SelectionTrace::FromJson(R"({"schema_version":999})").ok());
  // Truncations of a valid trace must error, never crash.
  const std::string full = MakeSampleTrace().ToJson(-1);
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    EXPECT_FALSE(SelectionTrace::FromJson(full.substr(0, cut)).ok())
        << "accepted truncation at " << cut;
  }
}

TEST(SelectionTraceTest, RejectsWrongFieldTypes) {
  SelectionTrace trace = MakeSampleTrace();
  std::string text = trace.ToJson(-1);
  // A negative index is structurally valid JSON but not a valid trace.
  const std::string key = "\"selected_model\":7";
  const size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, key.size(), "\"selected_model\":-7");
  EXPECT_FALSE(SelectionTrace::FromJson(text).ok());
}

TEST(SelectionTraceTest, LiveTwoPhaseTraceRoundTrips) {
  auto registry = DatasetRegistry::CreatePaperInventory();
  ASSERT_TRUE(registry.ok());
  auto zoo = ModelZoo::Create(NlpPaperZooSpecs());
  ASSERT_TRUE(zoo.ok());
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto matrix = PerformanceMatrix::Build(
      *zoo, registry->Benchmarks(TaskDomain::kNLP), simulator, hp);
  ASSERT_TRUE(matrix.ok());
  auto clustering = ClusterModels(*matrix, *zoo, ModelClusteringOptions());
  ASSERT_TRUE(clustering.ok());
  auto target = registry->Find("mnli");
  ASSERT_TRUE(target.ok());

  TwoPhaseSelector selector(&*zoo, &*matrix, &*clustering, &simulator);
  SelectionTrace trace;
  TwoPhaseOptions options;
  options.trace = &trace;
  auto report = selector.Select(**target, options, hp);
  ASSERT_TRUE(report.ok());

  // The trace agrees with the report it observed.
  EXPECT_EQ(trace.target, "mnli");
  EXPECT_EQ(trace.domain, "NLP");
  EXPECT_EQ(trace.selected_model, report->selection.selected_model);
  EXPECT_EQ(trace.selected_accuracy, report->selection.selected_accuracy);
  EXPECT_EQ(trace.training_epochs, report->budget.training_epochs());
  EXPECT_EQ(trace.total_epochs, report->budget.total_epochs());
  EXPECT_EQ(trace.recall.inference_epochs,
            report->budget.inference_epochs());
  EXPECT_EQ(trace.recall.recalled.size(), options.recall.top_k_models);
  ASSERT_EQ(trace.stages.size(), static_cast<size_t>(hp.epochs));
  // Stage survivor counts mirror the report's ledger.
  for (size_t s = 0; s < trace.stages.size(); ++s) {
    EXPECT_EQ(trace.stages[s].entrants.size(),
              report->selection.survivors_per_stage[s]);
  }
  // Every drop is accounted: entrants - prunes - halving = survivors.
  for (const TraceStage& stage : trace.stages) {
    EXPECT_EQ(stage.entrants.size() - stage.prunes.size() -
                  stage.halving_drops.size(),
              stage.survivors.size());
    for (const TracePrune& prune : stage.prunes) {
      EXPECT_GT(prune.margin, 0.0);
      EXPECT_GT(prune.by_val, prune.val);
    }
  }
  // And the whole thing survives a JSON round trip bit-exactly.
  auto parsed = SelectionTrace::FromJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, trace);
}

}  // namespace
}  // namespace tps
