// Instrumentation-inertness suite: the observability layer (MetricsRegistry
// + SelectionTrace) must be pure observation. Running the two-phase
// pipeline with metrics and trace collection enabled must produce a
// TwoPhaseReport BIT-identical — every recall entry, every score, the
// selection outcome and the whole epoch ledger, compared with ==, never
// within-epsilon — to a run with a disabled (no-op) registry and no trace,
// on both paper domains, serial and parallel. The suite also asserts the
// instruments really did record (non-zero counters, populated trace), so
// inertness is proved for live instrumentation, not a vacuous no-op.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

struct PaperWorld {
  ModelZoo zoo;
  DatasetRegistry registry;
  PerformanceMatrix matrix;
  ModelClustering clustering;
  Hyperparams hp;
};

PaperWorld MakePaperWorld(TaskDomain domain) {
  ModelZoo zoo = *ModelZoo::Create(domain == TaskDomain::kNLP
                                       ? NlpPaperZooSpecs()
                                       : CvPaperZooSpecs());
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(domain);
  PerformanceMatrix matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(domain), simulator, hp);
  ModelClustering clustering =
      *ClusterModels(matrix, zoo, ModelClusteringOptions());
  return PaperWorld{std::move(zoo), std::move(registry), std::move(matrix),
                    std::move(clustering), hp};
}

void ExpectBitIdentical(const TwoPhaseReport& a, const TwoPhaseReport& b,
                        const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.recall.ranked.size(), b.recall.ranked.size());
  for (size_t i = 0; i < a.recall.ranked.size(); ++i) {
    EXPECT_EQ(a.recall.ranked[i].model_index,
              b.recall.ranked[i].model_index);
    EXPECT_EQ(a.recall.ranked[i].recall_score,
              b.recall.ranked[i].recall_score);
    EXPECT_EQ(a.recall.ranked[i].prior_accuracy,
              b.recall.ranked[i].prior_accuracy);
    EXPECT_EQ(a.recall.ranked[i].proxy_component,
              b.recall.ranked[i].proxy_component);
    EXPECT_EQ(a.recall.ranked[i].via_propagation,
              b.recall.ranked[i].via_propagation);
  }
  EXPECT_EQ(a.recall.proxies_computed, b.recall.proxies_computed);
  EXPECT_EQ(a.selection.selected_model, b.selection.selected_model);
  EXPECT_EQ(a.selection.selected_accuracy, b.selection.selected_accuracy);
  EXPECT_EQ(a.selection.training_epochs, b.selection.training_epochs);
  EXPECT_EQ(a.selection.survivors_per_stage,
            b.selection.survivors_per_stage);
  EXPECT_EQ(a.budget.training_epochs(), b.budget.training_epochs());
  EXPECT_EQ(a.budget.inference_epochs(), b.budget.inference_epochs());
  EXPECT_EQ(a.budget.total_epochs(), b.budget.total_epochs());
}

class MetricsInertnessTest : public testing::TestWithParam<TaskDomain> {};

TEST_P(MetricsInertnessTest, InstrumentedRunBitIdenticalToNoOpRun) {
  const PaperWorld world = MakePaperWorld(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            &simulator);

  for (const Dataset* target : world.registry.Targets(GetParam())) {
    // Baseline: disabled registry (every recording a no-op), no trace.
    MetricsRegistry disabled(/*enabled=*/false);
    TwoPhaseOptions baseline_options;
    baseline_options.metrics = &disabled;
    const TwoPhaseReport baseline =
        *selector.Select(*target, baseline_options, world.hp);

    // Fully instrumented: live registry + full trace collection.
    MetricsRegistry live;
    SelectionTrace trace;
    TwoPhaseOptions instrumented_options;
    instrumented_options.metrics = &live;
    instrumented_options.trace = &trace;
    const TwoPhaseReport instrumented =
        *selector.Select(*target, instrumented_options, world.hp);

    ExpectBitIdentical(baseline, instrumented,
                       "instrumented vs no-op, " + target->name());

    // The instrumentation was genuinely live, not vacuously inert.
    EXPECT_EQ(live.counter("recall.runs").value(), 1u);
    EXPECT_EQ(live.counter("fine.runs").value(), 1u);
    EXPECT_EQ(live.counter("two_phase.runs").value(), 1u);
    EXPECT_EQ(live.counter("recall.proxies_computed").value(),
              baseline.recall.proxies_computed);
    EXPECT_EQ(live.histogram("recall.wall_us").count(), 1u);
    EXPECT_EQ(live.histogram("fine.wall_us").count(), 1u);
    EXPECT_EQ(trace.selected_model, baseline.selection.selected_model);
    EXPECT_FALSE(trace.recall.ranked.empty());
    EXPECT_FALSE(trace.stages.empty());
    // And the disabled registry recorded nothing.
    EXPECT_EQ(disabled.counter("recall.runs").value(), 0u);

    // Default-registry run (options.metrics = nullptr routes to
    // MetricsRegistry::Default()) is equally inert.
    TwoPhaseOptions default_options;
    const TwoPhaseReport defaulted =
        *selector.Select(*target, default_options, world.hp);
    ExpectBitIdentical(baseline, defaulted,
                       "default registry, " + target->name());
  }
}

TEST_P(MetricsInertnessTest, InstrumentedParallelMatchesNoOpSerial) {
  // The cross product: observability on + thread pool on, against the
  // uninstrumented serial reference. Catches any instrumentation that
  // would perturb task ordering or reductions.
  const PaperWorld world = MakePaperWorld(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            &simulator);
  const Dataset* target = world.registry.Targets(GetParam()).front();

  MetricsRegistry disabled(/*enabled=*/false);
  TwoPhaseOptions baseline_options;
  baseline_options.metrics = &disabled;
  const TwoPhaseReport baseline =
      *selector.Select(*target, baseline_options, world.hp);

  for (int threads : {2, 7}) {
    ThreadPool pool(threads);
    MetricsRegistry live;
    SelectionTrace trace;
    TwoPhaseOptions options;
    options.metrics = &live;
    options.trace = &trace;
    const TwoPhaseReport parallel =
        *selector.Select(*target, options, world.hp, &pool);
    ExpectBitIdentical(baseline, parallel,
                       "instrumented parallel, " +
                           std::to_string(threads) + " threads");
    EXPECT_EQ(live.counter("two_phase.runs").value(), 1u);
    EXPECT_EQ(trace.selected_model, baseline.selection.selected_model);
  }
}

TEST_P(MetricsInertnessTest, KernelModeIsInertUnderInstrumentation) {
  // Full cross product on both paper domains: kernel mode (reference /
  // batched) x instrumentation (no-op / live) x execution (serial /
  // parallel) all collapse to one bit-identical report. Metrics stay pure
  // observation and the SoA kernels stay a pure performance toggle even
  // when both vary at once.
  const PaperWorld world = MakePaperWorld(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            &simulator);
  const Dataset* target = world.registry.Targets(GetParam()).front();

  MetricsRegistry disabled(/*enabled=*/false);
  TwoPhaseOptions baseline_options;
  baseline_options.metrics = &disabled;
  baseline_options.recall.kernel_mode = kernels::KernelMode::kReference;
  const TwoPhaseReport baseline =
      *selector.Select(*target, baseline_options, world.hp);

  ThreadPool pool(7);
  for (kernels::KernelMode mode :
       {kernels::KernelMode::kReference, kernels::KernelMode::kBatched}) {
    for (ThreadPool* pool_ptr : {static_cast<ThreadPool*>(nullptr), &pool}) {
      MetricsRegistry live;
      SelectionTrace trace;
      TwoPhaseOptions options;
      options.metrics = &live;
      options.trace = &trace;
      options.recall.kernel_mode = mode;
      const TwoPhaseReport report =
          *selector.Select(*target, options, world.hp, pool_ptr);
      ExpectBitIdentical(baseline, report,
                         std::string(kernels::ToString(mode)) +
                             (pool_ptr != nullptr ? " parallel" : " serial"));
      EXPECT_EQ(live.counter("two_phase.runs").value(), 1u);
    }
  }
}

TEST_P(MetricsInertnessTest, TraceIsIdenticalAcrossRepeatsAndThreadCounts) {
  // The trace itself is part of the determinism contract: same input, same
  // trace, bit for bit, serial or parallel (wall_ms excluded — scrubbed to
  // zero before comparing, it is the one legitimately nondeterministic
  // field).
  const PaperWorld world = MakePaperWorld(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            &simulator);
  const Dataset* target = world.registry.Targets(GetParam()).front();

  const auto traced_run = [&](ThreadPool* pool) {
    SelectionTrace trace;
    TwoPhaseOptions options;
    options.trace = &trace;
    EXPECT_TRUE(selector.Select(*target, options, world.hp, pool).ok());
    trace.recall.wall_ms = 0.0;
    trace.fine_wall_ms = 0.0;
    return trace;
  };

  const SelectionTrace serial = traced_run(nullptr);
  const SelectionTrace repeat = traced_run(nullptr);
  EXPECT_EQ(serial, repeat);
  EXPECT_EQ(serial.ToJson(), repeat.ToJson());
  ThreadPool pool(7);
  const SelectionTrace parallel = traced_run(&pool);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.ToJson(), parallel.ToJson());
}

INSTANTIATE_TEST_SUITE_P(BothDomains, MetricsInertnessTest,
                         testing::Values(TaskDomain::kNLP, TaskDomain::kCV),
                         [](const testing::TestParamInfo<TaskDomain>& info) {
                           return std::string(ToString(info.param));
                         });

}  // namespace
}  // namespace tps
