// Serial-vs-parallel determinism suite for the online two-phase pipeline
// and the offline performance-matrix build.
//
// Every simulator run, proxy forward pass and trend prediction is a pure
// function of its index, and all parallel reductions in the library are
// index-ordered, so for ANY thread count the full TwoPhaseReport — recall
// ranking (every entry, every field), selection outcome, and the epoch
// budget ledger — must be BIT-identical to the serial run. These tests
// enforce that on randomized zoo/benchmark configurations across thread
// counts {1, 2, 7, 2 x hardware}. All comparisons are exact (==), never
// within-epsilon.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/coarse_recall.h"
#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "core/two_phase.h"
#include "data/dataset.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

std::vector<int> ThreadCounts() {
  return {1, 2, 7, 2 * ThreadPool::DefaultThreads()};
}

/// One randomized end-to-end configuration: a zoo of models with random
/// families/tags/capabilities, a random benchmark suite, one target task,
/// and randomized pipeline options.
struct RandomConfig {
  ModelZoo zoo;
  std::vector<Dataset> benchmarks;
  Dataset target;
  PerformanceMatrix matrix;
  ModelClustering clustering;
  TwoPhaseOptions options;
  Hyperparams hp;

  std::vector<const Dataset*> BenchmarkPtrs() const {
    std::vector<const Dataset*> ptrs;
    for (const Dataset& d : benchmarks) ptrs.push_back(&d);
    return ptrs;
  }
};

RandomConfig MakeRandomConfig(uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> families = {"bert", "roberta", "albert",
                                             "electra", "deberta"};
  const std::vector<std::string> tag_pool = {
      "english", "news",    "books",  "social", "finance",
      "medical", "reviews", "forums", "nli",    "qa"};
  const auto pick_tags = [&](size_t count) {
    std::vector<std::string> tags;
    for (size_t idx : rng.SampleWithoutReplacement(tag_pool.size(), count)) {
      tags.push_back(tag_pool[idx]);
    }
    return tags;
  };

  const size_t num_models = 10 + rng.UniformInt(uint64_t{9});   // 10..18
  const size_t num_benchmarks = 5 + rng.UniformInt(uint64_t{4});  // 5..8
  std::vector<ModelSpec> model_specs;
  for (size_t m = 0; m < num_models; ++m) {
    ModelSpec spec;
    spec.name = std::string("rzoo") + std::to_string(seed) + std::string("-m") + std::to_string(m);
    spec.domain = TaskDomain::kNLP;
    spec.family = families[rng.UniformInt(families.size())];
    spec.scale_millions = rng.Uniform(20.0, 350.0);
    spec.capability = rng.Uniform(0.35, 0.9);
    spec.pretrain_tags = pick_tags(2 + rng.UniformInt(uint64_t{2}));
    if (rng.Bernoulli(0.6)) {  // Mix of fine-tuned and pre-train-only.
      spec.finetune_tags = pick_tags(1 + rng.UniformInt(uint64_t{2}));
      spec.finetune_strength = rng.Uniform(0.15, 0.5);
    }
    spec.num_source_labels = 2 + static_cast<int>(rng.UniformInt(uint64_t{14}));
    model_specs.push_back(std::move(spec));
  }

  std::vector<DatasetSpec> bench_specs;
  for (size_t d = 0; d < num_benchmarks; ++d) {
    DatasetSpec spec;
    spec.name = std::string("rbench") + std::to_string(seed) + std::string("-d") + std::to_string(d);
    spec.domain = TaskDomain::kNLP;
    spec.role = DatasetRole::kBenchmark;
    spec.num_labels = 2 + static_cast<int>(rng.UniformInt(uint64_t{5}));
    spec.difficulty = rng.Uniform(0.2, 0.8);
    spec.tags = pick_tags(2 + rng.UniformInt(uint64_t{2}));
    spec.num_examples = 64;
    bench_specs.push_back(std::move(spec));
  }
  DatasetSpec target_spec;
  target_spec.name = std::string("rtarget") + std::to_string(seed);
  target_spec.domain = TaskDomain::kNLP;
  target_spec.role = DatasetRole::kTarget;
  target_spec.num_labels = 2 + static_cast<int>(rng.UniformInt(uint64_t{4}));
  target_spec.difficulty = rng.Uniform(0.3, 0.7);
  target_spec.tags = pick_tags(3);
  target_spec.num_examples = 96;

  ModelZoo zoo = *ModelZoo::Create(model_specs);
  std::vector<Dataset> benchmarks;
  for (const DatasetSpec& spec : bench_specs) {
    benchmarks.push_back(*Dataset::Create(spec));
  }
  Dataset target = *Dataset::Create(target_spec);

  FineTuneSimulator simulator;
  Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  hp.seed = rng.Next();

  std::vector<const Dataset*> bench_ptrs;
  for (const Dataset& d : benchmarks) bench_ptrs.push_back(&d);
  PerformanceMatrix matrix =
      *PerformanceMatrix::Build(zoo, bench_ptrs, simulator, hp);
  ModelClustering clustering =
      *ClusterModels(matrix, zoo, ModelClusteringOptions());

  TwoPhaseOptions options;
  options.recall.top_k_models = 4 + rng.UniformInt(uint64_t{5});  // 4..8
  // Exercise the different recall code paths across configurations:
  // single-proxy via representatives, multi-proxy, and direct scoring.
  switch (rng.UniformInt(uint64_t{3})) {
    case 0:
      options.recall.proxy = "leep";
      break;
    case 1:
      options.recall.proxies = {"leep", "nce"};
      break;
    default:
      options.recall.use_cluster_representatives = false;
      break;
  }
  options.fine_selection.threshold = rng.Bernoulli(0.5) ? 0.0 : 0.02;

  return RandomConfig{std::move(zoo),        std::move(benchmarks),
                      std::move(target),     std::move(matrix),
                      std::move(clustering), options,
                      hp};
}

void ExpectBitIdentical(const TwoPhaseReport& serial,
                        const TwoPhaseReport& parallel,
                        const std::string& context) {
  SCOPED_TRACE(context);
  // Recall ranking: every entry, every field, exact.
  ASSERT_EQ(serial.recall.ranked.size(), parallel.recall.ranked.size());
  for (size_t i = 0; i < serial.recall.ranked.size(); ++i) {
    const RecallEntry& s = serial.recall.ranked[i];
    const RecallEntry& p = parallel.recall.ranked[i];
    EXPECT_EQ(s.model_index, p.model_index) << "rank " << i;
    EXPECT_EQ(s.recall_score, p.recall_score) << "rank " << i;
    EXPECT_EQ(s.prior_accuracy, p.prior_accuracy) << "rank " << i;
    EXPECT_EQ(s.proxy_component, p.proxy_component) << "rank " << i;
    EXPECT_EQ(s.via_propagation, p.via_propagation) << "rank " << i;
  }
  EXPECT_EQ(serial.recall.proxies_computed, parallel.recall.proxies_computed);

  // Selection outcome.
  EXPECT_EQ(serial.selection.selected_model,
            parallel.selection.selected_model);
  EXPECT_EQ(serial.selection.selected_accuracy,
            parallel.selection.selected_accuracy);
  EXPECT_EQ(serial.selection.training_epochs,
            parallel.selection.training_epochs);
  EXPECT_EQ(serial.selection.survivors_per_stage,
            parallel.selection.survivors_per_stage);

  // Budget ledger: no lost or double-counted charges under concurrency.
  EXPECT_EQ(serial.budget.training_epochs(),
            parallel.budget.training_epochs());
  EXPECT_EQ(serial.budget.inference_epochs(),
            parallel.budget.inference_epochs());
  EXPECT_EQ(serial.budget.total_epochs(), parallel.budget.total_epochs());
}

class ParallelEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalenceTest, TwoPhaseReportBitIdenticalAcrossThreadCounts) {
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);

  const TwoPhaseReport serial =
      *selector.Select(config.target, config.options, config.hp, nullptr);
  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    const TwoPhaseReport parallel =
        *selector.Select(config.target, config.options, config.hp, &pool);
    ExpectBitIdentical(serial, parallel,
                       "config " + std::to_string(GetParam()) + ", " +
                           std::to_string(threads) + " threads");
  }
}

TEST_P(ParallelEquivalenceTest, NumThreadsOptionMatchesExplicitPool) {
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);

  const TwoPhaseReport serial =
      *selector.Select(config.target, config.options, config.hp);
  TwoPhaseOptions threaded = config.options;
  threaded.num_threads = 7;
  const TwoPhaseReport parallel =
      *selector.Select(config.target, threaded, config.hp);
  ExpectBitIdentical(serial, parallel,
                     "num_threads option, config " +
                         std::to_string(GetParam()));
}

TEST_P(ParallelEquivalenceTest, PerformanceMatrixBuildBitIdentical) {
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  const std::vector<const Dataset*> benchmarks = config.BenchmarkPtrs();

  const PerformanceMatrix serial =
      *PerformanceMatrix::Build(config.zoo, benchmarks, simulator, config.hp);
  for (int threads : ThreadCounts()) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const PerformanceMatrix parallel = *PerformanceMatrix::BuildParallel(
        config.zoo, benchmarks, simulator, config.hp, threads);
    ASSERT_EQ(parallel.num_models(), serial.num_models());
    ASSERT_EQ(parallel.num_datasets(), serial.num_datasets());
    for (size_t di = 0; di < serial.num_datasets(); ++di) {
      for (size_t mi = 0; mi < serial.num_models(); ++mi) {
        EXPECT_EQ(parallel.accuracy()(di, mi), serial.accuracy()(di, mi));
        EXPECT_EQ(parallel.run(di, mi).val_accuracy,
                  serial.run(di, mi).val_accuracy);
        EXPECT_EQ(parallel.run(di, mi).test_accuracy,
                  serial.run(di, mi).test_accuracy);
      }
    }
    // Strongest form: the serialized artifacts are byte-identical.
    EXPECT_EQ(parallel.Serialize(), serial.Serialize());
  }
}

TEST_P(ParallelEquivalenceTest, RecallLedgerAndRankingMatchSerial) {
  const RandomConfig config = MakeRandomConfig(GetParam());
  CoarseRecall recall(&config.zoo, &config.matrix, &config.clustering);

  EpochBudget serial_budget;
  const RecallResult serial =
      *recall.Recall(config.target, config.options.recall, &serial_budget);
  for (int threads : ThreadCounts()) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ThreadPool pool(threads);
    EpochBudget parallel_budget;
    const RecallResult parallel = *recall.Recall(
        config.target, config.options.recall, &parallel_budget, &pool);
    ASSERT_EQ(parallel.ranked.size(), serial.ranked.size());
    for (size_t i = 0; i < serial.ranked.size(); ++i) {
      EXPECT_EQ(parallel.ranked[i].model_index,
                serial.ranked[i].model_index);
      EXPECT_EQ(parallel.ranked[i].recall_score,
                serial.ranked[i].recall_score);
    }
    EXPECT_EQ(parallel.proxies_computed, serial.proxies_computed);
    EXPECT_EQ(parallel_budget.inference_epochs(),
              serial_budget.inference_epochs());
    EXPECT_EQ(parallel_budget.training_epochs(),
              serial_budget.training_epochs());
  }
}

TEST_P(ParallelEquivalenceTest, FineSelectionLedgerMatchesSerialExactly) {
  // Guards the 0.5-epoch proxy charges and per-stage training charges
  // against lost or double-counted updates when survivors step in
  // parallel: the ledger after a parallel Select equals the serial ledger
  // exactly.
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  ConvergenceTrendMiner miner(&config.matrix, config.options.trends);
  FineSelectionSelector fine(&config.zoo, &simulator, &miner,
                             config.options.fine_selection);
  std::vector<size_t> candidates(config.zoo.size());
  for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

  EpochBudget serial_budget;
  const SelectionOutcome serial = *fine.Select(
      candidates, config.target, config.hp, &serial_budget);
  for (int threads : ThreadCounts()) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ThreadPool pool(threads);
    EpochBudget parallel_budget;
    const SelectionOutcome parallel = *fine.Select(
        candidates, config.target, config.hp, &parallel_budget, &pool);
    EXPECT_EQ(parallel.selected_model, serial.selected_model);
    EXPECT_EQ(parallel.selected_accuracy, serial.selected_accuracy);
    EXPECT_EQ(parallel.survivors_per_stage, serial.survivors_per_stage);
    EXPECT_EQ(parallel_budget.training_epochs(),
              serial_budget.training_epochs());
    EXPECT_EQ(parallel_budget.inference_epochs(),
              serial_budget.inference_epochs());
    EXPECT_EQ(parallel_budget.total_epochs(), serial_budget.total_epochs());
  }
}

TEST_P(ParallelEquivalenceTest, MetricsAndTraceOnStaysBitIdentical) {
  // Observability cross-check (see tests/core/metrics_inertness_test.cc for
  // the full suite): the determinism contract holds with a live metrics
  // registry and trace collection enabled on the parallel runs while the
  // serial reference runs uninstrumented.
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);

  MetricsRegistry disabled(/*enabled=*/false);
  TwoPhaseOptions serial_options = config.options;
  serial_options.metrics = &disabled;
  const TwoPhaseReport serial =
      *selector.Select(config.target, serial_options, config.hp, nullptr);

  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    MetricsRegistry live;
    SelectionTrace trace;
    TwoPhaseOptions instrumented = config.options;
    instrumented.metrics = &live;
    instrumented.trace = &trace;
    const TwoPhaseReport parallel =
        *selector.Select(config.target, instrumented, config.hp, &pool);
    ExpectBitIdentical(serial, parallel,
                       "instrumented, config " + std::to_string(GetParam()) +
                           ", " + std::to_string(threads) + " threads");
    // Live instrumentation, not a vacuous pass.
    EXPECT_EQ(live.counter("two_phase.runs").value(), 1u);
    EXPECT_EQ(trace.selected_model, serial.selection.selected_model);
  }
}

TEST_P(ParallelEquivalenceTest, KernelModeSweepStaysBitIdentical) {
  // The batched SoA kernels (RecallOptions::kernel_mode) are a performance
  // toggle, never a results toggle: reference-serial, batched-serial,
  // batched-parallel and reference-parallel must all produce the same
  // TwoPhaseReport bit for bit.
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);

  TwoPhaseOptions reference_options = config.options;
  reference_options.recall.kernel_mode = kernels::KernelMode::kReference;
  TwoPhaseOptions batched_options = config.options;
  batched_options.recall.kernel_mode = kernels::KernelMode::kBatched;

  const TwoPhaseReport baseline =
      *selector.Select(config.target, reference_options, config.hp, nullptr);
  const TwoPhaseReport batched_serial =
      *selector.Select(config.target, batched_options, config.hp, nullptr);
  ExpectBitIdentical(baseline, batched_serial,
                     "batched serial, config " + std::to_string(GetParam()));

  for (int threads : {2, 7}) {
    ThreadPool pool(threads);
    const TwoPhaseReport batched_parallel =
        *selector.Select(config.target, batched_options, config.hp, &pool);
    ExpectBitIdentical(baseline, batched_parallel,
                       "batched, config " + std::to_string(GetParam()) +
                           ", " + std::to_string(threads) + " threads");
    const TwoPhaseReport reference_parallel =
        *selector.Select(config.target, reference_options, config.hp, &pool);
    ExpectBitIdentical(baseline, reference_parallel,
                       "reference, config " + std::to_string(GetParam()) +
                           ", " + std::to_string(threads) + " threads");
  }
}

TEST_P(ParallelEquivalenceTest, RepeatedParallelRunsOnOnePoolAreStable) {
  // One shared pool serving several consecutive selections (the server
  // scenario) must not leak state between calls.
  const RandomConfig config = MakeRandomConfig(GetParam());
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);
  ThreadPool pool(7);
  const TwoPhaseReport first =
      *selector.Select(config.target, config.options, config.hp, &pool);
  for (int round = 0; round < 3; ++round) {
    const TwoPhaseReport again =
        *selector.Select(config.target, config.options, config.hp, &pool);
    ExpectBitIdentical(first, again, "round " + std::to_string(round));
  }
}

// >= 3 randomized configurations (5 seeds), each swept over all thread
// counts — the acceptance bar of this test suite.
INSTANTIATE_TEST_SUITE_P(RandomZoos, ParallelEquivalenceTest,
                         testing::Values(11, 29, 47, 83, 131));

TEST(ParallelEquivalenceEdgeTest, RejectsNonPositiveNumThreads) {
  const RandomConfig config = MakeRandomConfig(3);
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&config.zoo, &config.matrix, &config.clustering,
                            &simulator);
  TwoPhaseOptions bad = config.options;
  bad.num_threads = 0;
  EXPECT_TRUE(selector.Select(config.target, bad, config.hp)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelEquivalenceEdgeTest, PaperInventoryMatchesSerialToo) {
  // Spot-check the real paper zoo (40 NLP models), not just random ones.
  ModelZoo zoo = *ModelZoo::Create(NlpPaperZooSpecs());
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  PerformanceMatrix matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(TaskDomain::kNLP), simulator, hp);
  ModelClustering clustering =
      *ClusterModels(matrix, zoo, ModelClusteringOptions());
  TwoPhaseSelector selector(&zoo, &matrix, &clustering, &simulator);
  const Dataset& target = **registry.Find("mnli");

  const TwoPhaseReport serial =
      *selector.Select(target, TwoPhaseOptions(), hp, nullptr);
  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    const TwoPhaseReport parallel =
        *selector.Select(target, TwoPhaseOptions(), hp, &pool);
    ExpectBitIdentical(serial, parallel,
                       "paper zoo, " + std::to_string(threads) + " threads");
  }
}

}  // namespace
}  // namespace tps
