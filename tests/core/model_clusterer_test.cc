#include "core/model_clusterer.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/string_util.h"

namespace tps {
namespace {

/// Full NLP world (shared across tests; built once).
class ModelClustererTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    FineTuneSimulator simulator;
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), simulator,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static PerformanceMatrix* matrix_;
};

ModelZoo* ModelClustererTest::zoo_ = nullptr;
DatasetRegistry* ModelClustererTest::registry_ = nullptr;
PerformanceMatrix* ModelClustererTest::matrix_ = nullptr;

TEST_F(ModelClustererTest, DefaultClusteringIsNonDegenerate) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  EXPECT_EQ(clustering.clusters.assignments.size(), 40u);
  EXPECT_GE(clustering.NonSingletonClusters().size(), 4u);
  EXPECT_LE(clustering.NonSingletonClusters().size(), 12u);
  EXPECT_GE(clustering.SingletonClusters().size(), 2u);
  EXPECT_EQ(clustering.representatives.size(),
            static_cast<size_t>(clustering.clusters.num_clusters));
}

TEST_F(ModelClustererTest, QqpLineageCoClusters) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  const size_t a = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-68");
  const size_t b = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-9");
  const size_t c = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-40");
  EXPECT_EQ(clustering.ClusterOf(a), clustering.ClusterOf(b));
  EXPECT_EQ(clustering.ClusterOf(a), clustering.ClusterOf(c));
  // The weak random-init lineage lands elsewhere.
  const size_t weak = *zoo_->IndexOf("Jeevesh8/init_bert_ft_qqp-33");
  EXPECT_NE(clustering.ClusterOf(a), clustering.ClusterOf(weak));
}

TEST_F(ModelClustererTest, RepresentativeHasMaxAverageAccuracy) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  for (int c = 0; c < clustering.clusters.num_clusters; ++c) {
    const size_t rep = clustering.representatives[static_cast<size_t>(c)];
    EXPECT_EQ(clustering.ClusterOf(rep), c);
    for (size_t member : clustering.clusters.Members(c)) {
      EXPECT_GE(matrix_->ModelAverageAccuracy(rep),
                matrix_->ModelAverageAccuracy(member));
    }
  }
}

TEST_F(ModelClustererTest, SingletonPredicateMatchesClusterSizes) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  const std::vector<size_t> sizes = clustering.clusters.Sizes();
  for (size_t m = 0; m < zoo_->size(); ++m) {
    const int c = clustering.ClusterOf(m);
    EXPECT_EQ(clustering.IsSingletonModel(m),
              sizes[static_cast<size_t>(c)] == 1);
  }
}

TEST_F(ModelClustererTest, KMeansPathProducesRequestedK) {
  ModelClusteringOptions options;
  options.algorithm = ClusterAlgorithm::kKMeans;
  options.num_clusters = 10;
  auto clustering = *ClusterModels(*matrix_, *zoo_, options);
  EXPECT_EQ(clustering.clusters.num_clusters, 10);
}

TEST_F(ModelClustererTest, KMeansWithoutKFails) {
  ModelClusteringOptions options;
  options.algorithm = ClusterAlgorithm::kKMeans;
  options.num_clusters = 0;
  EXPECT_TRUE(ClusterModels(*matrix_, *zoo_, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ModelClustererTest, TextSimilarityPathWorks) {
  ModelClusteringOptions options;
  options.similarity = ModelSimilarityKind::kTextCard;
  options.distance_threshold = 0.5;
  auto clustering = ClusterModels(*matrix_, *zoo_, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->clusters.assignments.size(), 40u);
}

TEST_F(ModelClustererTest, DistancesMatrixIsSymmetricZeroDiagonal) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  const Matrix& d = clustering.distances;
  ASSERT_EQ(d.rows(), 40u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.At(i, i), 0.0);
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(d.At(i, j), d.At(j, i));
    }
  }
}

TEST_F(ModelClustererTest, FormatClustersListsNonSingletons) {
  auto clustering = *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions());
  const std::string text = FormatClusters(clustering, *zoo_, false);
  EXPECT_TRUE(strings::Contains(text, "C1 (size"));
  EXPECT_TRUE(strings::Contains(text, "singleton clusters)"));
  const std::string full = FormatClusters(clustering, *zoo_, true);
  // With singletons included, every model name appears.
  for (size_t m = 0; m < 5; ++m) {
    EXPECT_TRUE(strings::Contains(full, zoo_->model(m).name()));
  }
}

TEST_F(ModelClustererTest, RejectsMismatchedZoo) {
  auto small_zoo = *ModelZoo::Create(
      {NlpPaperZooSpecs()[0], NlpPaperZooSpecs()[1]});
  EXPECT_TRUE(ClusterModels(*matrix_, small_zoo, ModelClusteringOptions())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tps
