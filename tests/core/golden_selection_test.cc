// Golden end-to-end regression suite: runs the full two-phase pipeline on
// the fixed-seed paper inventory (every NLP and CV target) and compares a
// structured snapshot — selected model, recalled candidate set, each SH
// rung's survivors, and the epoch totals — byte-for-byte against the
// checked-in golden files in tests/testdata/.
//
// An intentional behavior change (new proxy default, different zoo, new
// pruning rule) will fail this suite; regenerate the goldens with ONE
// command from the build directory and commit the diff alongside the
// change:
//
//   TPS_REGEN_GOLDEN=1 ctest -R golden --output-on-failure
//
// (or run the test binary directly with TPS_REGEN_GOLDEN=1). The diff of
// the regenerated JSON is the review artifact: it shows exactly which
// targets changed selection, recall or cost.

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "util/json.h"

namespace tps {
namespace {

#ifndef TPS_TESTDATA_DIR
#error "TPS_TESTDATA_DIR must be defined by the build"
#endif

json::Value IndexArray(const std::vector<size_t>& indices) {
  json::Value array = json::Value::Array();
  for (size_t index : indices) {
    array.Append(json::Value::Int(static_cast<int64_t>(index)));
  }
  return array;
}

/// One deterministic snapshot of the whole domain: every target's
/// selection, recall set, rung survivors and epoch ledger.
json::Value Snapshot(TaskDomain domain) {
  ModelZoo zoo = *ModelZoo::Create(domain == TaskDomain::kNLP
                                       ? NlpPaperZooSpecs()
                                       : CvPaperZooSpecs());
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(domain);
  PerformanceMatrix matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(domain), simulator, hp);
  ModelClustering clustering =
      *ClusterModels(matrix, zoo, ModelClusteringOptions());
  TwoPhaseSelector selector(&zoo, &matrix, &clustering, &simulator);

  json::Value root = json::Value::Object();
  root.Set("domain", json::Value::String(std::string(ToString(domain))));
  json::Value targets = json::Value::Object();
  for (const Dataset* target : registry.Targets(domain)) {
    SelectionTrace trace;
    TwoPhaseOptions options;
    options.trace = &trace;
    const TwoPhaseReport report = *selector.Select(*target, options, hp);

    json::Value entry = json::Value::Object();
    entry.Set("selected_model",
              json::Value::String(
                  zoo.model(report.selection.selected_model).name()));
    entry.Set("selected_accuracy",
              json::Value::Number(report.selection.selected_accuracy));
    entry.Set("recalled", IndexArray(trace.recall.recalled));
    json::Value rungs = json::Value::Array();
    for (const TraceStage& stage : trace.stages) {
      rungs.Append(IndexArray(stage.survivors));
    }
    entry.Set("rung_survivors", std::move(rungs));
    entry.Set("training_epochs",
              json::Value::Number(report.budget.training_epochs()));
    entry.Set("inference_epochs",
              json::Value::Number(report.budget.inference_epochs()));
    entry.Set("total_epochs",
              json::Value::Number(report.budget.total_epochs()));
    targets.Set(target->name(), std::move(entry));
  }
  root.Set("targets", std::move(targets));
  return root;
}

void RunGolden(TaskDomain domain, const std::string& file_name) {
  const std::string path = std::string(TPS_TESTDATA_DIR) + "/" + file_name;
  const std::string snapshot = Snapshot(domain).Dump(2) + "\n";

  if (const char* regen = std::getenv("TPS_REGEN_GOLDEN");
      regen != nullptr && regen[0] != '\0' && std::string(regen) != "0") {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write golden: " << path;
    out << snapshot;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path << " — commit the diff";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with TPS_REGEN_GOLDEN=1";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  // Byte-for-byte: the snapshot dumps deterministically (insertion-order
  // keys, %.17g doubles), so any drift is a real behavior change.
  EXPECT_EQ(snapshot, golden)
      << "end-to-end selection drifted from " << path
      << "; if intentional, regenerate with TPS_REGEN_GOLDEN=1 and commit";
}

TEST(GoldenSelectionTest, NlpEndToEndMatchesGolden) {
  RunGolden(TaskDomain::kNLP, "golden_selection_nlp.json");
}

TEST(GoldenSelectionTest, CvEndToEndMatchesGolden) {
  RunGolden(TaskDomain::kCV, "golden_selection_cv.json");
}

}  // namespace
}  // namespace tps
