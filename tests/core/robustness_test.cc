// Robustness sweep: the paper's headline claims must hold across training
// run seeds (different data order / init noise), not just for one lucky
// draw. The latent transfer truth is seed-independent; only per-epoch
// noise varies.

#include <numeric>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class RobustnessTest : public testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
    target_ = *registry_->Find("mnli");
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
  static const Dataset* target_;
};

ModelZoo* RobustnessTest::zoo_ = nullptr;
DatasetRegistry* RobustnessTest::registry_ = nullptr;
FineTuneSimulator* RobustnessTest::simulator_ = nullptr;
PerformanceMatrix* RobustnessTest::matrix_ = nullptr;
ModelClustering* RobustnessTest::clustering_ = nullptr;
const Dataset* RobustnessTest::target_ = nullptr;

TEST_P(RobustnessTest, TwoPhaseHoldsAcrossRunSeeds) {
  Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  hp.seed = GetParam();

  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  auto report = *selector.Select(*target_, TwoPhaseOptions(), hp);

  std::vector<size_t> all(zoo_->size());
  std::iota(all.begin(), all.end(), 0);
  BruteForceSelector bf(zoo_, simulator_);
  EpochBudget bf_budget;
  auto bf_outcome = *bf.Select(all, *target_, hp, &bf_budget);

  // Accuracy within a few points of exhaustive search, at >= 8x less cost,
  // for every run seed.
  EXPECT_GE(report.selection.selected_accuracy,
            bf_outcome.selected_accuracy - 0.05)
      << "seed " << GetParam();
  EXPECT_GT(bf_budget.total_epochs() / report.budget.total_epochs(), 8.0)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         testing::Values(0, 1, 2, 7, 13, 42, 1234));

}  // namespace
}  // namespace tps
