#include "core/task_similarity.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class TaskSimilarityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    benchmarks_ = new std::vector<const Dataset*>(
        registry_->Benchmarks(TaskDomain::kNLP));
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, *benchmarks_, *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    probe_ = *zoo_->Find("bert-base-uncased");
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static std::vector<const Dataset*>* benchmarks_;
  static PerformanceMatrix* matrix_;
  static const PretrainedModel* probe_;
};

ModelZoo* TaskSimilarityTest::zoo_ = nullptr;
DatasetRegistry* TaskSimilarityTest::registry_ = nullptr;
FineTuneSimulator* TaskSimilarityTest::simulator_ = nullptr;
std::vector<const Dataset*>* TaskSimilarityTest::benchmarks_ = nullptr;
PerformanceMatrix* TaskSimilarityTest::matrix_ = nullptr;
const PretrainedModel* TaskSimilarityTest::probe_ = nullptr;

TEST_F(TaskSimilarityTest, EmbeddingHasMeanAndDispersionParts) {
  TaskSimilaritySelector selector(probe_, matrix_, *benchmarks_);
  auto embedding = selector.EmbedTask(**registry_->Find("mnli"));
  ASSERT_TRUE(embedding.ok());
  EXPECT_EQ(embedding->size(),
            2 * static_cast<size_t>(probe_->spec().num_source_labels));
  // Dispersion entries (second half) are non-negative.
  for (size_t d = embedding->size() / 2; d < embedding->size(); ++d) {
    EXPECT_GE((*embedding)[d], 0.0);
  }
}

TEST_F(TaskSimilarityTest, TaskIsNearestToItself) {
  TaskSimilaritySelector selector(probe_, matrix_, *benchmarks_);
  // Use a benchmark dataset as the "target": its nearest benchmark must be
  // itself (cosine 1).
  const Dataset* qqp = *registry_->Find("qqp");
  auto nearest = selector.FindNearestBenchmark(*qqp);
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ((*benchmarks_)[nearest->benchmark_index]->name(), "qqp");
  EXPECT_NEAR(nearest->similarity, 1.0, 1e-9);
}

TEST_F(TaskSimilarityTest, MnliLandsOnAnNliBenchmark) {
  TaskSimilaritySelector selector(probe_, matrix_, *benchmarks_);
  auto nearest = selector.FindNearestBenchmark(**registry_->Find("mnli"));
  ASSERT_TRUE(nearest.ok());
  const std::string& name =
      (*benchmarks_)[nearest->benchmark_index]->name();
  // MNLI should match one of the NLI-flavoured benchmarks.
  const std::vector<std::string> nli = {"qnli", "rte",  "wnli", "cb",
                                        "xnli", "anli", "sick",
                                        "setfit_qnli"};
  EXPECT_NE(std::find(nli.begin(), nli.end(), name), nli.end())
      << "nearest was " << name;
}

TEST_F(TaskSimilarityTest, RankingIsPermutationOrderedByNearestBenchmark) {
  TaskSimilaritySelector selector(probe_, matrix_, *benchmarks_);
  const Dataset& target = **registry_->Find("mnli");
  auto ranked = selector.RankModels(target);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), zoo_->size());
  auto nearest = *selector.FindNearestBenchmark(target);
  const std::vector<double> row =
      matrix_->accuracy().Row(nearest.benchmark_index);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE(row[(*ranked)[i - 1]], row[(*ranked)[i]]);
  }
}

TEST_F(TaskSimilarityTest, RecallQualityAboveChanceOnMnli) {
  TaskSimilaritySelector selector(probe_, matrix_, *benchmarks_);
  const Dataset& target = **registry_->Find("mnli");
  auto ranked = *selector.RankModels(target);
  const std::vector<double> truth = *TrueFinalAccuracies(
      *zoo_, target, *simulator_,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  std::vector<size_t> top10(ranked.begin(), ranked.begin() + 10);
  double overall = 0.0;
  for (double a : truth) overall += a;
  overall /= static_cast<double>(truth.size());
  EXPECT_GT(MeanAt(truth, top10), overall);
}

}  // namespace
}  // namespace tps
