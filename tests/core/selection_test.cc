#include "core/baselines.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/convergence_trend.h"
#include "core/fine_selection.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

/// Shared NLP world for all selection tests.
class SelectionTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    miner_ = new ConvergenceTrendMiner(matrix_);
    target_ = *registry_->Find("mnli");
  }

  static std::vector<size_t> AllModels() {
    std::vector<size_t> all(zoo_->size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static ConvergenceTrendMiner* miner_;
  static const Dataset* target_;
};

ModelZoo* SelectionTest::zoo_ = nullptr;
DatasetRegistry* SelectionTest::registry_ = nullptr;
FineTuneSimulator* SelectionTest::simulator_ = nullptr;
PerformanceMatrix* SelectionTest::matrix_ = nullptr;
ConvergenceTrendMiner* SelectionTest::miner_ = nullptr;
const Dataset* SelectionTest::target_ = nullptr;

TEST_F(SelectionTest, BruteForceCostsCandidatesTimesEpochs) {
  BruteForceSelector bf(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  EpochBudget budget;
  auto outcome = bf.Select(AllModels(), *target_, hp, &budget);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->training_epochs, 200.0);
  EXPECT_DOUBLE_EQ(budget.training_epochs(), 200.0);
  EXPECT_DOUBLE_EQ(budget.inference_epochs(), 0.0);
}

TEST_F(SelectionTest, BruteForcePicksBestFinalValidation) {
  BruteForceSelector bf(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *bf.Select(AllModels(), *target_, hp, nullptr);
  // Recompute: no model has a higher final-epoch validation accuracy.
  auto winner_run = *simulator_->Run(zoo_->model(outcome.selected_model),
                                     *target_, hp);
  for (size_t m = 0; m < zoo_->size(); ++m) {
    auto run = *simulator_->Run(zoo_->model(m), *target_, hp);
    EXPECT_LE(run.val_accuracy.back(), winner_run.val_accuracy.back());
  }
  EXPECT_DOUBLE_EQ(outcome.selected_accuracy, winner_run.final_test());
}

TEST_F(SelectionTest, SuccessiveHalvingMatchesPaperEpochCounts) {
  SuccessiveHalvingSelector sh(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);

  // The paper's Table V: 10 models / 5 epochs -> 19; 40 -> 77.
  const std::vector<size_t> all_models = AllModels();
  const std::vector<size_t> ten(all_models.begin(), all_models.begin() + 10);
  auto ten_outcome = *sh.Select(ten, *target_, hp, nullptr);
  EXPECT_DOUBLE_EQ(ten_outcome.training_epochs, 19.0);
  EXPECT_EQ(ten_outcome.survivors_per_stage,
            (std::vector<size_t>{10, 5, 2, 1, 1}));

  auto all_outcome = *sh.Select(AllModels(), *target_, hp, nullptr);
  EXPECT_DOUBLE_EQ(all_outcome.training_epochs, 77.0);
  EXPECT_EQ(all_outcome.survivors_per_stage,
            (std::vector<size_t>{40, 20, 10, 5, 2}));
}

TEST_F(SelectionTest, SuccessiveHalvingCvEpochCounts) {
  // CV: 4 epochs; 10 models -> 18, 30 -> 55 (paper Table V).
  auto cv_zoo = *ModelZoo::Create(CvPaperZooSpecs());
  auto cv_target = *registry_->Find("beans");
  SuccessiveHalvingSelector sh(&cv_zoo, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kCV);
  std::vector<size_t> ten(10);
  std::iota(ten.begin(), ten.end(), 0);
  EXPECT_DOUBLE_EQ(sh.Select(ten, *cv_target, hp, nullptr)->training_epochs,
                   18.0);
  std::vector<size_t> thirty(30);
  std::iota(thirty.begin(), thirty.end(), 0);
  EXPECT_DOUBLE_EQ(
      sh.Select(thirty, *cv_target, hp, nullptr)->training_epochs, 55.0);
}

TEST_F(SelectionTest, FineSelectionNeverCostsMoreThanHalving) {
  SuccessiveHalvingSelector sh(zoo_, simulator_);
  FineSelectionSelector fs(zoo_, simulator_, miner_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  for (const Dataset* target : registry_->Targets(TaskDomain::kNLP)) {
    auto sh_outcome = *sh.Select(AllModels(), *target, hp, nullptr);
    auto fs_outcome = *fs.Select(AllModels(), *target, hp, nullptr);
    EXPECT_LE(fs_outcome.training_epochs, sh_outcome.training_epochs)
        << target->name();
  }
}

TEST_F(SelectionTest, FineSelectionFiltersAtLeastHalfPerStage) {
  FineSelectionSelector fs(zoo_, simulator_, miner_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *fs.Select(AllModels(), *target_, hp, nullptr);
  const auto& survivors = outcome.survivors_per_stage;
  ASSERT_EQ(survivors.size(), 5u);
  for (size_t t = 1; t < survivors.size(); ++t) {
    EXPECT_LE(survivors[t], std::max<size_t>(1, survivors[t - 1] / 2));
  }
}

TEST_F(SelectionTest, FineSelectionPicksGoodModel) {
  FineSelectionSelector fs(zoo_, simulator_, miner_);
  BruteForceSelector bf(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto fs_outcome = *fs.Select(AllModels(), *target_, hp, nullptr);
  auto bf_outcome = *bf.Select(AllModels(), *target_, hp, nullptr);
  EXPECT_GE(fs_outcome.selected_accuracy,
            bf_outcome.selected_accuracy - 0.05);
}

class ThresholdSweepTest : public SelectionTest,
                           public testing::WithParamInterface<double> {};

TEST_P(ThresholdSweepTest, LargerThresholdNeverCheapens) {
  // Property (Table IV): the filter threshold trades runtime for safety;
  // runtime at threshold t is >= runtime at threshold 0.
  FineSelectionSelector strict(zoo_, simulator_, miner_);
  FineSelectionOptions options;
  options.threshold = GetParam();
  FineSelectionSelector lenient(zoo_, simulator_, miner_, options);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  const std::vector<size_t> all = AllModels();
  const std::vector<size_t> ten(all.begin(), all.begin() + 10);
  auto strict_outcome = *strict.Select(ten, *target_, hp, nullptr);
  auto lenient_outcome = *lenient.Select(ten, *target_, hp, nullptr);
  EXPECT_GE(lenient_outcome.training_epochs,
            strict_outcome.training_epochs);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweepTest,
                         testing::Values(0.01, 0.05, 0.10, 0.25));

TEST_F(SelectionTest, SingleCandidateShortCircuits) {
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  for (auto* selector_name : {"bf", "sh", "fs"}) {
    SelectionOutcome outcome;
    if (std::string(selector_name) == "bf") {
      outcome = *BruteForceSelector(zoo_, simulator_)
                     .Select({3}, *target_, hp, nullptr);
    } else if (std::string(selector_name) == "sh") {
      outcome = *SuccessiveHalvingSelector(zoo_, simulator_)
                     .Select({3}, *target_, hp, nullptr);
    } else {
      outcome = *FineSelectionSelector(zoo_, simulator_, miner_)
                     .Select({3}, *target_, hp, nullptr);
    }
    EXPECT_EQ(outcome.selected_model, 3u) << selector_name;
    EXPECT_DOUBLE_EQ(outcome.training_epochs, 5.0) << selector_name;
  }
}

TEST_F(SelectionTest, SelectorsValidateInput) {
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  BruteForceSelector bf(zoo_, simulator_);
  EXPECT_TRUE(bf.Select({}, *target_, hp, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(bf.Select({999}, *target_, hp, nullptr)
                  .status()
                  .IsOutOfRange());
  SuccessiveHalvingSelector sh(zoo_, simulator_);
  EXPECT_TRUE(sh.Select({}, *target_, hp, nullptr)
                  .status()
                  .IsInvalidArgument());
  FineSelectionSelector fs(zoo_, simulator_, miner_);
  EXPECT_TRUE(fs.Select({999}, *target_, hp, nullptr)
                  .status()
                  .IsOutOfRange());
}

class EtaSweepTest : public SelectionTest,
                     public testing::WithParamInterface<int> {};

TEST_P(EtaSweepTest, LargerEtaIsCheaperAndFollowsReductionSchedule) {
  SuccessiveHalvingOptions options;
  options.eta = GetParam();
  SuccessiveHalvingSelector sh(zoo_, simulator_, options);
  SuccessiveHalvingSelector classic(zoo_, simulator_);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  auto outcome = *sh.Select(AllModels(), *target_, hp, nullptr);
  auto classic_outcome = *classic.Select(AllModels(), *target_, hp, nullptr);
  EXPECT_LE(outcome.training_epochs, classic_outcome.training_epochs);
  // The survivor counts follow n -> floor(n/eta).
  const auto& survivors = outcome.survivors_per_stage;
  for (size_t t = 1; t < survivors.size(); ++t) {
    EXPECT_EQ(survivors[t],
              std::max<size_t>(1, survivors[t - 1] /
                                      static_cast<size_t>(options.eta)));
  }
}

INSTANTIATE_TEST_SUITE_P(Etas, EtaSweepTest, testing::Values(2, 3, 4, 8));

TEST_F(SelectionTest, SelectedModelIsAlwaysACandidate) {
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  const std::vector<size_t> candidates = {2, 9, 17, 25, 33};
  FineSelectionSelector fs(zoo_, simulator_, miner_);
  SuccessiveHalvingSelector sh(zoo_, simulator_);
  for (const Dataset* target : registry_->Targets(TaskDomain::kNLP)) {
    for (const SelectionOutcome& outcome :
         {*fs.Select(candidates, *target, hp, nullptr),
          *sh.Select(candidates, *target, hp, nullptr)}) {
      EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                          outcome.selected_model),
                candidates.end());
    }
  }
}

}  // namespace
}  // namespace tps
