#include "core/report.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/string_util.h"

namespace tps {
namespace {

TEST(ReportTest, RendersAllSections) {
  auto registry = *DatasetRegistry::CreatePaperInventory();
  auto zoo = *ModelZoo::Create(NlpPaperZooSpecs());
  FineTuneSimulator simulator;
  auto matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(TaskDomain::kNLP), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  auto clustering = *ClusterModels(matrix, zoo, ModelClusteringOptions());
  const Dataset& target = **registry.Find("mnli");

  TwoPhaseSelector selector(&zoo, &matrix, &clustering, &simulator);
  auto report = *selector.Select(target, TwoPhaseOptions());

  const std::string markdown =
      RenderSelectionReport(report, zoo, target, /*recall_rows=*/5);
  EXPECT_TRUE(strings::Contains(markdown, "# Two-phase selection report"));
  EXPECT_TRUE(strings::Contains(markdown, "`mnli`"));
  EXPECT_TRUE(strings::Contains(markdown, "## Phase 1"));
  EXPECT_TRUE(strings::Contains(markdown, "## Phase 2"));
  EXPECT_TRUE(strings::Contains(markdown, "## Cost ledger"));
  // The winner and the top recalled model names appear as code spans.
  EXPECT_TRUE(strings::Contains(
      markdown,
      "`" + zoo.model(report.selection.selected_model).name() + "`"));
  EXPECT_TRUE(strings::Contains(
      markdown,
      "`" + zoo.model(report.recall.ranked[0].model_index).name() + "`"));
  // Exactly 5 recall rows were requested: header + separator + 5 rows.
  size_t pipe_rows = 0;
  for (const std::string& line : strings::Split(markdown, '\n')) {
    if (strings::StartsWith(line, "| ") &&
        !strings::Contains(line, "rank") &&
        !strings::Contains(line, "---") &&
        strings::Contains(line, "| 0.")) {
      ++pipe_rows;
    }
  }
  EXPECT_GE(pipe_rows, 5u);
  // Cost ledger adds up.
  EXPECT_TRUE(strings::Contains(
      markdown, strings::FormatDouble(report.budget.total_epochs(), 1)));
}

}  // namespace
}  // namespace tps
