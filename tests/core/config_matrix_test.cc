// Configuration-matrix integration tests: the two-phase pipeline must stay
// functional (not just the default configuration) across clustering
// algorithms, similarity kinds, proxy scorers, recall sizes and trend
// counts. Each combination runs end-to-end on MNLI and must produce a
// valid selection at a sane cost.

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

struct Config {
  ClusterAlgorithm algorithm;
  ModelSimilarityKind similarity;
  std::string proxy;
  size_t recall_k;
  int num_trends;
};

std::string ConfigName(const testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string name;
  name += c.algorithm == ClusterAlgorithm::kHierarchical ? "Hier" : "Kmeans";
  name += c.similarity == ModelSimilarityKind::kPerformance ? "Perf" : "Text";
  name += "_" + c.proxy;
  name += std::string("_k") + std::to_string(c.recall_k);
  name += std::string("_t") + std::to_string(c.num_trends);
  return name;
}

class ConfigMatrixTest : public testing::TestWithParam<Config> {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    target_ = *registry_->Find("mnli");
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static const Dataset* target_;
};

ModelZoo* ConfigMatrixTest::zoo_ = nullptr;
DatasetRegistry* ConfigMatrixTest::registry_ = nullptr;
FineTuneSimulator* ConfigMatrixTest::simulator_ = nullptr;
PerformanceMatrix* ConfigMatrixTest::matrix_ = nullptr;
const Dataset* ConfigMatrixTest::target_ = nullptr;

TEST_P(ConfigMatrixTest, PipelineCompletesWithValidOutcome) {
  const Config& config = GetParam();
  ModelClusteringOptions cluster_options;
  cluster_options.algorithm = config.algorithm;
  cluster_options.similarity = config.similarity;
  if (config.algorithm == ClusterAlgorithm::kKMeans) {
    cluster_options.num_clusters = 12;
  } else if (config.similarity == ModelSimilarityKind::kTextCard) {
    cluster_options.distance_threshold = 0.5;  // Cosine-distance scale.
  }
  auto clustering = ClusterModels(*matrix_, *zoo_, cluster_options);
  ASSERT_TRUE(clustering.ok()) << clustering.status().ToString();

  TwoPhaseOptions options;
  options.recall.proxy = config.proxy;
  options.recall.top_k_models = config.recall_k;
  options.trends.num_trends = config.num_trends;

  TwoPhaseSelector selector(zoo_, matrix_, &*clustering, simulator_);
  auto report = selector.Select(*target_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Validity: pick is a real model from the recalled set; costs are sane.
  EXPECT_LT(report->selection.selected_model, zoo_->size());
  EXPECT_GT(report->selection.selected_accuracy, 0.3);
  EXPECT_EQ(report->selection.survivors_per_stage.front(), config.recall_k);
  EXPECT_GT(report->budget.training_epochs(),
            static_cast<double>(config.recall_k));
  EXPECT_LT(report->budget.total_epochs(), 200.0);  // Far below BF.
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigMatrixTest,
    testing::Values(
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "leep", 10, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "nce", 10, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "logme", 10, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "knn", 10, 4},
        Config{ClusterAlgorithm::kKMeans,
               ModelSimilarityKind::kPerformance, "leep", 10, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kTextCard, "leep", 10, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "leep", 5, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "leep", 20, 4},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "leep", 10, 2},
        Config{ClusterAlgorithm::kHierarchical,
               ModelSimilarityKind::kPerformance, "leep", 10, 8}),
    ConfigName);

}  // namespace
}  // namespace tps
