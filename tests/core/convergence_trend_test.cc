#include "core/convergence_trend.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class ConvergenceTrendTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    FineTuneSimulator simulator;
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), simulator,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static PerformanceMatrix* matrix_;
};

ModelZoo* ConvergenceTrendTest::zoo_ = nullptr;
DatasetRegistry* ConvergenceTrendTest::registry_ = nullptr;
PerformanceMatrix* ConvergenceTrendTest::matrix_ = nullptr;

TEST_F(ConvergenceTrendTest, MinesRequestedNumberOfTrends) {
  ConvergenceTrendMiner miner(matrix_);
  auto trends = miner.MineTrends(0, 0);
  ASSERT_TRUE(trends.ok());
  EXPECT_GE(trends->size(), 2u);
  EXPECT_LE(trends->size(), 4u);
}

TEST_F(ConvergenceTrendTest, TrendsPartitionAllDatasets) {
  ConvergenceTrendMiner miner(matrix_);
  auto trends = *miner.MineTrends(3, 1);
  std::vector<bool> seen(matrix_->num_datasets(), false);
  for (const ConvergenceTrend& trend : *&trends) {
    EXPECT_FALSE(trend.dataset_indices.empty());
    for (size_t d : trend.dataset_indices) {
      ASSERT_LT(d, matrix_->num_datasets());
      EXPECT_FALSE(seen[d]);
      seen[d] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_F(ConvergenceTrendTest, TrendsSortedByMeanVal) {
  ConvergenceTrendMiner miner(matrix_);
  auto trends = *miner.MineTrends(5, 0);
  for (size_t x = 1; x < trends.size(); ++x) {
    EXPECT_LE(trends[x - 1].mean_val, trends[x].mean_val);
  }
}

TEST_F(ConvergenceTrendTest, TrendMeansMatchMembers) {
  ConvergenceTrendMiner miner(matrix_);
  const size_t model = 7;
  const int stage = 0;
  auto trends = *miner.MineTrends(model, stage);
  for (const ConvergenceTrend& trend : trends) {
    double val_sum = 0.0, test_sum = 0.0;
    for (size_t d : trend.dataset_indices) {
      val_sum += matrix_->ValAtStage(d, model, stage);
      test_sum += matrix_->run(d, model).final_test();
    }
    const double n = static_cast<double>(trend.dataset_indices.size());
    EXPECT_NEAR(trend.mean_val, val_sum / n, 1e-12);
    EXPECT_NEAR(trend.mean_final_test, test_sum / n, 1e-12);
  }
}

TEST_F(ConvergenceTrendTest, MatchPicksNearestMeanVal) {
  std::vector<ConvergenceTrend> trends(3);
  trends[0].mean_val = 0.3;
  trends[0].mean_final_test = 0.35;
  trends[1].mean_val = 0.6;
  trends[1].mean_final_test = 0.65;
  trends[2].mean_val = 0.9;
  trends[2].mean_final_test = 0.92;
  EXPECT_EQ(ConvergenceTrendMiner::MatchTrend(trends, 0.31), 0u);
  EXPECT_EQ(ConvergenceTrendMiner::MatchTrend(trends, 0.58), 1u);
  EXPECT_EQ(ConvergenceTrendMiner::MatchTrend(trends, 1.2), 2u);
  EXPECT_DOUBLE_EQ(ConvergenceTrendMiner::PredictFinal(trends, 0.31), 0.35);
  EXPECT_DOUBLE_EQ(ConvergenceTrendMiner::PredictFinal(trends, 0.95), 0.92);
}

TEST_F(ConvergenceTrendTest, MatchTieBreaksToLowerIndex) {
  std::vector<ConvergenceTrend> trends(2);
  trends[0].mean_val = 0.4;
  trends[1].mean_val = 0.6;
  EXPECT_EQ(ConvergenceTrendMiner::MatchTrend(trends, 0.5), 0u);
}

TEST_F(ConvergenceTrendTest, LaterStageShiftsTrendMeansUp) {
  // Validation accuracy rises with training, so trend means at stage 3
  // should on average exceed stage 0's.
  ConvergenceTrendMiner miner(matrix_);
  auto early = *miner.MineTrends(2, 0);
  auto late = *miner.MineTrends(2, 3);
  double early_mean = 0.0, late_mean = 0.0;
  for (const auto& t : early) early_mean += t.mean_val;
  for (const auto& t : late) late_mean += t.mean_val;
  EXPECT_GT(late_mean / static_cast<double>(late.size()),
            early_mean / static_cast<double>(early.size()));
}

TEST_F(ConvergenceTrendTest, StageBeyondCurveLengthClampsInsteadOfFailing) {
  ConvergenceTrendMiner miner(matrix_);
  auto trends = miner.MineTrends(0, 50);
  EXPECT_TRUE(trends.ok());
}

TEST_F(ConvergenceTrendTest, InputValidation) {
  ConvergenceTrendMiner miner(matrix_);
  EXPECT_TRUE(miner.MineTrends(999, 0).status().IsOutOfRange());
  EXPECT_TRUE(miner.MineTrends(0, -1).status().IsInvalidArgument());
}

TEST_F(ConvergenceTrendTest, CustomTrendCount) {
  TrendMinerOptions options;
  options.num_trends = 2;
  ConvergenceTrendMiner miner(matrix_, options);
  auto trends = *miner.MineTrends(0, 0);
  EXPECT_LE(trends.size(), 2u);
}

}  // namespace
}  // namespace tps
