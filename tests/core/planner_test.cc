#include "core/planner.h"

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(PlannerTest, HalvingScheduleCostMatchesPaperNumbers) {
  // The Table V values: 10 models / 5 epochs = 19; 40/5 = 77; 30/4 = 55;
  // 10/4 = 18.
  EXPECT_DOUBLE_EQ(CostAwarePlanner::HalvingScheduleCost(10, 5), 19.0);
  EXPECT_DOUBLE_EQ(CostAwarePlanner::HalvingScheduleCost(40, 5), 77.0);
  EXPECT_DOUBLE_EQ(CostAwarePlanner::HalvingScheduleCost(30, 4), 55.0);
  EXPECT_DOUBLE_EQ(CostAwarePlanner::HalvingScheduleCost(10, 4), 18.0);
  EXPECT_DOUBLE_EQ(CostAwarePlanner::HalvingScheduleCost(1, 5), 5.0);
}

TEST(PlannerTest, CostOrderingIsMonotone) {
  // Paper NLP shape: 40 models, 7 scored clusters, recall 10, 5 epochs.
  CostAwarePlanner planner(40, 7, 10, 5);
  const StrategyCosts costs = planner.PredictCosts();
  EXPECT_LT(costs.proxy_only, costs.two_phase_lower);
  EXPECT_LE(costs.two_phase_lower, costs.two_phase_upper);
  EXPECT_LT(costs.two_phase_upper, costs.successive_halving);
  EXPECT_LT(costs.successive_halving, costs.brute_force);
  EXPECT_DOUBLE_EQ(costs.brute_force, 200.0);
  EXPECT_DOUBLE_EQ(costs.successive_halving, 77.0);
  EXPECT_DOUBLE_EQ(costs.two_phase_upper, 0.5 * 7 + 19.0);
  EXPECT_DOUBLE_EQ(costs.proxy_only, 0.5 * 7 + 5.0);
}

TEST(PlannerTest, PicksMostThoroughAffordableStrategy) {
  CostAwarePlanner planner(40, 7, 10, 5);
  EXPECT_EQ(planner.Plan(1000.0).strategy, SelectionStrategy::kBruteForce);
  EXPECT_EQ(planner.Plan(200.0).strategy, SelectionStrategy::kBruteForce);
  EXPECT_EQ(planner.Plan(199.0).strategy,
            SelectionStrategy::kSuccessiveHalving);
  EXPECT_EQ(planner.Plan(77.0).strategy,
            SelectionStrategy::kSuccessiveHalving);
  EXPECT_EQ(planner.Plan(76.0).strategy, SelectionStrategy::kTwoPhase);
  EXPECT_EQ(planner.Plan(22.5).strategy, SelectionStrategy::kTwoPhase);
  EXPECT_EQ(planner.Plan(22.0).strategy, SelectionStrategy::kProxyOnly);
  EXPECT_EQ(planner.Plan(0.0).strategy, SelectionStrategy::kProxyOnly);
}

TEST(PlannerTest, DecisionCarriesRationaleAndCost) {
  CostAwarePlanner planner(40, 7, 10, 5);
  const PlanDecision decision = planner.Plan(76.0);
  EXPECT_EQ(decision.predicted_cost, decision.costs.two_phase_upper);
  EXPECT_FALSE(decision.rationale.empty());
}

TEST(PlannerTest, RecallKClampedToRepositorySize) {
  CostAwarePlanner planner(5, 2, 100, 3);
  const StrategyCosts costs = planner.PredictCosts();
  // Recall cannot return more models than exist: K = 5.
  EXPECT_DOUBLE_EQ(costs.two_phase_upper,
                   1.0 + CostAwarePlanner::HalvingScheduleCost(5, 3));
}

TEST(PlannerTest, StrategyNames) {
  EXPECT_EQ(ToString(SelectionStrategy::kProxyOnly), "proxy-only");
  EXPECT_EQ(ToString(SelectionStrategy::kBruteForce), "brute-force");
  EXPECT_EQ(ToString(SelectionStrategy::kTwoPhase), "two-phase");
  EXPECT_EQ(ToString(SelectionStrategy::kSuccessiveHalving),
            "successive-halving");
}

class PlannerBudgetSweep : public testing::TestWithParam<double> {};

TEST_P(PlannerBudgetSweep, ChosenStrategyAlwaysFitsOrIsCheapest) {
  CostAwarePlanner planner(40, 7, 10, 5);
  const PlanDecision decision = planner.Plan(GetParam());
  if (decision.strategy != SelectionStrategy::kProxyOnly) {
    EXPECT_LE(decision.predicted_cost, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PlannerBudgetSweep,
                         testing::Values(0.0, 10.0, 25.0, 50.0, 80.0, 150.0,
                                         250.0, 1e6));

}  // namespace
}  // namespace tps
